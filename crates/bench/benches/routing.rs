//! Routing cost of the three trie overlays on an identical corpus —
//! the micro-benchmark behind Table 2.

use criterion::{criterion_group, criterion_main, Criterion};
use dlpt_baselines::pht::{PhtConfig, PrefixHashTree};
use dlpt_baselines::PGrid;
use dlpt_core::messages::QueryKind;
use dlpt_core::DlptSystem;
use dlpt_workloads::corpus::Corpus;
use std::hint::black_box;

fn routing(c: &mut Criterion) {
    let keys = Corpus::grid().take_spread(300);
    let peers = 32;

    let mut dlpt = DlptSystem::builder().seed(9).bootstrap_peers(peers).build();
    for k in &keys {
        dlpt.insert_data(k.clone()).unwrap();
    }
    let mut pht = PrefixHashTree::new(
        PhtConfig {
            leaf_capacity: 4,
            depth_bytes: 24,
            succ_list_len: 4,
        },
        peers,
        9,
    );
    for k in &keys {
        pht.insert(k);
    }
    let mut pgrid = PGrid::build(&keys, peers, 2, 24, 9);

    let mut group = c.benchmark_group("lookup_routing");
    group.sample_size(30);
    group.bench_function("dlpt", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 11) % keys.len();
            dlpt.end_time_unit();
            black_box(
                dlpt.request(QueryKind::Exact(keys[i].clone()))
                    .unwrap()
                    .logical_hops(),
            )
        })
    });
    group.bench_function("pht", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 11) % keys.len();
            black_box(pht.lookup(&keys[i]).1)
        })
    });
    group.bench_function("pht_binary_search", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 11) % keys.len();
            black_box(pht.lookup_binary(&keys[i]).1)
        })
    });
    group.bench_function("pgrid", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 11) % keys.len();
            black_box(pgrid.lookup(&keys[i]).1)
        })
    });
    group.finish();
}

criterion_group!(benches, routing);
criterion_main!(benches);

//! Micro-benchmarks of the PGCP tree: sequential oracle vs the
//! distributed overlay, over the paper's grid corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlpt_core::messages::QueryKind;
use dlpt_core::{DlptSystem, Key, PgcpTrie};
use dlpt_workloads::corpus::Corpus;
use std::hint::black_box;

fn oracle_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("trie_insert");
    group.sample_size(20);
    for n in [100usize, 500, 1000] {
        let keys = Corpus::grid().take_spread(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &keys, |b, keys| {
            b.iter(|| {
                let mut t = PgcpTrie::new();
                for k in keys {
                    t.insert(k.clone());
                }
                black_box(t.node_count())
            })
        });
    }
    group.finish();
}

fn oracle_queries(c: &mut Criterion) {
    let keys = Corpus::grid().keys;
    let mut t = PgcpTrie::new();
    for k in &keys {
        t.insert(k.clone());
    }
    let mut group = c.benchmark_group("trie_query");
    group.sample_size(30);
    group.bench_function("lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7) % keys.len();
            black_box(t.lookup(&keys[i]).found)
        })
    });
    group.bench_function("complete_S3L", |b| {
        b.iter(|| black_box(t.complete(&Key::from("S3L")).len()))
    });
    group.bench_function("range_D_to_E", |b| {
        b.iter(|| black_box(t.range(&Key::from("D"), &Key::from("E")).len()))
    });
    group.finish();
}

fn overlay_ops(c: &mut Criterion) {
    let keys = Corpus::grid().take_spread(400);
    let mut group = c.benchmark_group("overlay");
    group.sample_size(10);
    group.bench_function("build_400_keys_16_peers", |b| {
        b.iter(|| {
            let mut sys = DlptSystem::builder().seed(1).bootstrap_peers(16).build();
            for k in &keys {
                sys.insert_data(k.clone()).unwrap();
            }
            black_box(sys.node_count())
        })
    });
    let mut sys = DlptSystem::builder().seed(1).bootstrap_peers(16).build();
    for k in &keys {
        sys.insert_data(k.clone()).unwrap();
    }
    group.bench_function("lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 13) % keys.len();
            sys.end_time_unit();
            black_box(
                sys.request(QueryKind::Exact(keys[i].clone()))
                    .unwrap()
                    .satisfied,
            )
        })
    });
    group.bench_function("completion_scatter", |b| {
        b.iter(|| {
            sys.end_time_unit();
            black_box(sys.complete(&Key::from("S3L")).results.len())
        })
    });
    group.finish();
}

criterion_group!(benches, oracle_insert, oracle_queries, overlay_ops);
criterion_main!(benches);

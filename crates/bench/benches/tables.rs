//! Scaled-down versions of the paper's tables under criterion:
//! Table 1 (one gain cell) and Table 2 (the three-system measurement),
//! with the qualitative orderings asserted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlpt_sim::experiments::{table1_row, table2_measure};
use std::hint::black_box;

fn table1_cell(c: &mut Criterion) {
    // Assert the Table 1 shape once at bench scale: the MLT gain on
    // the stable network is positive and grows with load.
    let low = table1_row(0.10, 8);
    let high = table1_row(0.40, 8);
    assert!(
        low.stable_mlt > 0.0,
        "MLT must gain at 10% load (got {:.1}%)",
        low.stable_mlt
    );
    assert!(
        high.stable_mlt > low.stable_mlt * 0.5,
        "MLT gain must not collapse with load ({:.1}% -> {:.1}%)",
        low.stable_mlt,
        high.stable_mlt
    );

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("gain_row_scaled", |b| {
        b.iter(|| black_box(table1_row(0.16, 8).stable_mlt))
    });
    group.finish();
}

fn table2_rows(c: &mut Criterion) {
    // Assert the Table 2 ordering at bench scale.
    let rows = table2_measure(24, 150, 100, 7);
    let get = |name: &str| rows.iter().find(|r| r.system == name).unwrap();
    assert!(
        get("DLPT").routing_hops < get("PHT").routing_hops,
        "DLPT must out-route PHT"
    );

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for (peers, keys, lookups) in [(16usize, 100usize, 50usize), (32, 200, 100)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{peers}p_{keys}k")),
            &(peers, keys, lookups),
            |b, &(p, k, l)| b.iter(|| black_box(table2_measure(p, k, l, 7).len())),
        );
    }
    group.finish();
}

criterion_group!(benches, table1_cell, table2_rows);
criterion_main!(benches);

//! Load-balancing micro-benchmarks: the O(m) MLT boundary sweep
//! (Section 3.3 claims linear time — verified by scaling), one full
//! rebalance step, and KC candidate scoring. Plus an ablation of the
//! MLT trigger fraction (a knob the paper fixes without studying).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlpt_core::balance::mlt::{best_split, rebalance_pair};
use dlpt_core::balance::KChoices;
use dlpt_core::{DlptSystem, Key};
use dlpt_sim::config::{CorpusKind, ExperimentConfig, LbKind, PopKind};
use dlpt_sim::run::run_once;
use dlpt_workloads::churn::ChurnModel;
use dlpt_workloads::corpus::Corpus;
use std::hint::black_box;

fn sweep_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlt_sweep");
    for m in [16usize, 256, 4096] {
        let loads: Vec<u64> = (0..m as u64).map(|i| (i * 37) % 100).collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &loads, |b, loads| {
            b.iter(|| black_box(best_split(loads, 500, 700, loads.len() / 2)))
        });
    }
    group.finish();
}

fn loaded_system() -> DlptSystem {
    let keys = Corpus::grid().take_spread(300);
    let mut sys = DlptSystem::builder()
        .seed(3)
        .default_capacity(50)
        .bootstrap_peers(24)
        .build();
    for k in &keys {
        sys.insert_data(k.clone()).unwrap();
    }
    for i in 0..400 {
        sys.lookup(&keys[i % keys.len()]);
    }
    sys.end_time_unit();
    sys
}

fn rebalance_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("balance_step");
    group.sample_size(10);
    group.bench_function("mlt_rebalance_pair", |b| {
        b.iter_batched(
            loaded_system,
            |mut sys| {
                let id = sys.peer_ids()[5].clone();
                black_box(rebalance_pair(&mut sys, &id))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    let sys = loaded_system();
    group.bench_function("kc_score_candidate", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            let candidate = Key::from(format!("CAND{i:06}"));
            black_box(KChoices::score_candidate(&sys, &candidate, 40))
        })
    });
    group.finish();
}

/// Ablation: fraction of peers running MLT per unit vs steady-state
/// satisfied requests (printed via throughput of one full run).
fn mlt_fraction_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlt_fraction_ablation");
    group.sample_size(10);
    for fraction in [0.25, 1.0] {
        let cfg = ExperimentConfig {
            name: format!("ablation-mlt-{fraction}"),
            peers: 20,
            corpus: CorpusKind::GridSubset(150),
            time_units: 12,
            growth_units: 4,
            load: 0.16,
            route_cost: 9.0,
            base_capacity: 10,
            capacity_ratio: 4,
            churn: ChurnModel::stable(),
            lb: LbKind::Mlt { fraction },
            popularity: PopKind::Uniform,
            runs: 1,
            base_seed: 77,
            peer_id_len: 10,
            track_mapping_hops: false,
            replication: 1,
            anti_entropy: false,
            cache_capacity: 0,
            track_depth_hist: false,
            workers: 1,
            loss_rate: 0.0,
            dup_rate: 0.0,
            partition: None,
            health_snapshots: false,
        };
        group.bench_with_input(BenchmarkId::from_parameter(fraction), &cfg, |b, cfg| {
            b.iter(|| black_box(run_once(cfg, 0).total_satisfied(4)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    sweep_scaling,
    rebalance_step,
    mlt_fraction_ablation
);
criterion_main!(benches);

//! Chord substrate micro-benchmarks: lookup scaling (the log P factor
//! Table 2 charges PHT with), joins and stabilization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlpt_dht::ChordNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn network(n: usize, seed: u64) -> (ChordNetwork, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = ChordNetwork::new(4);
    let mut ids = Vec::new();
    while ids.len() < n {
        let id: u64 = rng.gen();
        if net.join(id) {
            ids.push(id);
        }
    }
    net.stabilize();
    (net, ids)
}

fn lookup_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord_lookup");
    group.sample_size(30);
    for n in [64usize, 256, 1024] {
        let (mut net, ids) = network(n, 1);
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let target: u64 = rng.gen();
                let entry = ids[rng.gen_range(0..ids.len())];
                black_box(net.find_successor(entry, target).hops)
            })
        });
    }
    group.finish();
}

fn membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord_membership");
    group.sample_size(10);
    group.bench_function("join_into_256", |b| {
        b.iter_batched(
            || network(256, 3).0,
            |mut net| {
                black_box(net.join(0xDEADBEEF));
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("stabilize_256", |b| {
        b.iter_batched(
            || network(256, 4).0,
            |mut net| {
                net.stabilize();
                black_box(net.len())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, lookup_scaling, membership);
criterion_main!(benches);

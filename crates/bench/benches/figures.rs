//! Scaled-down versions of the paper's figures, under criterion: each
//! bench times one seeded run of the experiment, and on the first
//! invocation asserts the figure's qualitative claim (the ordering the
//! paper argues), so `cargo bench` doubles as a reproduction check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlpt_sim::config::{ExperimentConfig, PopKind};
use dlpt_sim::experiments as exp;
use dlpt_sim::run::run_once;
use std::hint::black_box;

/// Scale a figure config to bench size: small platform, few units,
/// single run (criterion provides the repetition).
fn bench_size(mut cfg: ExperimentConfig, units: u32) -> ExperimentConfig {
    cfg = cfg.scaled_down(5);
    cfg.time_units = units;
    cfg.runs = 1;
    cfg
}

fn satisfaction_figures(c: &mut Criterion) {
    for (name, configs, strict) in [
        // Low-load bench-scale runs issue only a handful of requests
        // per unit, so the ordering check allows sampling noise; the
        // overload figures give a robust signal even at this scale.
        // The binding full-scale checks live in the `fig*` binaries.
        ("fig4_stable_low", exp::fig4_configs(), false),
        ("fig5_stable_high", exp::fig5_configs(), true),
        ("fig6_dynamic_low", exp::fig6_configs(), false),
        ("fig7_dynamic_high", exp::fig7_configs(), true),
    ] {
        // Qualitative check once per figure: MLT vs NoLB over a few
        // averaged seeds.
        let scaled: Vec<ExperimentConfig> =
            configs.iter().map(|c| bench_size(c.clone(), 16)).collect();
        let total = |cfg: &ExperimentConfig| -> u64 {
            (0..4).map(|i| run_once(cfg, i).total_satisfied(4)).sum()
        };
        let mlt = total(&scaled[0]);
        let none = total(&scaled[2]);
        let floor = if strict { none } else { none * 85 / 100 };
        assert!(
            mlt >= floor,
            "{name}: MLT ({mlt}) must not lose to NoLB ({none})"
        );

        let mut group = c.benchmark_group(name);
        group.sample_size(10);
        for cfg in scaled {
            let label = cfg.lb.label();
            group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
                b.iter(|| black_box(run_once(cfg, 0).total_satisfied(4)))
            });
        }
        group.finish();
    }
}

fn hotspot_figure(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_hotspots");
    group.sample_size(10);
    for cfg in exp::fig8_configs() {
        let mut cfg = bench_size(cfg, 60); // keep burst phase at 40
        cfg.popularity = PopKind::Figure8 { hot_fraction: 0.85 };
        let label = cfg.lb.label();
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| black_box(run_once(cfg, 0).total_satisfied(10)))
        });
    }
    group.finish();
}

fn mapping_figure(c: &mut Criterion) {
    // Figure 9's claim, asserted at bench scale: lexicographic mapping
    // needs far fewer physical hops than the hash mapping.
    let mut cfg = bench_size(exp::fig9_config(), 24);
    cfg.track_mapping_hops = true;
    let r = run_once(&cfg, 0);
    let sum = |f: fn(&dlpt_sim::run::UnitMetrics) -> u64| -> u64 { r.units.iter().map(f).sum() };
    let lexico = sum(|u| u.physical_lexico_sum);
    let random = sum(|u| u.physical_random_sum);
    assert!(
        2 * lexico < random,
        "fig9: lexicographic ({lexico}) must be well below random ({random})"
    );

    let mut group = c.benchmark_group("fig9_mapping");
    group.sample_size(10);
    group.bench_function("mlt_with_hop_replay", |b| {
        b.iter(|| black_box(run_once(&cfg, 0).total_satisfied(4)))
    });
    let mut no_replay = cfg.clone();
    no_replay.track_mapping_hops = false;
    group.bench_function("mlt_without_hop_replay", |b| {
        b.iter(|| black_box(run_once(&no_replay, 0).total_satisfied(4)))
    });
    group.finish();
}

criterion_group!(
    benches,
    satisfaction_figures,
    hotspot_figure,
    mapping_figure
);
criterion_main!(benches);

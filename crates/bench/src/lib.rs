//! # dlpt-bench — shared harness code for the reproduction binaries
//! and criterion benches.
//!
//! Each figure/table of the paper has a binary in `src/bin/` that runs
//! the full-scale experiment (`cargo run --release --bin fig4`), emits
//! the series as CSV under `results/` and renders an ASCII chart; the
//! criterion benches in `benches/` run scaled-down versions so
//! `cargo bench` both times the machinery and re-checks the paper's
//! orderings.

use dlpt_sim::config::ExperimentConfig;
use dlpt_sim::report::{ascii_chart, results_dir, write_csv};
use dlpt_sim::runner::{run_experiment, AveragedSeries};

/// Scale factor parsed from `--scale N` (default 1 = paper scale).
pub fn scale_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--scale" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        }
    }
    1
}

/// Optional trace output path parsed from `--trace PATH`. `None` when
/// absent — tracing stays off and the run is byte-identical to an
/// untraced one.
pub fn trace_path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next().map(std::path::PathBuf::from);
        }
    }
    None
}

/// Writes a drained trace as deterministic JSONL at `path` plus a
/// chrome://tracing span file at `path` with the extension replaced by
/// `chrome.json`. Returns the chrome path.
pub fn write_trace_files(
    path: &std::path::Path,
    events: &[dlpt_core::TraceEvent],
) -> std::io::Result<std::path::PathBuf> {
    let mut jsonl = std::io::BufWriter::new(std::fs::File::create(path)?);
    dlpt_core::obs::write_jsonl(events, &mut jsonl)?;
    std::io::Write::flush(&mut jsonl)?;
    let chrome_path = path.with_extension("chrome.json");
    let mut chrome = std::io::BufWriter::new(std::fs::File::create(&chrome_path)?);
    dlpt_core::obs::write_chrome_trace(events, &mut chrome)?;
    std::io::Write::flush(&mut chrome)?;
    Ok(chrome_path)
}

/// Optional health-snapshot output path parsed from `--health PATH`.
/// `None` when absent — the observatory stays off and the run is
/// byte-identical to an unobserved one.
pub fn health_path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--health" {
            return args.next().map(std::path::PathBuf::from);
        }
    }
    None
}

/// Writes the accumulated health JSONL time series (one
/// [`dlpt_core::HealthSnapshot`] line per unit per run, in sweep
/// order) plus a Prometheus-style text rendering of the final
/// snapshot at `path` with the extension replaced by `prom`. Returns
/// the prometheus path.
pub fn write_health_files(
    path: &std::path::Path,
    jsonl: &str,
    last: Option<&dlpt_core::HealthSnapshot>,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::write(path, jsonl)?;
    let prom_path = path.with_extension("prom");
    let mut prom = String::new();
    if let Some(snap) = last {
        snap.write_prometheus(&mut prom);
    }
    std::fs::write(&prom_path, prom)?;
    Ok(prom_path)
}

/// Optional crash rate parsed from `--crash-rate X` (fraction of peers
/// crashing non-gracefully per unit). `None` when absent, so figures
/// keep their paper-faithful crash-free churn by default.
pub fn crash_rate_from_args() -> Option<f64> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--crash-rate" {
            return args.next().and_then(|v| v.parse::<f64>().ok());
        }
    }
    None
}

/// Applies an optional `--crash-rate` override to every curve.
pub fn apply_crash_rate(
    mut configs: Vec<ExperimentConfig>,
    rate: Option<f64>,
) -> Vec<ExperimentConfig> {
    if let Some(rate) = rate {
        for c in &mut configs {
            c.churn = c.churn.with_crash_rate(rate);
        }
    }
    configs
}

/// Applies a scale factor to every curve of a figure.
pub fn apply_scale(configs: Vec<ExperimentConfig>, scale: usize) -> Vec<ExperimentConfig> {
    if scale <= 1 {
        return configs;
    }
    configs.into_iter().map(|c| c.scaled_down(scale)).collect()
}

/// Runs every curve of a satisfaction figure, writes
/// `results/<name>.csv` and prints the chart. Returns the series for
/// further assertions.
pub fn run_satisfaction_figure(
    name: &str,
    configs: Vec<ExperimentConfig>,
    title: &str,
) -> Vec<AveragedSeries> {
    let mut series = Vec::with_capacity(configs.len());
    for cfg in &configs {
        eprintln!(
            "[{name}] running {} ({} runs x {} units, {} peers)…",
            cfg.name, cfg.runs, cfg.time_units, cfg.peers
        );
        series.push(run_experiment(cfg));
    }
    let time = series[0].time.clone();
    let labels: Vec<&str> = configs.iter().map(|c| c.lb.label()).collect();
    let cols: Vec<(&str, &[f64])> = labels
        .iter()
        .zip(&series)
        .map(|(l, s)| (*l, s.satisfaction.as_slice()))
        .collect();
    let path = results_dir().join(format!("{name}.csv"));
    write_csv(&path, &time, &cols).expect("write results CSV");
    println!("{}", ascii_chart(title, &cols, Some(100.0), 18, 80));
    for (l, s) in labels.iter().zip(&series) {
        println!(
            "  {l:>5}: steady-state satisfaction {:.1}% ({} runs)",
            s.steady_satisfaction(),
            s.runs
        );
    }
    println!("  CSV: {}", path.display());
    series
}

//! `footprint` — per-node and per-peer memory accounting over ring
//! size (observability extension, `dlpt-core::obs::health`).
//!
//! Builds a static overlay at each sweep size, registers the full grid
//! corpus (≈1000 service names), routes one warm-up pass so the
//! shortcut caches hold real entries, and reports the
//! `Engine::bytes_estimate` walk: total footprint split by component
//! (directory, peer slab, shard maps, route caches), bytes per tree
//! node and bytes per peer. The 1k/10k rows are the committed
//! footprint table in EXPERIMENTS.md.
//!
//! `cargo run --release --bin footprint [-- --scale N]`
//!
//! Emits `results/footprint.csv` (one row per ring size). `--scale N`
//! divides the sweep sizes for a fast smoke pass. The invariant
//! auditor runs at every size and the binary exits non-zero on any
//! violation, so the sweep doubles as a large-scale consistency check.

use dlpt_bench::scale_from_args;
use dlpt_core::system::DlptSystem;
use dlpt_core::transport::FaultStats;
use dlpt_core::HealthMonitor;
use dlpt_sim::report::results_dir;
use dlpt_workloads::corpus::Corpus;
use std::io::Write as _;

const SWEEP: [usize; 3] = [100, 1_000, 10_000];

struct Row {
    peers: usize,
    nodes: u64,
    directory: usize,
    slab: usize,
    shards: usize,
    caches: usize,
    total: usize,
    per_node: f64,
    per_peer: f64,
}

fn measure(peers: usize) -> Row {
    let corpus = Corpus::grid();
    let mut sys = DlptSystem::builder()
        .seed(0xF007 ^ peers as u64)
        .peer_id_len(12)
        .cache_capacity(64)
        .bootstrap_peers(peers)
        .build();
    for k in &corpus.keys {
        sys.insert_data(k.clone()).expect("registration");
    }
    // One lookup pass warms the per-peer shortcut caches so the cache
    // column reflects a working system, not empty preallocations.
    for k in corpus.keys.iter().take(200) {
        sys.lookup(k);
    }

    let violations = sys.audit();
    for v in &violations {
        eprintln!("[footprint] {peers} peers: {v}");
    }
    assert!(
        violations.is_empty(),
        "{peers}-peer overlay must audit clean ({} violations)",
        violations.len()
    );

    let mut mon = HealthMonitor::new();
    sys.collect_health(0, &FaultStats::default(), &mut mon);
    let snap = &mon.snap;
    Row {
        peers: snap.peers as usize,
        nodes: snap.nodes,
        directory: snap.bytes.directory_bytes,
        slab: snap.bytes.slab_bytes,
        shards: snap.bytes.shard_bytes,
        caches: snap.bytes.cache_bytes,
        total: snap.bytes.total(),
        per_node: snap.bytes.per_node(snap.nodes),
        per_peer: snap.bytes.per_peer(snap.peers),
    }
}

fn main() {
    let scale = scale_from_args();
    let mut rows = Vec::new();
    for &peers in SWEEP.iter() {
        let peers = (peers / scale).max(50);
        eprintln!("[footprint] measuring {peers} peers…");
        rows.push(measure(peers));
    }

    let path = results_dir().join("footprint.csv");
    let mut f =
        std::io::BufWriter::new(std::fs::File::create(&path).expect("create footprint.csv"));
    writeln!(
        f,
        "peers,nodes,directory_bytes,slab_bytes,shard_bytes,cache_bytes,total_bytes,\
         bytes_per_node,bytes_per_peer"
    )
    .expect("write");
    for r in &rows {
        writeln!(
            f,
            "{},{},{},{},{},{},{},{:.1},{:.1}",
            r.peers,
            r.nodes,
            r.directory,
            r.slab,
            r.shards,
            r.caches,
            r.total,
            r.per_node,
            r.per_peer
        )
        .expect("write");
    }
    f.flush().expect("flush footprint.csv");

    println!("  peers   nodes  total(KiB)  dir(KiB)  slab(KiB)  shards(KiB)  caches(KiB)  B/node  B/peer");
    for r in &rows {
        println!(
            "  {:>5}  {:>6}  {:>10.1}  {:>8.1}  {:>9.1}  {:>11.1}  {:>11.1}  {:>6.1}  {:>6.1}",
            r.peers,
            r.nodes,
            r.total as f64 / 1024.0,
            r.directory as f64 / 1024.0,
            r.slab as f64 / 1024.0,
            r.shards as f64 / 1024.0,
            r.caches as f64 / 1024.0,
            r.per_node,
            r.per_peer,
        );
    }
    println!("  CSV: {}", path.display());
}

//! Figure C (caching extension) — mean route length and satisfaction
//! vs. per-peer shortcut-cache capacity, across request-popularity
//! skews.
//!
//! Every discovery request in the paper's system climbs toward the
//! upper tree before descending, so the root region is the hotspot no
//! matter how MLT/KC spread the nodes. `dlpt-core::cache` lets the
//! entry peer route hot targets in one hop; this figure quantifies
//! what that buys under uniform traffic (the control — caching must
//! cost nothing), Zipf skews s ∈ {0.8, 1.2}, and a sustained
//! hot-prefix phase, at cache capacities {0, 64, 512}.
//!
//! `cargo run --release --bin figC [-- --scale N]`
//!
//! Emits `results/figC.csv` (one row per workload × capacity:
//! satisfaction, mean hops, hit/stale rates, entries learned,
//! invalidations delivered and total message work) and
//! `results/figC_depth.csv` (per-depth visits of satisfied routes for
//! the zipf1.2 column, uncached vs. largest cache, per 1000 issued
//! requests — the upper-tree flattening evidence), plus ASCII charts.

use dlpt_bench::{health_path_from_args, scale_from_args, write_health_files};
use dlpt_sim::experiments::{figc_config, figc_workloads, FIGC_CACHE_SIZES};
use dlpt_sim::report::{ascii_chart, results_dir};
use dlpt_sim::runner::{average, health_jsonl, run_all, AveragedSeries};
use std::io::Write as _;

fn main() {
    let scale = scale_from_args();
    let health_path = health_path_from_args();
    let workloads = figc_workloads();
    // series[w][c]
    let mut series: Vec<Vec<AveragedSeries>> = Vec::with_capacity(workloads.len());
    let mut health = String::new();
    let mut last_snapshot = None;
    for w in &workloads {
        let mut per_cache = Vec::with_capacity(FIGC_CACHE_SIZES.len());
        for &cache in FIGC_CACHE_SIZES.iter() {
            let mut cfg = figc_config(w, cache);
            if scale > 1 {
                cfg = cfg.scaled_down(scale);
                // Keep the 50-unit horizon: hit rates are a function
                // of how long the caches get to warm, and the
                // steady-state window must stay non-empty.
                cfg.time_units = 50;
                cfg.growth_units = 10;
            }
            cfg.health_snapshots = health_path.is_some();
            eprintln!(
                "[figC] running {} ({} runs x {} units, {} peers)…",
                cfg.name, cfg.runs, cfg.time_units, cfg.peers
            );
            let results = run_all(&cfg);
            if health_path.is_some() {
                health.push_str(&health_jsonl(&results));
                last_snapshot = results.last().and_then(|r| r.last_snapshot.clone());
            }
            per_cache.push(average(&cfg, &results));
        }
        series.push(per_cache);
    }
    if let Some(hp) = &health_path {
        let prom =
            write_health_files(hp, &health, last_snapshot.as_ref()).expect("write figC health");
        println!(
            "  health: {} snapshots -> {} (+ {})",
            health.lines().count(),
            hp.display(),
            prom.display()
        );
    }

    let path = results_dir().join("figC.csv");
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create figC.csv"));
    writeln!(
        f,
        "workload,cache,satisfaction_pct,mean_hops,hit_pct,stale_pct,learned,invalidations,work"
    )
    .expect("write");
    for (w, per_cache) in workloads.iter().zip(&series) {
        for (&cache, s) in FIGC_CACHE_SIZES.iter().zip(per_cache) {
            writeln!(
                f,
                "{},{cache},{:.4},{:.4},{:.4},{:.4},{:.1},{:.1},{:.1}",
                w.label,
                s.steady_satisfaction(),
                s.steady_mean_hops(),
                s.steady_cache_hit_pct(),
                s.steady_cache_stale_pct(),
                s.steady_cache_learned,
                s.steady_cache_invalidations,
                s.steady_work,
            )
            .expect("write");
        }
    }
    f.flush().expect("flush figC.csv");

    // Depth histogram: zipf1.2, uncached vs. the largest cache,
    // normalized to visits per 1000 issued requests.
    let zipf_idx = workloads
        .iter()
        .position(|w| w.label == "zipf1.2")
        .expect("zipf1.2 workload present");
    let (off, on) = (
        &series[zipf_idx][0],
        &series[zipf_idx][FIGC_CACHE_SIZES.len() - 1],
    );
    let depth_path = results_dir().join("figC_depth.csv");
    let mut f =
        std::io::BufWriter::new(std::fs::File::create(&depth_path).expect("create figC_depth.csv"));
    writeln!(f, "depth,visits_per_kreq_cache0,visits_per_kreq_cache512").expect("write");
    let norm = |s: &AveragedSeries, d: usize| {
        if s.steady_issued == 0.0 {
            0.0
        } else {
            1000.0 * s.depth_visits.get(d).copied().unwrap_or(0.0) / s.steady_issued
        }
    };
    for d in 0..off.depth_visits.len().max(on.depth_visits.len()) {
        writeln!(f, "{d},{:.4},{:.4}", norm(off, d), norm(on, d)).expect("write");
    }
    f.flush().expect("flush figC_depth.csv");

    // Charts: mean hops across the capacity sweep, one series per
    // workload; then the depth histograms.
    let hops: Vec<Vec<f64>> = series
        .iter()
        .map(|per_cache| per_cache.iter().map(|s| s.steady_mean_hops()).collect())
        .collect();
    let hop_cols: Vec<(&str, &[f64])> = workloads
        .iter()
        .zip(&hops)
        .map(|(w, h)| (w.label, h.as_slice()))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "Figure C: mean hops per satisfied request vs. cache capacity (x = sweep point)",
            &hop_cols,
            None,
            12,
            48,
        )
    );
    let depth_cols_data: Vec<Vec<f64>> = vec![
        (0..off.depth_visits.len()).map(|d| norm(off, d)).collect(),
        (0..on.depth_visits.len()).map(|d| norm(on, d)).collect(),
    ];
    let depth_cols: Vec<(&str, &[f64])> = vec![
        ("cache0", depth_cols_data[0].as_slice()),
        ("cache512", depth_cols_data[1].as_slice()),
    ];
    println!(
        "{}",
        ascii_chart(
            "Figure C: zipf1.2 visits per 1000 requests by tree depth (x = depth)",
            &depth_cols,
            None,
            12,
            48,
        )
    );
    for (w, per_cache) in workloads.iter().zip(&series) {
        let base = &per_cache[0];
        let best = &per_cache[FIGC_CACHE_SIZES.len() - 1];
        println!(
            "  {:>9}: hops {:.2} -> {:.2} ({:+.1}%), satisfaction {:.1}% -> {:.1}%, hit {:.1}%, stale {:.2}%",
            w.label,
            base.steady_mean_hops(),
            best.steady_mean_hops(),
            100.0 * (best.steady_mean_hops() - base.steady_mean_hops())
                / base.steady_mean_hops().max(1e-9),
            base.steady_satisfaction(),
            best.steady_satisfaction(),
            best.steady_cache_hit_pct(),
            best.steady_cache_stale_pct(),
        );
    }
    let work: f64 = series
        .iter()
        .flat_map(|per_cache| per_cache.iter().map(|s| s.steady_work))
        .sum();
    println!(
        "  message cost (total_work: delivered + drops + requeues + undeliverable, \
         summed over sweep): {work:.0}"
    );
    println!("  cache capacities: {FIGC_CACHE_SIZES:?}");
    println!("  CSV: {}", path.display());
    println!("  CSV: {}", depth_path.display());
}

//! `perf` — the workspace's hot-path benchmark and the source of the
//! committed `BENCH_<date>.json` baselines at the repo root.
//!
//! Unlike the figure/table binaries (which reproduce the paper's
//! *protocol-level* metrics), this binary times the *implementation*:
//! wall-clock throughput of the structures every experiment runs on.
//! Four benchmarks cover the layers of the routing hot path:
//!
//! * `trie_build` — sequential PGCP-tree construction over the full
//!   grid corpus (≈1000 service names);
//! * `sync_pump_discovery` — a mixed discovery workload on the
//!   synchronous pump (90% exact/range/completion queries, 10%
//!   registrations/deregistrations) — the headline number, and the one
//!   the perf trajectory in EXPERIMENTS.md tracks;
//! * `cached_discovery_off` / `cached_discovery_on` — the same runtime
//!   under a Zipf-skewed mixed workload (90% skewed exact lookups, 10%
//!   re-registrations), with the per-peer shortcut cache
//!   (`dlpt-core::cache`) disabled vs. capacity 256; the on/off ratio
//!   is the caching subsystem's headline speedup;
//! * `latency_net_gather` — scatter/gather completion queries under the
//!   discrete-event runtime with randomized latencies. Runs several
//!   rounds and reports the fastest round (min-of-rounds, the
//!   criterion convention — wall-clock on shared runners suffers
//!   CPU-steal noise that only ever inflates timings), plus
//!   `latency_net_gather_p50` / `_p99` rows with per-query latency
//!   percentiles over every round;
//! * `gather_scaling_d1..d4` — the same scatter/gather engine swept
//!   over completion-prefix depth: depth 1 fans out across most of the
//!   tree, depth 4 touches a handful of nodes, so the row family
//!   tracks how gather cost scales with scatter fan-out;
//! * `codec_roundtrip` — envelope encode/decode over the wire format;
//! * `engine_dispatch` — raw exact-discovery throughput straight
//!   through the unified engine's `deliver` state machine on a FIFO
//!   transport (`dlpt_core::engine`), no facade overhead; also
//!   min-of-rounds. Ships with `engine_dispatch_hops_p50` / `_p99`
//!   rows read from the engine's log-bucketed metrics registry
//!   (`dlpt_core::obs`) — their `ns_per_op` *is* the hop percentile
//!   (a count, not nanoseconds; `ns_total` is synthesized as
//!   `pXX * ops` to keep the flat snapshot schema);
//! * `engine_dispatch_traced` — the identical pre-drawn plan with the
//!   ring-buffer tracer on (capacity 4096). The paired
//!   `engine_dispatch` / `engine_dispatch_traced` op/s ratio is the
//!   tracer-overhead gate: `scripts/bench_regress.py` fails if tracing
//!   costs more than 10%;
//! * `engine_dispatch_snapshot` — the identical plan again with the
//!   health observatory on: a `HealthMonitor` snapshot is collected at
//!   every unit boundary (`dlpt_core::obs::health`). The paired
//!   `engine_dispatch` / `engine_dispatch_snapshot` ratio is the
//!   snapshot-overhead gate: `bench_regress.py` fails above 5%;
//! * `parallel_pump_discovery` — batched exact discovery through the
//!   shared-nothing slice pump (`dlpt_core::engine::parallel`) at
//!   `--workers N` (default 4); the acceptance gate compares its op/s
//!   against single-worker `sync_pump_discovery`. A `parallel_pump_w1`
//!   / `_w2` / `_w4` / `_w8` sweep plus a derived
//!   `pump_scaling_efficiency` ratio row (w8 op/s over 8× w1 op/s,
//!   encoded so `ops_per_sec` *is* the ratio) feed the nproc-aware
//!   scaling gate in `scripts/bench_regress.py`.
//!
//! Usage: `perf [--smoke] [--label NAME] [--out PATH] [--workers N]
//! [--trace PATH]`
//!
//! `--smoke` runs a fraction of the iterations (CI keeps it under a
//! second) but still emits the full JSON snapshot; without `--out` the
//! snapshot lands in `BENCH_<utc-date>.json` in the current directory.
//! Timings are wall-clock; workloads themselves are fully seeded, so
//! two runs time byte-identical operation sequences.
//!
//! `--trace PATH` additionally runs a small seeded traced workload —
//! sequential requests plus a `workers`-way parallel batch — and dumps
//! its merged event stream as deterministic JSONL at PATH (plus a
//! chrome://tracing span file next to it). Two runs with the same
//! arguments produce byte-identical trace files.

use dlpt_core::engine::{FifoTransport, Step, Transport};
use dlpt_core::key::Key;
use dlpt_core::messages::{DiscoveryMsg, Envelope, NodeMsg, QueryKind, RoutePhase};
use dlpt_core::system::DlptSystem;
use dlpt_core::transport::FaultStats;
use dlpt_core::trie::PgcpTrie;
use dlpt_core::HealthMonitor;
use dlpt_net::codec;
use dlpt_net::sim::{LatencyModel, LatencyNet};
use dlpt_workloads::corpus::Corpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

struct BenchResult {
    name: &'static str,
    /// Unit of one operation, for the report ("key", "op", "query",
    /// "frame").
    unit: &'static str,
    ops: u64,
    ns_total: u128,
}

impl BenchResult {
    fn ns_per_op(&self) -> f64 {
        self.ns_total as f64 / self.ops.max(1) as f64
    }
    fn ops_per_sec(&self) -> f64 {
        if self.ns_total == 0 {
            return 0.0;
        }
        self.ops as f64 * 1e9 / self.ns_total as f64
    }
}

fn main() {
    let mut smoke = false;
    let mut label = String::from("snapshot");
    let mut out: Option<String> = None;
    let mut workers: usize = 4;
    let mut trace: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--label" => label = args.next().expect("--label NAME"),
            "--out" => out = args.next(),
            "--workers" => {
                workers = args
                    .next()
                    .expect("--workers N")
                    .parse()
                    .expect("worker count");
            }
            "--trace" => trace = Some(args.next().expect("--trace PATH")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: perf [--smoke] [--label NAME] [--out PATH] [--workers N] \
                     [--trace PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    // Smoke mode divides iteration counts; the workload *shape* is
    // identical so the JSON schema and code paths are fully exercised.
    let scale: u64 = if smoke { 20 } else { 1 };

    let mut results = vec![
        bench_trie_build(scale),
        bench_sync_pump(scale),
        bench_cached_discovery(scale, 0),
        bench_cached_discovery(scale, 256),
    ];
    results.extend(bench_latency_net(scale));
    results.extend(bench_gather_scaling(scale));
    results.push(bench_codec(scale));
    results.extend(bench_engine_dispatch(scale, DispatchMode::Plain));
    results.extend(bench_engine_dispatch(scale, DispatchMode::Traced));
    results.extend(bench_engine_dispatch(scale, DispatchMode::Snapshot));
    results.extend(bench_parallel_pump(scale, workers));

    let date = utc_date();
    let path = out.unwrap_or_else(|| format!("BENCH_{date}.json"));
    let json = render_json(&label, &date, smoke, workers, &results);
    std::fs::write(&path, &json).expect("write benchmark snapshot");

    for r in &results {
        println!(
            "{:<22} {:>12} {}s  {:>12.0} ns/{}  {:>14.0} {}/s",
            r.name,
            r.ops,
            r.unit,
            r.ns_per_op(),
            r.unit,
            r.ops_per_sec(),
            r.unit,
        );
    }
    println!("snapshot: {path}");
    if let Some(trace_path) = trace {
        write_perf_trace(std::path::Path::new(&trace_path), workers);
    }
}

/// The `--trace` companion run: a small seeded workload with the
/// tracer on — sequential exact/completion requests plus one
/// `workers`-way parallel batch, so the dump exercises both the
/// sequential stamping and the `(round, worker, seq)` merge. Fully
/// seeded: two runs produce byte-identical JSONL.
fn write_perf_trace(path: &std::path::Path, workers: usize) {
    let corpus = Corpus::grid();
    let keys: Vec<Key> = corpus.keys.iter().take(64).cloned().collect();
    let mut sys = DlptSystem::builder()
        .seed(0x7124CE)
        .peer_id_len(12)
        .bootstrap_peers(16)
        .build();
    for k in &keys {
        sys.insert_data(k.clone()).expect("registration");
    }
    sys.set_tracing(1 << 14);
    for k in keys.iter().take(8) {
        sys.lookup(k);
    }
    sys.complete(&keys[0].truncated(2));
    let queries: Vec<QueryKind> = keys
        .iter()
        .take(32)
        .map(|k| QueryKind::Exact(k.clone()))
        .collect();
    sys.discover_batch(queries, workers.max(2))
        .expect("traced parallel batch");
    let events = sys.take_trace();
    let chrome = dlpt_bench::write_trace_files(path, &events).expect("write perf trace files");
    println!(
        "trace: {} events -> {} (+ {})",
        events.len(),
        path.display(),
        chrome.display()
    );
}

// ---------------------------------------------------------------------
// Benchmarks
// ---------------------------------------------------------------------

/// Sequential PGCP-tree construction over the grid corpus.
fn bench_trie_build(scale: u64) -> BenchResult {
    let corpus = Corpus::grid();
    // Each round is only ~0.3 ms, so even the smoke run keeps enough
    // rounds that one of them lands inside a steal-free window.
    let rounds = (40 / scale).max(10);
    // Warm-up build (page in the corpus, size the allocator pools).
    let mut warm = PgcpTrie::new();
    for k in &corpus.keys {
        warm.insert(k.clone());
    }
    // Min-of-rounds, like the other headline rows: each round is a
    // full rebuild, and the fastest one is the machine-quiet cost.
    let mut best = u128::MAX;
    for _ in 0..rounds {
        let start = Instant::now();
        let mut t = PgcpTrie::new();
        for k in &corpus.keys {
            t.insert(k.clone());
        }
        assert!(t.node_count() >= corpus.len());
        best = best.min(start.elapsed().as_nanos());
    }
    BenchResult {
        name: "trie_build",
        unit: "key",
        ops: corpus.len() as u64,
        ns_total: best,
    }
}

/// Mixed discovery workload on the synchronous pump: 90% discovery
/// (exact/range/completion), 10% data churn (register/deregister).
fn bench_sync_pump(scale: u64) -> BenchResult {
    let corpus = Corpus::grid();
    let keys: Vec<Key> = corpus.keys.iter().take(400).cloned().collect();
    let mut sys = DlptSystem::builder()
        .seed(0xBE_EF)
        .peer_id_len(12)
        .bootstrap_peers(48)
        .build();
    for k in &keys {
        sys.insert_data(k.clone()).expect("registration");
    }
    let ops = (60_000 / scale).max(500);
    // Warm-up: one query of each kind grows every internal buffer.
    sys.lookup(&keys[0]);
    sys.complete(&Key::from("S3L_m"));
    sys.range(&keys[1], &keys[2]);
    // Min-of-rounds over identical mixed-workload passes (steal noise
    // only ever adds time; the tree returns to steady state after
    // every pass, so rounds are comparable).
    let rounds = 3u32;
    let mut best = u128::MAX;
    for round in 0..rounds {
        let mut rng = StdRng::seed_from_u64(7 + round as u64);
        let start = Instant::now();
        let mut satisfied = 0u64;
        for i in 0..ops {
            match rng.gen_range(0..100u32) {
                0..=79 => {
                    let k = &keys[rng.gen_range(0..keys.len())];
                    if sys.lookup(k).satisfied {
                        satisfied += 1;
                    }
                }
                80..=84 => {
                    let a = rng.gen_range(0..keys.len());
                    let b = rng.gen_range(0..keys.len());
                    let (lo, hi) = (a.min(b), a.max(b));
                    sys.range(&keys[lo], &keys[hi]);
                }
                85..=89 => {
                    let k = &keys[rng.gen_range(0..keys.len())];
                    sys.complete(&k.truncated(3));
                }
                90..=94 => {
                    // Re-register an existing key from a random entry
                    // (idempotent; still routes the full insertion path).
                    let k = keys[rng.gen_range(0..keys.len())].clone();
                    sys.insert_data(k).expect("insert");
                }
                _ => {
                    // Deregister, then immediately re-register so the tree
                    // returns to steady state.
                    let k = keys[rng.gen_range(0..keys.len())].clone();
                    sys.remove_data(&k).expect("remove");
                    sys.insert_data(k).expect("re-insert");
                }
            }
            if i % 4096 == 0 {
                sys.end_time_unit();
            }
        }
        best = best.min(start.elapsed().as_nanos());
        assert!(satisfied > 0, "workload must find keys");
    }
    BenchResult {
        name: "sync_pump_discovery",
        unit: "op",
        ops,
        ns_total: best,
    }
}

/// Zipf-skewed mixed workload (90% skewed exact lookups, 10%
/// re-registrations) with the routing-shortcut cache off
/// (`cache_capacity` 0) vs. on (256 per peer). Identical seeds, so
/// both runs process byte-identical operation streams; the on/off
/// op/s ratio isolates what the one-hop cached route buys.
fn bench_cached_discovery(scale: u64, cache_capacity: usize) -> BenchResult {
    use dlpt_workloads::popularity::{Popularity, Zipf};
    let corpus = Corpus::grid();
    let keys: Vec<Key> = corpus.keys.iter().take(400).cloned().collect();
    let mut sys = DlptSystem::builder()
        .seed(0xCAC4E)
        .peer_id_len(12)
        .cache_capacity(cache_capacity)
        .bootstrap_peers(48)
        .build();
    for k in &keys {
        sys.insert_data(k.clone()).expect("registration");
    }
    let ops = (60_000 / scale).max(500);
    // Warm-up: one lookup grows the internal buffers.
    sys.lookup(&keys[0]);
    // Min-of-rounds over identical passes (see `bench_sync_pump`).
    let rounds = 3u32;
    let mut best = u128::MAX;
    for round in 0..rounds {
        let mut rng = StdRng::seed_from_u64(11 + round as u64);
        let mut zipf = Zipf::new(1.2);
        let start = Instant::now();
        let mut satisfied = 0u64;
        for i in 0..ops {
            if rng.gen_range(0..100u32) < 90 {
                let k = &keys[zipf.pick(&keys, &mut rng, 0)];
                if sys.lookup(k).satisfied {
                    satisfied += 1;
                }
            } else {
                // Re-register an existing key: routes the full insertion
                // path and exercises epoch bumps against warm caches.
                let k = keys[rng.gen_range(0..keys.len())].clone();
                sys.insert_data(k).expect("insert");
            }
            if i % 4096 == 0 {
                sys.end_time_unit();
            }
        }
        best = best.min(start.elapsed().as_nanos());
        assert!(satisfied > 0, "workload must find keys");
    }
    let ns_total = best;
    if cache_capacity > 0 {
        assert!(
            sys.cache_stats.hits > 0,
            "skewed workload must hit the cache"
        );
    } else {
        assert_eq!(sys.cache_stats.hits, 0);
    }
    BenchResult {
        name: if cache_capacity > 0 {
            "cached_discovery_on"
        } else {
            "cached_discovery_off"
        },
        unit: "op",
        ops,
        ns_total,
    }
}

/// Scatter/gather completion queries under randomized latencies.
///
/// Five rounds over the same prefix rotation; the headline row is the
/// fastest round (min-of-rounds — steal noise on shared runners only
/// ever adds time, so the minimum is the closest observable to the
/// machine-quiet cost). Per-query samples from every round feed the
/// `_p50` / `_p99` percentile rows, whose `ns_per_op` *is* the
/// percentile (their `ns_total` is synthesized as `pXX * ops` to keep
/// the flat snapshot schema).
fn bench_latency_net(scale: u64) -> Vec<BenchResult> {
    let corpus = Corpus::s3l();
    let mut net = LatencyNet::new(LatencyModel::Uniform(1, 30), 0xC0FFEE);
    let alphabet = dlpt_core::alphabet::Alphabet::grid();
    let mut rng = StdRng::seed_from_u64(0xFEED);
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < 16 {
        let id = alphabet.random_id(&mut rng, 10);
        if chosen.insert(id.clone()) {
            net.add_peer(id);
        }
    }
    for k in &corpus.keys {
        net.insert_data(k.clone());
    }
    let rounds = 5u64;
    let queries = (4_000 / scale).max(50);
    let prefixes = [
        Key::from("S3L_"),
        Key::from("S3L_mat"),
        Key::from("S3L_sort"),
        Key::from("S3L_gen"),
        Key::from("S3L_fft"),
    ];
    let mut samples: Vec<u64> = Vec::with_capacity((rounds * queries) as usize);
    let mut best_round = u128::MAX;
    for _ in 0..rounds {
        let round = Instant::now();
        for i in 0..queries {
            let q = Instant::now();
            let (ok, _results) = net.complete(&prefixes[(i % prefixes.len() as u64) as usize]);
            samples.push(q.elapsed().as_nanos() as u64);
            assert!(ok, "completion must reach its region");
        }
        best_round = best_round.min(round.elapsed().as_nanos());
    }
    samples.sort_unstable();
    let pct = |p: f64| samples[((samples.len() - 1) as f64 * p) as usize] as u128;
    let n = samples.len() as u64;
    vec![
        BenchResult {
            name: "latency_net_gather",
            unit: "query",
            ops: queries,
            ns_total: best_round,
        },
        BenchResult {
            name: "latency_net_gather_p50",
            unit: "query",
            ops: n,
            ns_total: pct(0.50) * n as u128,
        },
        BenchResult {
            name: "latency_net_gather_p99",
            unit: "query",
            ops: n,
            ns_total: pct(0.99) * n as u128,
        },
    ]
}

/// Gather cost vs. scatter fan-out: completion queries whose prefix
/// depth sweeps from 1 (the query fans out across most of the tree)
/// to 4 (a handful of nodes). One row per depth, so the slowest
/// subsystem's scaling behaviour — not just its headline mean — has a
/// committed trajectory.
///
/// Two rows per depth: `gather_scaling_dN` (ns/query) and
/// `gather_scaling_dN_visit` (ns per node visit, using the measured
/// round's visit count). The per-visit row is what separates real
/// fan-out from harness pathology: a depth-1 prefix covers most of the
/// 300-key tree, so d1 legitimately visits an order of magnitude more
/// nodes per query than d2 — its per-*query* cost is high while its
/// per-*visit* cost stays flat. (The original single-pass harness also
/// ran d1 first on cold buffers, inflating its row further; warm-up +
/// min-of-rounds removes that bias.)
fn bench_gather_scaling(scale: u64) -> Vec<BenchResult> {
    const DEPTHS: [(&str, &str, usize); 4] = [
        ("gather_scaling_d1", "gather_scaling_d1_visit", 1),
        ("gather_scaling_d2", "gather_scaling_d2_visit", 2),
        ("gather_scaling_d3", "gather_scaling_d3_visit", 3),
        ("gather_scaling_d4", "gather_scaling_d4_visit", 4),
    ];
    let corpus = Corpus::grid();
    let keys: Vec<Key> = corpus.keys.iter().take(300).cloned().collect();
    let mut net = LatencyNet::new(LatencyModel::Uniform(1, 30), 0xFA_0C);
    let alphabet = dlpt_core::alphabet::Alphabet::grid();
    let mut rng = StdRng::seed_from_u64(0xFA_22);
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < 16 {
        let id = alphabet.random_id(&mut rng, 10);
        if chosen.insert(id.clone()) {
            net.add_peer(id);
        }
    }
    for k in &keys {
        net.insert_data(k.clone());
    }
    let queries = (400 / scale).max(25);
    let mut rows = Vec::with_capacity(DEPTHS.len() * 2);
    for &(name, visit_name, depth) in DEPTHS.iter() {
        let run = |net: &mut LatencyNet| {
            for i in 0..queries {
                let k = &keys[(i as usize * 37) % keys.len()];
                let (ok, _results) = net.complete(&k.truncated(depth));
                assert!(ok, "completion must reach its region");
            }
        };
        // Warm-up: the first pass pays allocator growth (event queue,
        // gather buffers) that later passes reuse.
        run(&mut net);
        let mut best = u128::MAX;
        let mut visits = 0u64;
        for _ in 0..3 {
            let before = net.stats.discovery_messages;
            let start = Instant::now();
            run(&mut net);
            best = best.min(start.elapsed().as_nanos());
            // The query set is fixed, so the visit count is identical
            // in every round.
            visits = net.stats.discovery_messages - before;
        }
        rows.push(BenchResult {
            name,
            unit: "query",
            ops: queries,
            ns_total: best,
        });
        rows.push(BenchResult {
            name: visit_name,
            unit: "visit",
            ops: visits.max(1),
            ns_total: best,
        });
    }
    rows
}

/// Envelope encode/decode round-trips over representative frames.
fn bench_codec(scale: u64) -> BenchResult {
    let corpus = Corpus::grid();
    let envs: Vec<Envelope> = corpus
        .keys
        .iter()
        .take(256)
        .enumerate()
        .map(|(i, k)| {
            Envelope::to_node(
                k.clone(),
                NodeMsg::Discovery(DiscoveryMsg {
                    request_id: i as u64,
                    query: QueryKind::Exact(k.clone()),
                    phase: RoutePhase::Up,
                    path: vec![k.truncated(1), k.truncated(3), k.clone()],
                }),
            )
        })
        .collect();
    let rounds = (2_000 / scale).max(40);
    let start = Instant::now();
    let mut bytes = 0usize;
    for _ in 0..rounds {
        for env in &envs {
            let frame = codec::encode(env);
            bytes += frame.len();
            let back = codec::decode(&frame).expect("round-trip");
            debug_assert_eq!(&back, env);
        }
    }
    let ns_total = start.elapsed().as_nanos();
    assert!(bytes > 0);
    BenchResult {
        name: "codec_roundtrip",
        unit: "frame",
        ops: rounds * envs.len() as u64,
        ns_total,
    }
}

/// Raw engine dispatch: exact discovery requests driven straight
/// through `Engine::deliver` over a FIFO transport — the unified state
/// machine's per-envelope cost with no facade (drain bookkeeping,
/// outcome plumbing) around it. Six rounds replay the identical
/// pre-drawn plan; the reported row is the fastest round
/// (min-of-rounds, same rationale as `latency_net_gather`).
///
/// In `Plain` mode every observability hook stays off
/// (`Tracer::Noop`, no health monitor) and the function also emits
/// `engine_dispatch_hops_p50` / `_p99` rows from the engine's metrics
/// registry; `Traced` runs the identical plan with the ring tracer on
/// (capacity 4096) as `engine_dispatch_traced`; `Snapshot` runs it
/// with a `HealthMonitor` collected at every unit boundary as
/// `engine_dispatch_snapshot`. The paired off/on op/s ratios are the
/// committed tracer- and snapshot-overhead numbers.
#[derive(Clone, Copy, PartialEq)]
enum DispatchMode {
    Plain,
    Traced,
    Snapshot,
}

fn bench_engine_dispatch(scale: u64, mode: DispatchMode) -> Vec<BenchResult> {
    let corpus = Corpus::grid();
    let keys: Vec<Key> = corpus.keys.iter().take(400).cloned().collect();
    let mut sys = DlptSystem::builder()
        .seed(0xE9_61E)
        .peer_id_len(12)
        .bootstrap_peers(48)
        .build();
    for k in &keys {
        sys.insert_data(k.clone()).expect("registration");
    }
    sys.set_tracing(if mode == DispatchMode::Traced {
        4096
    } else {
        0
    });
    let mut monitor = HealthMonitor::new();
    if mode == DispatchMode::Snapshot {
        // Warm collection: grow the monitor's buffers outside the
        // timed region so the in-loop collect is allocation-free.
        sys.collect_health(0, &FaultStats::default(), &mut monitor);
    }
    let rounds = 6u64;
    // Floor high enough that the smoke run keeps the full run's
    // 1-in-4096 snapshot cadence (two collections per round) and the
    // paired off/on ratios stay meaningful — at 500 ops the lone
    // i == 0 collection weighs 4× its full-run share and round noise
    // swamps the ≤5% snapshot gate.
    let ops = (20_000 / scale).max(8192);
    let mut rng = StdRng::seed_from_u64(17);
    // Pre-draw (entry, key) pairs so the timed loop is dispatch only.
    let plan: Vec<(Key, Key)> = (0..ops)
        .map(|_| {
            let key = keys[rng.gen_range(0..keys.len())].clone();
            let entry = sys.random_node().expect("non-empty tree");
            (entry, key)
        })
        .collect();
    let mut best_round = u128::MAX;
    for _ in 0..rounds {
        let mut t = FifoTransport::default();
        let mut satisfied = 0u64;
        let start = Instant::now();
        for (i, (entry, key)) in plan.iter().enumerate() {
            let (id, env) = sys
                .begin_request(entry, QueryKind::Exact(key.clone()))
                .expect("live entry");
            t.deliver(env);
            while let Some((_, env)) = t.queue.pop_front() {
                match sys.deliver(&mut t, env).expect("dispatch") {
                    Step::Done => {}
                    Step::Requeue(_) => unreachable!("static tree never requeues"),
                }
            }
            if sys.take_finished(id).expect("request completed").satisfied {
                satisfied += 1;
            }
            if i % 4096 == 0 {
                if mode == DispatchMode::Snapshot {
                    sys.collect_health((i / 4096) as u64, &FaultStats::default(), &mut monitor);
                }
                sys.end_time_unit();
            }
        }
        best_round = best_round.min(start.elapsed().as_nanos());
        assert!(satisfied > 0, "workload must find keys");
        // Drain outside the timed region: the per-event emit cost is
        // what the overhead row measures; consumers drain at their own
        // cadence.
        let _ = sys.take_trace();
    }
    match mode {
        DispatchMode::Traced => {
            return vec![BenchResult {
                name: "engine_dispatch_traced",
                unit: "op",
                ops,
                ns_total: best_round,
            }];
        }
        DispatchMode::Snapshot => {
            assert!(
                monitor.snap.nodes > 0 && monitor.snap.bytes.total() > 0,
                "snapshot mode must have collected real state"
            );
            return vec![BenchResult {
                name: "engine_dispatch_snapshot",
                unit: "op",
                ops,
                ns_total: best_round,
            }];
        }
        DispatchMode::Plain => {}
    }
    // Percentile rows from the log-bucketed registry, accumulated over
    // every round. Same synthesized-`ns_total` convention as the
    // latency percentiles — except here `ns_per_op` is a *hop count*.
    let recorded = sys.metrics.hops.count().max(1);
    vec![
        BenchResult {
            name: "engine_dispatch",
            unit: "op",
            ops,
            ns_total: best_round,
        },
        BenchResult {
            name: "engine_dispatch_hops_p50",
            unit: "op",
            ops: recorded,
            ns_total: sys.metrics.hops.quantile(0.50).unwrap_or(0) as u128 * recorded as u128,
        },
        BenchResult {
            name: "engine_dispatch_hops_p99",
            unit: "op",
            ops: recorded,
            ns_total: sys.metrics.hops.quantile(0.99).unwrap_or(0) as u128 * recorded as u128,
        },
    ]
}

/// One worker count of the parallel-pump workload: the same overlay
/// shape as `sync_pump_discovery`, pure exact queries, processed in
/// 4096-request batches through the shared-nothing slice pump.
fn pump_row(scale: u64, workers: usize, name: &'static str) -> BenchResult {
    let corpus = Corpus::grid();
    let keys: Vec<Key> = corpus.keys.iter().take(400).cloned().collect();
    let mut sys = DlptSystem::builder()
        .seed(0xBA_7C4)
        .peer_id_len(12)
        .bootstrap_peers(48)
        .build();
    for k in &keys {
        sys.insert_data(k.clone()).expect("registration");
    }
    let ops = (240_000 / scale).max(2_000);
    let batch = 4096usize;
    let mut rng = StdRng::seed_from_u64(19);
    // Warm-up batch grows every internal buffer (queues, gather maps)
    // outside the timed region. Worker threads and the ring mesh are
    // rebuilt per batch, so the timed op/s *includes* that spawn cost —
    // a persistent worker pool is the obvious next optimization.
    let warm: Vec<QueryKind> = (0..256)
        .map(|_| QueryKind::Exact(keys[rng.gen_range(0..keys.len())].clone()))
        .collect();
    sys.discover_batch(warm, workers).expect("warm-up batch");
    // Min-of-rounds over full passes: thread scheduling on a shared
    // box adds wildly variable stall time, and only ever *adds* — the
    // fastest pass is the machine-quiet cost.
    let rounds = 3u32;
    let mut best = u128::MAX;
    for _ in 0..rounds {
        let mut satisfied = 0u64;
        let mut remaining = ops;
        let start = Instant::now();
        while remaining > 0 {
            let n = (remaining as usize).min(batch);
            let queries: Vec<QueryKind> = (0..n)
                .map(|_| QueryKind::Exact(keys[rng.gen_range(0..keys.len())].clone()))
                .collect();
            let outs = sys.discover_batch(queries, workers).expect("batch");
            satisfied += outs.iter().filter(|o| o.satisfied).count() as u64;
            sys.end_time_unit();
            remaining -= n as u64;
        }
        best = best.min(start.elapsed().as_nanos());
        assert!(satisfied > 0, "workload must find keys");
    }
    BenchResult {
        name,
        unit: "op",
        ops,
        ns_total: best,
    }
}

/// The parallel-pump scaling sweep: one row per worker count in
/// {1, 2, 4, 8} (`parallel_pump_wN`), the headline
/// `parallel_pump_discovery` row at the `--workers` argument, and the
/// derived `pump_scaling_efficiency` row — w8 throughput over 8× the
/// w1 throughput, encoded so `ops_per_sec` *is* the ratio (gateable by
/// `scripts/bench_regress.py` like any other row). Efficiency on a
/// single-core container measures overhead, not scaling — interpret it
/// together with the recorded `nproc`.
fn bench_parallel_pump(scale: u64, workers: usize) -> Vec<BenchResult> {
    const SWEEP: [(usize, &str); 4] = [
        (1, "parallel_pump_w1"),
        (2, "parallel_pump_w2"),
        (4, "parallel_pump_w4"),
        (8, "parallel_pump_w8"),
    ];
    let mut rows: Vec<BenchResult> = SWEEP
        .iter()
        .map(|&(w, name)| pump_row(scale, w, name))
        .collect();
    let w1_ops = rows[0].ops_per_sec();
    let w8_ops = rows[3].ops_per_sec();
    let headline = match SWEEP.iter().position(|&(w, _)| w == workers) {
        // The sweep already measured this worker count; reuse the
        // timing so the two rows can never disagree.
        Some(i) => BenchResult {
            name: "parallel_pump_discovery",
            unit: "op",
            ops: rows[i].ops,
            ns_total: rows[i].ns_total,
        },
        None => pump_row(scale, workers, "parallel_pump_discovery"),
    };
    rows.push(headline);
    // ops_per_sec = ops·1e9/ns_total, so ops = ratio·1e6 against a
    // fixed 1e15 ns denominator makes the reported ops_per_sec equal
    // the efficiency ratio itself.
    let efficiency = if w1_ops > 0.0 {
        w8_ops / (8.0 * w1_ops)
    } else {
        0.0
    };
    rows.push(BenchResult {
        name: "pump_scaling_efficiency",
        unit: "ratio",
        ops: (efficiency * 1e6).round() as u64,
        ns_total: 1_000_000_000_000_000,
    });
    rows
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

/// Renders the snapshot as JSON (hand-rolled; the workspace is
/// offline-only and the schema is flat).
fn render_json(
    label: &str,
    date: &str,
    smoke: bool,
    workers: usize,
    results: &[BenchResult],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"label\": \"{label}\",");
    let _ = writeln!(s, "  \"date\": \"{date}\",");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"workers\": {workers},");
    // Hardware context: scaling rows from a single-core container are
    // overhead measurements, not parallel speedups — record the core
    // count so regression tooling can tell the two apart.
    let nproc = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let _ = writeln!(s, "  \"nproc\": {nproc},");
    s.push_str("  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {");
        let _ = write!(
            s,
            "\"name\": \"{}\", \"unit\": \"{}\", \"ops\": {}, \"ns_total\": {}, \
             \"ns_per_op\": {:.1}, \"ops_per_sec\": {:.1}",
            r.name,
            r.unit,
            r.ops,
            r.ns_total,
            r.ns_per_op(),
            r.ops_per_sec()
        );
        s.push_str(if i + 1 == results.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Current UTC date as `YYYY-MM-DD` (civil-from-days, Howard Hinnant's
/// algorithm; avoids a chrono dependency).
fn utc_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after 1970")
        .as_secs() as i64;
    let z = secs.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the `gather_scaling_d1` "anomaly" as real fan-out, not a
    /// harness bug: on the bench's own topology, a depth-1 completion
    /// visits an order of magnitude more nodes than a depth-2 one —
    /// the per-query cost ratio in the committed snapshots tracks the
    /// visit-count ratio, which is exactly what the `_visit` rows
    /// normalize away.
    #[test]
    fn depth1_completions_fan_out_over_most_of_the_tree() {
        let corpus = Corpus::grid();
        let keys: Vec<Key> = corpus.keys.iter().take(300).cloned().collect();
        let mut net = LatencyNet::new(LatencyModel::Uniform(1, 30), 0xFA_0C);
        let alphabet = dlpt_core::alphabet::Alphabet::grid();
        let mut rng = StdRng::seed_from_u64(0xFA_22);
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < 16 {
            let id = alphabet.random_id(&mut rng, 10);
            if chosen.insert(id.clone()) {
                net.add_peer(id);
            }
        }
        for k in &keys {
            net.insert_data(k.clone());
        }
        let mut visits_at = |depth: usize| {
            let before = net.stats.discovery_messages;
            for i in 0..25usize {
                let k = &keys[(i * 37) % keys.len()];
                let (ok, _) = net.complete(&k.truncated(depth));
                assert!(ok, "completion must reach its region");
            }
            net.stats.discovery_messages - before
        };
        let d1 = visits_at(1);
        let d2 = visits_at(2);
        let d4 = visits_at(4);
        assert!(
            d1 >= 5 * d2,
            "depth-1 queries must fan out over far more nodes (d1={d1}, d2={d2})"
        );
        assert!(
            d2 > d4,
            "fan-out must shrink monotonically with depth (d2={d2}, d4={d4})"
        );
    }
}

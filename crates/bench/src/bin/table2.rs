//! Table 2 — "Complexities of close trie-structured approaches":
//! P-Grid vs PHT vs DLPT, measured on an identical corpus instead of
//! transcribed. Routing = mean physical hops per exact lookup; state =
//! mean references per peer. The paper's asymptotic claims are shown
//! alongside the measurements.
//!
//! `cargo run --release --bin table2 [-- --scale N]`

use dlpt_bench::scale_from_args;
use dlpt_sim::experiments::table2_measure;
use dlpt_sim::report::{ascii_table, results_dir};
use std::io::Write;

fn main() {
    let scale = scale_from_args();
    let (peers, keys, lookups) = if scale > 1 {
        (100 / scale.min(4), 1000 / scale, 2000 / scale)
    } else {
        (100, 1000, 2000)
    };
    eprintln!("[table2] {peers} peers, {keys} keys, {lookups} lookups per system…");
    let rows = table2_measure(peers, keys, lookups, 0xD1B2);
    let mut table = Vec::new();
    let mut csv = String::from("system,routing_hops,logical_levels,local_state\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{:.2},{:.2},{:.2}\n",
            r.system, r.routing_hops, r.logical_levels, r.local_state
        ));
        table.push(vec![
            r.system.to_string(),
            format!("{:.2}", r.routing_hops),
            format!("{:.2}", r.logical_levels),
            format!("{:.2}", r.local_state),
            r.theory_routing.to_string(),
            r.theory_state.to_string(),
        ]);
    }
    println!("Table 2: measured complexities of trie-structured approaches");
    println!(
        "{}",
        ascii_table(
            &[
                "System",
                "Routing hops",
                "Logical levels",
                "State/peer",
                "Theory (routing)",
                "Theory (state)"
            ],
            &table
        )
    );
    let path = results_dir().join("table2.csv");
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(csv.as_bytes()))
        .expect("write results CSV");
    println!("  CSV: {}", path.display());
}

//! Figure R (replication extension) — satisfaction and data survival
//! vs. crash rate, at replication k ∈ {1, 2, 3}, with and without the
//! self-healing anti-entropy pass.
//!
//! The paper's Figures 4–8 only churn peers *gracefully*; every node a
//! crashed peer would host is silently destroyed in the k = 1 design.
//! This figure quantifies that loss and what `protocol::repair` buys
//! back: with k = 2 and anti-entropy enabled, a horizon that crashes
//! ~30% of the population ends with 100% of the registered keys still
//! discoverable, while the k = 1 baseline demonstrably loses data.
//!
//! `cargo run --release --bin figR [-- --scale N]`
//!
//! Emits `results/figR.csv` (one row per crash rate, satisfaction and
//! survival columns per curve) plus two ASCII charts.

use dlpt_bench::scale_from_args;
use dlpt_sim::experiments::{figr_config, figr_variants, FIGR_CRASH_RATES};
use dlpt_sim::report::{ascii_chart, results_dir};
use dlpt_sim::runner::run_experiment;
use std::io::Write as _;

fn main() {
    let scale = scale_from_args();
    let variants = figr_variants();
    // satisfaction[v][r], survival[v][r]
    let mut satisfaction = vec![Vec::new(); variants.len()];
    let mut survival = vec![Vec::new(); variants.len()];
    for &rate in FIGR_CRASH_RATES.iter() {
        for (vi, v) in variants.iter().enumerate() {
            let mut cfg = figr_config(rate, *v);
            if scale > 1 {
                cfg = cfg.scaled_down(scale);
                // Keep the 50-unit horizon: the sweep's cumulative
                // crash fractions (~10/30/60/100% of the population)
                // are a function of rate × units, and the steady-state
                // window must stay non-empty.
                cfg.time_units = 50;
                cfg.growth_units = 10;
            }
            eprintln!(
                "[figR] running {} ({} runs x {} units, {} peers)…",
                cfg.name, cfg.runs, cfg.time_units, cfg.peers
            );
            let series = run_experiment(&cfg);
            satisfaction[vi].push(series.steady_satisfaction());
            survival[vi].push(series.final_survival());
        }
    }

    let path = results_dir().join("figR.csv");
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create figR.csv"));
    write!(f, "crash_rate").expect("write");
    for v in &variants {
        write!(f, ",sat_{}", v.label).expect("write");
    }
    for v in &variants {
        write!(f, ",surv_{}", v.label).expect("write");
    }
    writeln!(f).expect("write");
    for (ri, rate) in FIGR_CRASH_RATES.iter().enumerate() {
        write!(f, "{rate}").expect("write");
        for curve in &satisfaction {
            write!(f, ",{:.4}", curve[ri]).expect("write");
        }
        for curve in &survival {
            write!(f, ",{:.4}", curve[ri]).expect("write");
        }
        writeln!(f).expect("write");
    }
    f.flush().expect("flush figR.csv");

    let sat_cols: Vec<(&str, &[f64])> = variants
        .iter()
        .zip(&satisfaction)
        .map(|(v, s)| (v.label, s.as_slice()))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "Figure R: % satisfied requests vs. crash rate (x = sweep point)",
            &sat_cols,
            Some(100.0),
            14,
            48,
        )
    );
    let surv_cols: Vec<(&str, &[f64])> = variants
        .iter()
        .zip(&survival)
        .map(|(v, s)| (v.label, s.as_slice()))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "Figure R: % registered keys surviving the horizon",
            &surv_cols,
            Some(100.0),
            14,
            48,
        )
    );
    for (vi, v) in variants.iter().enumerate() {
        println!(
            "  {:>7}: survival {:>5.1}%..{:>5.1}%  satisfaction {:>5.1}%..{:>5.1}% (low..high crash rate)",
            v.label,
            survival[vi].first().unwrap_or(&100.0),
            survival[vi].last().unwrap_or(&100.0),
            satisfaction[vi].first().unwrap_or(&0.0),
            satisfaction[vi].last().unwrap_or(&0.0),
        );
    }
    println!("  crash rates per unit: {FIGR_CRASH_RATES:?}");
    println!("  CSV: {}", path.display());
}

//! Figure 8 — "Load balancing, dynamic network, hot spots": 160 time
//! units, 50 runs; uniform traffic, then a burst on the S3L library
//! (units 40–80), then on ScaLAPACK's "P" routines (80–120), then
//! uniform again.
//!
//! `cargo run --release --bin fig8 [-- --scale N]`

use dlpt_bench::{apply_scale, run_satisfaction_figure, scale_from_args};
use dlpt_sim::experiments::fig8_configs;

fn main() {
    let scale = scale_from_args();
    let mut configs = fig8_configs();
    if scale > 1 {
        // Keep the 160-unit hot-spot timeline; shrink the platform.
        configs = apply_scale(configs, scale)
            .into_iter()
            .map(|mut c| {
                c.time_units = 160;
                c
            })
            .collect();
    }
    run_satisfaction_figure(
        "fig8",
        configs,
        "Figure 8: dynamic network with hot spots (S3L @40, P @80, uniform @120)",
    );
}

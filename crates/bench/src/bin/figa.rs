//! Figure A (fault extension) — satisfaction, route length and data
//! survival vs. message-loss rate, at replication k ∈ {1, 2 + AE},
//! under 5% duplication and a healable partition over units 25–34.
//!
//! The paper's simulation assumes a perfect transport: no message is
//! ever lost, duplicated or delayed past quiescence. This figure runs
//! the same Section-4 loop over the seeded fault-injection layer
//! (`dlpt_core::transport::FaultyTransport`) and measures what the
//! request-retry machinery and the replication extension buy back:
//! every request still terminates, and with k = 2 + anti-entropy the
//! registered keys stay ≥ 99% discoverable after the partition heals.
//!
//! `cargo run --release --bin figA [-- --scale N]`
//!
//! Emits `results/figA.csv` (one row per loss rate; satisfaction,
//! mean-hop, survival and fault-counter columns per curve) plus two
//! ASCII charts. With `--trace PATH` it additionally runs one small
//! seeded lossy system with the tracer on and dumps the event stream
//! as JSONL (plus a chrome://tracing span file next to it).

use dlpt_bench::{
    health_path_from_args, scale_from_args, trace_path_from_args, write_health_files,
    write_trace_files,
};
use dlpt_core::messages::QueryKind;
use dlpt_core::{Alphabet, DlptSystem, FaultPlan, Key};
use dlpt_sim::experiments::{figa_config, figa_variants, FIGA_LOSS_RATES};
use dlpt_sim::report::{ascii_chart, results_dir};
use dlpt_sim::runner::{average, health_jsonl, run_all};
use std::io::Write as _;

/// Per-curve, per-loss-rate fault counters persisted into the CSV so
/// the committed figure carries the fault story, not just its outcome.
#[derive(Default, Clone)]
struct FaultCols {
    lost: f64,
    duplicated: f64,
    dedup: f64,
    retries: f64,
    failed: f64,
}

/// A small scripted lossy run with the tracer on, for `--trace`: the
/// figure sweep itself stays untraced so its numbers are the committed
/// ones, while this companion run shows what the retry machinery does
/// under a figA-like 10% loss / 5% duplication plan.
fn traced_sample(path: &std::path::Path) {
    let mut sys = DlptSystem::builder()
        .alphabet(Alphabet::grid())
        .seed(0xF16A)
        .peer_id_len(12)
        .bootstrap_peers(5)
        .build();
    sys.set_fault_plan(FaultPlan {
        loss_rate: 0.10,
        dup_rate: 0.05,
        reorder_rate: 0.05,
        seed: 0xF16A ^ 0xFA17,
    });
    sys.set_tracing(1 << 14);
    for k in ["DGEMM", "DGEMV", "DTRSM", "SGEMM", "S3L_fft", "PSGESV"] {
        sys.insert_data(k).unwrap();
    }
    for _ in 0..4 {
        for k in ["DGEMM", "S3L_fft", "MISSING", "PSGESV"] {
            sys.lookup(&Key::from(k));
        }
        sys.request(QueryKind::Complete(Key::from("D"))).unwrap();
    }
    let events = sys.take_trace();
    let chrome = write_trace_files(path, &events).expect("write figA trace");
    println!(
        "  trace: {} events -> {} (+ {})",
        events.len(),
        path.display(),
        chrome.display()
    );
}

fn main() {
    let scale = scale_from_args();
    let trace_path = trace_path_from_args();
    let health_path = health_path_from_args();
    let mut health = String::new();
    let mut last_snapshot = None;
    let variants = figa_variants();
    // satisfaction[v][l], hops[v][l], survival[v][l], faults[v][l]
    let mut satisfaction = vec![Vec::new(); variants.len()];
    let mut hops = vec![Vec::new(); variants.len()];
    let mut survival = vec![Vec::new(); variants.len()];
    let mut faults: Vec<Vec<FaultCols>> = vec![Vec::new(); variants.len()];
    let mut lost = 0.0f64;
    let mut retries = 0.0f64;
    let mut failed = 0.0f64;
    let mut work = 0.0f64;
    for &rate in FIGA_LOSS_RATES.iter() {
        for (vi, v) in variants.iter().enumerate() {
            let mut cfg = figa_config(rate, *v);
            if scale > 1 {
                cfg = cfg.scaled_down(scale);
                // Keep the 50-unit horizon: the partition window
                // (units 25–34) and the healed tail it is judged by
                // are positions on that timeline.
                cfg.time_units = 50;
                cfg.growth_units = 10;
            }
            cfg.health_snapshots = health_path.is_some();
            eprintln!(
                "[figA] running {} ({} runs x {} units, {} peers)…",
                cfg.name, cfg.runs, cfg.time_units, cfg.peers
            );
            let results = run_all(&cfg);
            if health_path.is_some() {
                health.push_str(&health_jsonl(&results));
                last_snapshot = results.last().and_then(|r| r.last_snapshot.clone());
            }
            let series = average(&cfg, &results);
            satisfaction[vi].push(series.steady_satisfaction());
            hops[vi].push(series.steady_mean_hops());
            survival[vi].push(series.final_survival());
            faults[vi].push(FaultCols {
                lost: series.steady_frames_lost,
                duplicated: series.steady_frames_duplicated,
                dedup: series.steady_dedup_suppressed,
                retries: series.steady_retries,
                failed: series.steady_requests_failed,
            });
            lost += series.steady_frames_lost;
            retries += series.steady_retries;
            failed += series.steady_requests_failed;
            work += series.steady_work;
        }
    }

    let path = results_dir().join("figA.csv");
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create figA.csv"));
    write!(f, "loss_rate").expect("write");
    for v in &variants {
        write!(f, ",sat_{}", v.label).expect("write");
    }
    for v in &variants {
        write!(f, ",hops_{}", v.label).expect("write");
    }
    for v in &variants {
        write!(f, ",surv_{}", v.label).expect("write");
    }
    for col in ["lost", "dup", "dedup", "retries", "failed"] {
        for v in &variants {
            write!(f, ",{col}_{}", v.label).expect("write");
        }
    }
    writeln!(f).expect("write");
    for (li, rate) in FIGA_LOSS_RATES.iter().enumerate() {
        write!(f, "{rate}").expect("write");
        for curve in &satisfaction {
            write!(f, ",{:.4}", curve[li]).expect("write");
        }
        for curve in &hops {
            write!(f, ",{:.4}", curve[li]).expect("write");
        }
        for curve in &survival {
            write!(f, ",{:.4}", curve[li]).expect("write");
        }
        for pick in [
            (|c: &FaultCols| c.lost) as fn(&FaultCols) -> f64,
            |c| c.duplicated,
            |c| c.dedup,
            |c| c.retries,
            |c| c.failed,
        ] {
            for curve in &faults {
                write!(f, ",{:.1}", pick(&curve[li])).expect("write");
            }
        }
        writeln!(f).expect("write");
    }
    f.flush().expect("flush figA.csv");

    let sat_cols: Vec<(&str, &[f64])> = variants
        .iter()
        .zip(&satisfaction)
        .map(|(v, s)| (v.label, s.as_slice()))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "Figure A: % satisfied requests vs. message-loss rate (x = sweep point)",
            &sat_cols,
            Some(100.0),
            14,
            48,
        )
    );
    let surv_cols: Vec<(&str, &[f64])> = variants
        .iter()
        .zip(&survival)
        .map(|(v, s)| (v.label, s.as_slice()))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "Figure A: % registered keys surviving the lossy horizon",
            &surv_cols,
            Some(100.0),
            14,
            48,
        )
    );
    for (vi, v) in variants.iter().enumerate() {
        println!(
            "  {:>3}: survival {:>5.1}%..{:>5.1}%  satisfaction {:>5.1}%..{:>5.1}%  hops {:>4.1}..{:>4.1} (low..high loss)",
            v.label,
            survival[vi].first().unwrap_or(&100.0),
            survival[vi].last().unwrap_or(&100.0),
            satisfaction[vi].first().unwrap_or(&0.0),
            satisfaction[vi].last().unwrap_or(&0.0),
            hops[vi].first().unwrap_or(&0.0),
            hops[vi].last().unwrap_or(&0.0),
        );
    }
    println!(
        "  fault totals (steady state, averaged per run, summed over sweep): \
         {lost:.0} frames lost, {retries:.0} retries, {failed:.0} requests failed"
    );
    println!(
        "  message cost (total_work: delivered + drops + requeues + undeliverable, \
         summed over sweep): {work:.0}"
    );
    println!("  loss rates: {FIGA_LOSS_RATES:?}");
    println!("  CSV: {}", path.display());
    if let Some(hp) = &health_path {
        let prom =
            write_health_files(hp, &health, last_snapshot.as_ref()).expect("write figA health");
        println!(
            "  health: {} snapshots -> {} (+ {})",
            health.lines().count(),
            hp.display(),
            prom.display()
        );
    }
    if let Some(tp) = trace_path {
        traced_sample(&tp);
    }
}

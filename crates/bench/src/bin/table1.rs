//! Table 1 — "Summary of gains of KC and MLT heuristics": percentage
//! improvement in steady-state satisfied requests over the no-LB
//! baseline, for loads of 5/10/16/24/40/80% of the aggregated
//! capacity, on the stable and the dynamic network.
//!
//! Full scale (≈36 experiments of 30 runs each — minutes):
//! `cargo run --release --bin table1`
//! Quick pass: `cargo run --release --bin table1 -- --scale 8`

use dlpt_bench::scale_from_args;
use dlpt_sim::experiments::{table1_row, TABLE1_LOADS};
use dlpt_sim::report::{ascii_table, results_dir};
use std::io::Write;

fn main() {
    let scale = scale_from_args();
    let mut rows = Vec::new();
    let mut csv = String::from("load,stable_mlt,stable_kc,dynamic_mlt,dynamic_kc\n");
    for load in TABLE1_LOADS {
        eprintln!("[table1] load {:.0}%…", load * 100.0);
        let r = table1_row(load, scale);
        csv.push_str(&format!(
            "{:.2},{:.2},{:.2},{:.2},{:.2}\n",
            r.load, r.stable_mlt, r.stable_kc, r.dynamic_mlt, r.dynamic_kc
        ));
        rows.push(vec![
            format!("{:.0}%", r.load * 100.0),
            format!("{:+.2}%", r.stable_mlt),
            format!("{:+.2}%", r.stable_kc),
            format!("{:+.2}%", r.dynamic_mlt),
            format!("{:+.2}%", r.dynamic_kc),
        ]);
    }
    println!("Table 1: gains of MLT and KC over no load balancing");
    println!(
        "{}",
        ascii_table(
            &[
                "Load",
                "Stable MLT",
                "Stable KC",
                "Dynamic MLT",
                "Dynamic KC"
            ],
            &rows
        )
    );
    let path = results_dir().join("table1.csv");
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(csv.as_bytes()))
        .expect("write results CSV");
    println!("  CSV: {}", path.display());
}

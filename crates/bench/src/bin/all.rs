//! Regenerates every figure and table of the paper in one go.
//!
//! `cargo run --release --bin all [-- --scale N]`
//!
//! At paper scale this takes minutes; `--scale 4` finishes in tens of
//! seconds with the same qualitative shapes.

use dlpt_bench::{apply_scale, run_satisfaction_figure, scale_from_args};
use dlpt_sim::experiments as exp;
use dlpt_sim::report::{ascii_chart, ascii_table, results_dir, write_csv};
use dlpt_sim::runner::run_experiment;

fn main() {
    let scale = scale_from_args();
    println!("== DLPT reproduction: all figures and tables (scale {scale}) ==\n");

    for (name, configs, title) in [
        (
            "fig4",
            exp::fig4_configs(),
            "Figure 4: stable network, low load",
        ),
        (
            "fig5",
            exp::fig5_configs(),
            "Figure 5: stable network, high load",
        ),
        (
            "fig6",
            exp::fig6_configs(),
            "Figure 6: dynamic network, low load",
        ),
        (
            "fig7",
            exp::fig7_configs(),
            "Figure 7: dynamic network, high load",
        ),
    ] {
        run_satisfaction_figure(name, apply_scale(configs, scale), title);
        println!();
    }

    // Figure 8 keeps its 160-unit hot-spot timeline at any scale.
    let fig8 = apply_scale(exp::fig8_configs(), scale)
        .into_iter()
        .map(|mut c| {
            c.time_units = 160;
            c
        })
        .collect();
    run_satisfaction_figure(
        "fig8",
        fig8,
        "Figure 8: dynamic network with hot spots (S3L @40, P @80, uniform @120)",
    );
    println!();

    // Figure 9.
    let mut cfg9 = exp::fig9_config();
    if scale > 1 {
        cfg9 = cfg9.scaled_down(scale);
        cfg9.time_units = 160;
        cfg9.track_mapping_hops = true;
    }
    eprintln!("[fig9] running ({} runs)…", cfg9.runs);
    let s9 = run_experiment(&cfg9);
    let cols: Vec<(&str, &[f64])> = vec![
        ("logical", s9.logical_hops.as_slice()),
        ("physical_random", s9.physical_random.as_slice()),
        ("physical_lexico_mlt", s9.physical_lexico.as_slice()),
    ];
    write_csv(&results_dir().join("fig9.csv"), &s9.time, &cols).expect("csv");
    println!(
        "{}",
        ascii_chart("Figure 9: hops per request", &cols, None, 18, 80)
    );

    // Table 1.
    println!("Table 1: gains over no load balancing");
    let mut rows = Vec::new();
    for load in exp::TABLE1_LOADS {
        eprintln!("[table1] load {:.0}%…", load * 100.0);
        let r = exp::table1_row(load, scale);
        rows.push(vec![
            format!("{:.0}%", r.load * 100.0),
            format!("{:+.1}%", r.stable_mlt),
            format!("{:+.1}%", r.stable_kc),
            format!("{:+.1}%", r.dynamic_mlt),
            format!("{:+.1}%", r.dynamic_kc),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &[
                "Load",
                "Stable MLT",
                "Stable KC",
                "Dynamic MLT",
                "Dynamic KC"
            ],
            &rows
        )
    );

    // Table 2.
    let (peers, keys, lookups) = if scale > 1 {
        (100 / scale.min(4), 1000 / scale, 2000 / scale)
    } else {
        (100, 1000, 2000)
    };
    let t2 = exp::table2_measure(peers, keys, lookups, 0xD1B2);
    let rows: Vec<Vec<String>> = t2
        .iter()
        .map(|r| {
            vec![
                r.system.to_string(),
                format!("{:.2}", r.routing_hops),
                format!("{:.2}", r.local_state),
                r.theory_routing.to_string(),
            ]
        })
        .collect();
    println!("\nTable 2: measured trie-overlay complexities");
    println!(
        "{}",
        ascii_table(&["System", "Routing hops", "State/peer", "Theory"], &rows)
    );
    println!("\nAll CSVs in {}", results_dir().display());
}

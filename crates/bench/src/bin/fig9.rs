//! Figure 9 — "Reduction of the communication by the lexicographic
//! mapping": average hops per satisfied request over the Figure 8
//! timeline, 100 runs. Three curves: logical hops in the tree,
//! physical hops under the original random (DHT/hash) mapping, and
//! physical hops under the paper's lexicographic mapping with MLT.
//!
//! `cargo run --release --bin fig9 [-- --scale N]`

use dlpt_bench::scale_from_args;
use dlpt_sim::experiments::fig9_config;
use dlpt_sim::report::{ascii_chart, results_dir, write_csv};
use dlpt_sim::runner::run_experiment;

fn main() {
    let scale = scale_from_args();
    let mut cfg = fig9_config();
    if scale > 1 {
        cfg = cfg.scaled_down(scale);
        cfg.time_units = 160;
        cfg.track_mapping_hops = true;
    }
    eprintln!(
        "[fig9] running {} ({} runs x {} units, {} peers)…",
        cfg.name, cfg.runs, cfg.time_units, cfg.peers
    );
    let s = run_experiment(&cfg);
    let cols: Vec<(&str, &[f64])> = vec![
        ("logical", s.logical_hops.as_slice()),
        ("physical_random", s.physical_random.as_slice()),
        ("physical_lexico_mlt", s.physical_lexico.as_slice()),
    ];
    let path = results_dir().join("fig9.csv");
    write_csv(&path, &s.time, &cols).expect("write results CSV");
    println!(
        "{}",
        ascii_chart(
            "Figure 9: communication gain of the lexicographic mapping (hops/request)",
            &cols,
            None,
            18,
            80
        )
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "  mean logical hops:            {:.2}",
        mean(&s.logical_hops)
    );
    println!(
        "  mean physical (random map):   {:.2}",
        mean(&s.physical_random)
    );
    println!(
        "  mean physical (lexico + MLT): {:.2}",
        mean(&s.physical_lexico)
    );
    println!("  CSV: {}", path.display());
}

//! Figure 4 — "Load balancing, stable network, no overload":
//! percentage of satisfied requests over 50 time units, MLT vs KC vs
//! no load balancing, 30 runs.
//!
//! Run at paper scale: `cargo run --release --bin fig4`
//! Scaled down:       `cargo run --release --bin fig4 -- --scale 4`

use dlpt_bench::{apply_scale, run_satisfaction_figure, scale_from_args};
use dlpt_sim::experiments::fig4_configs;

fn main() {
    let scale = scale_from_args();
    let configs = apply_scale(fig4_configs(), scale);
    run_satisfaction_figure(
        "fig4",
        configs,
        "Figure 4: stable network, low load — % satisfied requests",
    );
}

//! `pump_fingerprint` — the parallel-pump determinism probe.
//!
//! Builds a seeded overlay, pushes a seeded mixed discovery workload
//! through the shared-nothing slice pump
//! (`dlpt_core::engine::parallel`) and prints a canonical fingerprint
//! of everything observable: placements, per-request outcomes and the
//! engine counters. Two invocations with the same `--seed` and
//! `--workers` must print byte-identical output — CI runs it twice and
//! diffs. It also cross-checks the batch against the sequential pump
//! on an identically seeded twin system (satisfied/results must agree
//! under unbounded capacity) and exits non-zero on any mismatch, so
//! the probe is self-verifying even in one invocation.
//!
//! Usage: `pump_fingerprint [--seed N] [--workers N] [--requests N]`

use dlpt_core::key::Key;
use dlpt_core::messages::QueryKind;
use dlpt_core::system::DlptSystem;
use dlpt_workloads::corpus::Corpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(seed: u64, keys: &[Key]) -> DlptSystem {
    let mut sys = DlptSystem::builder()
        .seed(seed)
        .peer_id_len(12)
        .bootstrap_peers(24)
        .build();
    for k in keys {
        sys.insert_data(k.clone()).expect("registration");
    }
    sys
}

fn queries(seed: u64, keys: &[Key], n: usize) -> Vec<QueryKind> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1F0);
    (0..n)
        .map(|i| match i % 16 {
            14 => {
                let k = &keys[rng.gen_range(0..keys.len())];
                QueryKind::Complete(k.truncated(3))
            }
            15 => {
                let a = rng.gen_range(0..keys.len());
                let b = rng.gen_range(0..keys.len());
                QueryKind::Range(keys[a.min(b)].clone(), keys[a.max(b)].clone())
            }
            _ => QueryKind::Exact(keys[rng.gen_range(0..keys.len())].clone()),
        })
        .collect()
}

fn main() {
    let mut seed = 42u64;
    let mut workers = 4usize;
    let mut requests = 2_000usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => seed = args.next().expect("--seed N").parse().expect("u64"),
            "--workers" => workers = args.next().expect("--workers N").parse().expect("usize"),
            "--requests" => requests = args.next().expect("--requests N").parse().expect("usize"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: pump_fingerprint [--seed N] [--workers N] [--requests N]");
                std::process::exit(2);
            }
        }
    }

    let corpus = Corpus::grid();
    let keys: Vec<Key> = corpus.keys.iter().take(200).cloned().collect();

    // Parallel run.
    let mut par = build(seed, &keys);
    let par_out = par
        .discover_batch(queries(seed, &keys, requests), workers)
        .expect("parallel batch");

    // Sequential twin: same seed, same construction, same query
    // stream, one request at a time through the FIFO pump.
    let mut seq = build(seed, &keys);
    let seq_out: Vec<_> = queries(seed, &keys, requests)
        .into_iter()
        .map(|q| seq.request(q).expect("sequential request"))
        .collect();

    let mut mismatches = 0usize;
    for (i, (a, b)) in seq_out.iter().zip(&par_out).enumerate() {
        if a.satisfied != b.satisfied || a.results != b.results {
            eprintln!("request {i}: sequential {a:?} != parallel {b:?}");
            mismatches += 1;
        }
    }

    // The canonical fingerprint: stats, placements, outcome digests.
    println!("seed: {seed} workers: {workers} requests: {requests}");
    println!("stats: {:?}", par.stats);
    println!("peers: {:?}", par.peer_ids());
    for label in par.node_labels() {
        println!("node {:?} on {:?}", label, par.host_of(&label));
    }
    for (i, o) in par_out.iter().enumerate() {
        println!(
            "outcome {i}: satisfied={} dropped={} results={:?} hops={}",
            o.satisfied,
            o.dropped,
            o.results,
            o.logical_hops()
        );
    }

    if mismatches > 0 {
        eprintln!("{mismatches} mismatches between sequential and parallel outcomes");
        std::process::exit(1);
    }
}

//! Ablations of the design choices DESIGN.md calls out — knobs the
//! paper fixes without studying:
//!
//! * the MLT trigger fraction (paper: "a fixed fraction of the peers");
//! * KC's candidate count k (paper: k = 4);
//! * the platform's capacity heterogeneity ratio (paper: 4);
//! * request-popularity skew (paper: uniform outside the hot spots).
//!
//! `cargo run --release -p dlpt-bench --bin ablation [-- --scale N]`

use dlpt_bench::scale_from_args;
use dlpt_sim::config::{ExperimentConfig, LbKind, PopKind};
use dlpt_sim::report::{ascii_table, results_dir};
use dlpt_sim::runner::run_experiment;
use dlpt_workloads::churn::ChurnModel;
use std::io::Write;

fn base(scale: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig {
        name: "ablation".into(),
        load: 0.16,
        churn: ChurnModel::stable(),
        runs: 12,
        ..ExperimentConfig::default()
    };
    if scale > 1 {
        cfg = cfg.scaled_down(scale);
        cfg.time_units = 30;
    }
    cfg
}

fn main() {
    let scale = scale_from_args();
    let mut csv = String::from("ablation,setting,steady_satisfaction_pct\n");
    let mut rows = Vec::new();

    // --- MLT trigger fraction ------------------------------------------
    for fraction in [0.1, 0.25, 0.5, 1.0] {
        let mut cfg = base(scale);
        cfg.name = format!("mlt-fraction-{fraction}");
        cfg.lb = LbKind::Mlt { fraction };
        let s = run_experiment(&cfg);
        eprintln!(
            "[ablation] MLT fraction {fraction}: {:.1}%",
            s.steady_satisfaction()
        );
        csv.push_str(&format!(
            "mlt_fraction,{fraction},{:.2}\n",
            s.steady_satisfaction()
        ));
        rows.push(vec![
            "MLT fraction".into(),
            format!("{fraction}"),
            format!("{:.1}%", s.steady_satisfaction()),
        ]);
    }

    // --- KC candidate count (under churn, where KC acts) ----------------
    for k in [1usize, 2, 4, 8, 16] {
        let mut cfg = base(scale);
        cfg.name = format!("kc-k-{k}");
        cfg.churn = ChurnModel::dynamic();
        cfg.lb = LbKind::Kc { k };
        let s = run_experiment(&cfg);
        eprintln!("[ablation] KC k={k}: {:.1}%", s.steady_satisfaction());
        csv.push_str(&format!("kc_k,{k},{:.2}\n", s.steady_satisfaction()));
        rows.push(vec![
            "KC candidates k".into(),
            format!("{k}"),
            format!("{:.1}%", s.steady_satisfaction()),
        ]);
    }

    // --- Capacity heterogeneity ratio (MLT's raison d'être) -------------
    for ratio in [1u32, 2, 4, 8] {
        for (label, lb) in [
            ("MLT", LbKind::Mlt { fraction: 1.0 }),
            ("NoLB", LbKind::None),
        ] {
            let mut cfg = base(scale);
            cfg.name = format!("ratio-{ratio}-{label}");
            cfg.capacity_ratio = ratio;
            // Keep aggregate capacity roughly constant across ratios.
            cfg.base_capacity = (50 / (1 + ratio)).max(2);
            cfg.lb = lb;
            let s = run_experiment(&cfg);
            eprintln!(
                "[ablation] ratio {ratio} {label}: {:.1}%",
                s.steady_satisfaction()
            );
            csv.push_str(&format!(
                "capacity_ratio_{label},{ratio},{:.2}\n",
                s.steady_satisfaction()
            ));
            rows.push(vec![
                format!("capacity ratio ({label})"),
                format!("{ratio}"),
                format!("{:.1}%", s.steady_satisfaction()),
            ]);
        }
    }

    // --- Popularity skew -------------------------------------------------
    for (label, pop) in [
        ("uniform", PopKind::Uniform),
        ("zipf-0.8", PopKind::Zipf(0.8)),
        ("zipf-1.2", PopKind::Zipf(1.2)),
    ] {
        let mut cfg = base(scale);
        cfg.name = format!("pop-{label}");
        cfg.lb = LbKind::Mlt { fraction: 1.0 };
        cfg.popularity = pop;
        let s = run_experiment(&cfg);
        eprintln!(
            "[ablation] popularity {label}: {:.1}%",
            s.steady_satisfaction()
        );
        csv.push_str(&format!(
            "popularity,{label},{:.2}\n",
            s.steady_satisfaction()
        ));
        rows.push(vec![
            "popularity (MLT)".into(),
            label.into(),
            format!("{:.1}%", s.steady_satisfaction()),
        ]);
    }

    println!("Ablations: steady-state satisfaction");
    println!(
        "{}",
        ascii_table(&["Ablation", "Setting", "Satisfaction"], &rows)
    );
    let path = results_dir().join("ablation.csv");
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(csv.as_bytes()))
        .expect("write results CSV");
    println!("  CSV: {}", path.display());
}

//! Figure 7 — "Comparing LB algorithms, dynamic network, overload".
//!
//! `cargo run --release --bin fig7 [-- --scale N]`

use dlpt_bench::{apply_scale, run_satisfaction_figure, scale_from_args};
use dlpt_sim::experiments::fig7_configs;

fn main() {
    let scale = scale_from_args();
    let configs = apply_scale(fig7_configs(), scale);
    run_satisfaction_figure(
        "fig7",
        configs,
        "Figure 7: dynamic network, high load — % satisfied requests",
    );
}

//! Figure 5 — "Load balancing, stable network, overload": the Figure 4
//! experiment under a very high request rate.
//!
//! `cargo run --release --bin fig5 [-- --scale N]`

use dlpt_bench::{apply_scale, run_satisfaction_figure, scale_from_args};
use dlpt_sim::experiments::fig5_configs;

fn main() {
    let scale = scale_from_args();
    let configs = apply_scale(fig5_configs(), scale);
    run_satisfaction_figure(
        "fig5",
        configs,
        "Figure 5: stable network, high load — % satisfied requests",
    );
}

//! Figure 5 — "Load balancing, stable network, overload": the Figure 4
//! experiment under a very high request rate.
//!
//! `cargo run --release --bin fig5 [-- --scale N] [--crash-rate X]`
//!
//! `--crash-rate X` adds non-graceful departures (X of the population
//! per unit) on top of the stable churn — the satisfaction curves then
//! also price in data destroyed by crashes. Without the flag the
//! paper's crash-free curves are reproduced unchanged.

use dlpt_bench::{
    apply_crash_rate, apply_scale, crash_rate_from_args, run_satisfaction_figure, scale_from_args,
};
use dlpt_sim::experiments::fig5_configs;

fn main() {
    let scale = scale_from_args();
    let crash_rate = crash_rate_from_args();
    let configs = apply_crash_rate(apply_scale(fig5_configs(), scale), crash_rate);
    let title = match crash_rate {
        Some(r) => {
            format!("Figure 5: stable network, high load, crash rate {r} — % satisfied requests")
        }
        None => "Figure 5: stable network, high load — % satisfied requests".to_string(),
    };
    run_satisfaction_figure("fig5", configs, &title);
}

//! Figure 6 — "Comparing LB algorithms, dynamic network, no overload":
//! 10% of the peers replaced every unit.
//!
//! `cargo run --release --bin fig6 [-- --scale N]`

use dlpt_bench::{apply_scale, run_satisfaction_figure, scale_from_args};
use dlpt_sim::experiments::fig6_configs;

fn main() {
    let scale = scale_from_args();
    let configs = apply_scale(fig6_configs(), scale);
    run_satisfaction_figure(
        "fig6",
        configs,
        "Figure 6: dynamic network, low load — % satisfied requests",
    );
}

//! Fuzz-style robustness of the wire codec: arbitrary byte soup must
//! decode to an error, never panic, and valid frames must survive any
//! reframing.

use dlpt_core::key::Key;
use dlpt_core::messages::{Envelope, NodeMsg, PeerMsg};
use dlpt_net::codec::{decode, encode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn arbitrary_bytes_do_not_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
    }

    /// Corrupting any single byte of a valid frame yields either an
    /// error or a (different or equal) well-formed envelope — never a
    /// panic.
    #[test]
    fn single_byte_corruption_is_safe(pos_seed in any::<usize>(), val in any::<u8>(), key in "[01]{1,12}") {
        let env = Envelope::to_node(
            Key::from(key.as_str()),
            NodeMsg::DataInsertion { key: Key::from(key.as_str()) },
        );
        let mut frame = encode(&env).to_vec();
        let pos = pos_seed % frame.len();
        frame[pos] = val;
        let _ = decode(&frame);
    }

    /// Concatenated frames decode individually after splitting on the
    /// length prefix (stream framing works).
    #[test]
    fn stream_framing(keys in proptest::collection::vec("[01]{1,10}", 1..6)) {
        let envs: Vec<Envelope> = keys
            .iter()
            .map(|k| Envelope::to_peer(
                Key::from(k.as_str()),
                PeerMsg::UpdateSuccessor { succ: Key::from(k.as_str()) },
            ))
            .collect();
        let mut stream = Vec::new();
        for e in &envs {
            stream.extend_from_slice(&encode(e));
        }
        // Re-split using the length prefixes.
        let mut at = 0usize;
        let mut decoded = Vec::new();
        while at < stream.len() {
            let len = u32::from_le_bytes(stream[at..at + 4].try_into().unwrap()) as usize;
            let frame = &stream[at..at + 4 + len];
            decoded.push(decode(frame).unwrap());
            at += 4 + len;
        }
        prop_assert_eq!(decoded, envs);
    }
}

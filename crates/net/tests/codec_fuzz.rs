//! Fuzz-style robustness of the wire codec: arbitrary byte soup must
//! decode to an error, never panic, and valid frames must survive any
//! reframing.

use dlpt_core::key::Key;
use dlpt_core::messages::{Envelope, NodeMsg, NodeSeed, PeerMsg};
use dlpt_net::codec::{decode, encode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn arbitrary_bytes_do_not_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
    }

    /// Corrupting any single byte of a valid frame yields either an
    /// error or a (different or equal) well-formed envelope — never a
    /// panic.
    #[test]
    fn single_byte_corruption_is_safe(pos_seed in any::<usize>(), val in any::<u8>(), key in "[01]{1,12}") {
        let env = Envelope::to_node(
            Key::from(key.as_str()),
            NodeMsg::DataInsertion { key: Key::from(key.as_str()) },
        );
        let mut frame = encode(&env).to_vec();
        let pos = pos_seed % frame.len();
        frame[pos] = val;
        let _ = decode(&frame);
    }

    /// Replica-aware envelopes (`protocol::repair`) round-trip for
    /// arbitrary keys/ttls and survive single-byte corruption without
    /// panicking.
    #[test]
    fn replication_envelopes_roundtrip_and_corrupt_safely(
        primary in "[01]{1,12}",
        label in "[01]{1,12}",
        ttl in 0u32..16,
        pos_seed in any::<usize>(),
        val in any::<u8>(),
    ) {
        let envs = vec![
            Envelope::to_peer(Key::from(primary.as_str()), PeerMsg::SyncReplicas { k: ttl + 1 }),
            Envelope::to_peer(
                Key::from(primary.as_str()),
                PeerMsg::Replicate {
                    primary: Key::from(primary.as_str()),
                    ttl,
                    seed: NodeSeed {
                        label: Key::from(label.as_str()),
                        father: Some(Key::from(primary.as_str())),
                        children: vec![Key::from(label.as_str())],
                        data: vec![Key::from(label.as_str())],
                    },
                },
            ),
            Envelope::to_peer(Key::from(primary.as_str()), PeerMsg::DropReplica { label: Key::from(label.as_str()) }),
            Envelope::to_peer(Key::from(primary.as_str()), PeerMsg::PromoteReplica { label: Key::from(label.as_str()) }),
        ];
        for env in envs {
            let frame = encode(&env);
            prop_assert_eq!(&decode(&frame).unwrap(), &env);
            let mut corrupted = frame.to_vec();
            let pos = pos_seed % corrupted.len();
            corrupted[pos] = val;
            let _ = decode(&corrupted); // error or envelope, never panic
        }
    }

    /// Cache-invalidation envelopes (`dlpt_core::cache`) round-trip for
    /// arbitrary labels/epochs and survive single-byte corruption
    /// without panicking.
    #[test]
    fn cache_invalidation_envelopes_roundtrip_and_corrupt_safely(
        peer in "[01]{1,12}",
        label in "[01]{1,12}",
        epoch in any::<u64>(),
        pos_seed in any::<usize>(),
        val in any::<u8>(),
    ) {
        let envs = vec![
            Envelope::to_peer(
                Key::from(peer.as_str()),
                PeerMsg::InvalidateCached { label: Key::from(label.as_str()), epoch },
            ),
            Envelope::to_peer(
                Key::from(peer.as_str()),
                PeerMsg::InvalidateCached { label: Key::epsilon(), epoch },
            ),
        ];
        for env in envs {
            let frame = encode(&env);
            prop_assert_eq!(&decode(&frame).unwrap(), &env);
            let mut corrupted = frame.to_vec();
            let pos = pos_seed % corrupted.len();
            corrupted[pos] = val;
            let _ = decode(&corrupted); // error or envelope, never panic
        }
    }

    /// Concatenated frames decode individually after splitting on the
    /// length prefix (stream framing works).
    #[test]
    fn stream_framing(keys in proptest::collection::vec("[01]{1,10}", 1..6)) {
        let envs: Vec<Envelope> = keys
            .iter()
            .map(|k| Envelope::to_peer(
                Key::from(k.as_str()),
                PeerMsg::UpdateSuccessor { succ: Key::from(k.as_str()) },
            ))
            .collect();
        let mut stream = Vec::new();
        for e in &envs {
            stream.extend_from_slice(&encode(e));
        }
        // Re-split using the length prefixes.
        let mut at = 0usize;
        let mut decoded = Vec::new();
        while at < stream.len() {
            let len = u32::from_le_bytes(stream[at..at + 4].try_into().unwrap()) as usize;
            let frame = &stream[at..at + 4 + len];
            decoded.push(decode(frame).unwrap());
            at += 4 + len;
        }
        prop_assert_eq!(decoded, envs);
    }
}

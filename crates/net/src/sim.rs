//! Message-level simulation with randomized latencies.
//!
//! [`LatencyNet`] is a thin adapter over the unified protocol engine
//! (`dlpt_core::engine`): it owns an [`Engine`] plus a deterministic
//! discrete-event queue, and implements the engine's `Transport` by
//! sampling a delivery delay for every envelope — so messages from one
//! operation interleave in arbitrary order while dispatch, effects,
//! replication and cache invalidation run through exactly the same
//! state machine as the synchronous pump. The protocol is supposed to
//! converge to the same tree regardless of delivery order — the tests
//! here check exactly that, against the sequential oracle.
//!
//! Peer capacity is not modelled (the engine's `charge_capacity` flag
//! stays off; the experiment harness owns that concern): this runtime
//! answers the orthogonal question "is the protocol correct under
//! asynchrony?". Request completion is judged only at quiescence
//! (`judge_at_quiescence`), because out-of-order responses can
//! transiently zero the outstanding-branch counter.

use crate::event::EventQueue;
use dlpt_core::engine::{Engine, EngineConfig, Step, Transport};
use dlpt_core::key::Key;
use dlpt_core::messages::{Envelope, QueryKind};
use dlpt_core::transport::{FaultPlan, FaultStats, Faults, FaultyTransport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How long a message takes from send to delivery.
#[derive(Debug, Clone, Copy)]
pub enum LatencyModel {
    /// Every message takes exactly this many ticks.
    Constant(u64),
    /// Uniformly sampled delay (inclusive bounds).
    Uniform(u64, u64),
}

impl LatencyModel {
    fn sample(&self, rng: &mut StdRng) -> u64 {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform(lo, hi) => rng.gen_range(*lo..=*hi.max(lo)),
        }
    }
}

/// The latency-queue transport: every delivered envelope is scheduled
/// after a sampled delay, entering the same seeded event queue as
/// everything else in flight.
struct LatencyTransport<'a> {
    queue: &'a mut EventQueue<(u32, Envelope)>,
    latency: LatencyModel,
    rng: &'a mut StdRng,
}

impl Transport for LatencyTransport<'_> {
    fn deliver(&mut self, env: Envelope) {
        let delay = self.latency.sample(self.rng);
        self.queue.push_after(delay, (0, env));
    }

    fn now(&self) -> u64 {
        self.queue.now()
    }
}

/// The asynchronous runtime. Dereferences to the underlying
/// [`Engine`] for introspection, invariant checks and the
/// `cache_stats` / `repl_stats` counters.
#[derive(Debug)]
pub struct LatencyNet {
    engine: Engine,
    queue: EventQueue<(u32, Envelope)>,
    latency: LatencyModel,
    rng: StdRng,
    requeue_budget: u32,
    /// Fault-injection state (`dlpt_core::transport`); inert by
    /// default.
    faults: Faults,
    /// Bounded per-request retries when faults are active; exhaustion
    /// fails the request explicitly.
    request_retry_budget: u32,
    /// Base delay of the exponential retry backoff (ticks); attempt
    /// `a` re-enters the event queue after `base << a`.
    backoff_base: u64,
    /// Messages delivered so far.
    pub deliveries: u64,
}

impl std::ops::Deref for LatencyNet {
    type Target = Engine;
    fn deref(&self) -> &Engine {
        &self.engine
    }
}

impl std::ops::DerefMut for LatencyNet {
    fn deref_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }
}

impl LatencyNet {
    /// An empty network.
    pub fn new(latency: LatencyModel, seed: u64) -> Self {
        LatencyNet {
            engine: Engine::new(EngineConfig {
                judge_at_quiescence: true,
                ..EngineConfig::default()
            }),
            queue: EventQueue::new(),
            latency,
            rng: StdRng::seed_from_u64(seed),
            requeue_budget: 4096,
            faults: Faults::new(FaultPlan::default()),
            request_retry_budget: 4,
            backoff_base: 8,
            deliveries: 0,
        }
    }

    /// Installs a fault plan, resetting the fault RNG, counters and
    /// partition. The default plan is fully inert.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Faults::new(plan);
        self.engine.set_fault_recovery(self.faults.is_active());
    }

    /// Severs the lexicographic key range `[lo, hi)` for faultable
    /// traffic until [`LatencyNet::heal_partition`].
    pub fn partition(&mut self, lo: Key, hi: Key) {
        self.faults.partition(lo, hi);
        self.engine.set_fault_recovery(true);
    }

    /// Heals a partition installed by [`LatencyNet::partition`].
    pub fn heal_partition(&mut self) {
        self.faults.heal();
        self.engine.set_fault_recovery(self.faults.is_active());
    }

    /// Combined fault counters: transport-level draws plus the
    /// engine's suppressed duplicates.
    pub fn fault_stats(&self) -> FaultStats {
        let mut s = self.faults.stats;
        s.duplicates_suppressed += self.engine.duplicates_suppressed;
        s
    }

    /// Schedules one externally injected envelope through the same
    /// transport the engine uses, so injected operations and
    /// engine-emitted traffic can never diverge in delivery policy.
    fn send(&mut self, env: Envelope) {
        let inner = LatencyTransport {
            queue: &mut self.queue,
            latency: self.latency,
            rng: &mut self.rng,
        };
        if self.faults.is_active() {
            FaultyTransport::new(inner, &mut self.faults).deliver(env);
        } else {
            let mut inner = inner;
            inner.deliver(env);
        }
    }

    /// Adds a peer, routing the join through the tree, and runs the
    /// network to quiescence.
    pub fn add_peer(&mut self, id: Key) {
        assert!(!self.engine.contains_peer(&id), "duplicate peer id");
        self.engine.add_local_shard(id.clone(), u32::MAX >> 1);
        if self.engine.peer_count() == 1 {
            return;
        }
        let env = self.engine.join_envelope(&id, &mut self.rng);
        self.send(env);
        self.run_to_quiescence();
    }

    /// Registers a key and runs to quiescence.
    pub fn insert_data(&mut self, key: Key) {
        assert!(self.engine.peer_count() > 0, "need at least one peer");
        let env = self.engine.insert_envelope(key, &mut self.rng);
        self.send(env);
        self.run_to_quiescence();
    }

    /// Deregisters a key and runs to quiescence.
    pub fn remove_data(&mut self, key: &Key) {
        if let Some(entry) = self.engine.random_node(&mut self.rng) {
            self.send(Envelope::to_node(
                entry,
                dlpt_core::messages::NodeMsg::DataRemoval { key: key.clone() },
            ));
            self.run_to_quiescence();
        }
    }

    /// Exact lookup; returns `(found, results)`.
    pub fn lookup(&mut self, key: &Key) -> (bool, Vec<Key>) {
        self.request(QueryKind::Exact(key.clone()))
    }

    /// Range query.
    pub fn range(&mut self, lo: &Key, hi: &Key) -> (bool, Vec<Key>) {
        self.request(QueryKind::Range(lo.clone(), hi.clone()))
    }

    /// Completion query.
    pub fn complete(&mut self, prefix: &Key) -> (bool, Vec<Key>) {
        self.request(QueryKind::Complete(prefix.clone()))
    }

    fn request(&mut self, query: QueryKind) -> (bool, Vec<Key>) {
        let Some(entry) = self.engine.random_node(&mut self.rng) else {
            return (false, Vec::new());
        };
        // Cache consult at the entry peer — the engine's shared flow;
        // the shortcut route (and later the invalidations) travel
        // through the latency-randomized queue like everything else.
        let (id, env) = self
            .engine
            .begin_request(&entry, query)
            .expect("entry is a live node");
        self.send(env);
        self.run_to_quiescence();
        // Only judge completion once the network is drained: responses
        // arrive out of order here, so the outstanding-branch counter
        // can transiently touch zero while a parent's response (which
        // would raise it again via `pending_children`) is still in
        // flight.
        if self.faults.is_active() {
            // Fault-tolerant path: a branch left outstanding at
            // quiescence means loss; re-issue the engine's retry
            // snapshot with exponential backoff (the retry re-enters
            // the event queue `base << attempt` ticks out, past
            // everything the first attempt scheduled), then fail
            // explicitly at budget exhaustion. Fault-off runs never
            // take the snapshot, so they pay no per-request clone.
            let mut attempts = 0u32;
            while self.engine.retry_pending(id) && attempts < self.request_retry_budget {
                self.faults.stats.retries += 1;
                let origin = self
                    .engine
                    .retry_envelope(id)
                    .expect("fault recovery keeps the origin snapshot");
                self.engine.reset_request_for_retry(id);
                let delay = self.backoff_base << attempts.min(16);
                attempts += 1;
                self.queue.push_after(delay, (0, origin));
                self.run_to_quiescence();
            }
            if self.engine.retry_pending(id) {
                self.faults.stats.requests_failed += 1;
            }
        }
        let out = self.engine.finish_request(id);
        (out.satisfied, out.results)
    }

    /// Delivers events until none remain (including envelopes a
    /// reordering fault held back past the queue).
    pub fn run_to_quiescence(&mut self) {
        loop {
            while let Some((_, (requeues, env))) = self.queue.pop() {
                self.deliveries += 1;
                let inner = LatencyTransport {
                    queue: &mut self.queue,
                    latency: self.latency,
                    rng: &mut self.rng,
                };
                let step = if self.faults.is_active() {
                    let mut t = FaultyTransport::new(inner, &mut self.faults);
                    self.engine.deliver(&mut t, env).expect("valid envelope")
                } else {
                    let mut t = inner;
                    self.engine.deliver(&mut t, env).expect("valid envelope")
                };
                match step {
                    Step::Done => {}
                    Step::Requeue(env) => {
                        // Same ring-size floor as the synchronous
                        // pump: a seed walking the ring takes O(ring)
                        // hops to land, and every hop is one more
                        // requeue for the envelopes waiting on it.
                        let floor = (self.engine.peer_count() as u32).saturating_mul(2);
                        if requeues >= self.requeue_budget.max(floor) {
                            // A lost discovery message still resolves
                            // its request (explicit failure); anything
                            // else exhausting the budget is a routing
                            // bug worth aborting on.
                            self.engine
                                .fail_undeliverable(env)
                                .expect("only discovery traffic may exhaust the requeue budget");
                            continue;
                        }
                        // Retry shortly; the message that creates the
                        // destination is already in flight.
                        self.queue.push_after(1, (requeues + 1, env));
                    }
                }
            }
            let mut inner = LatencyTransport {
                queue: &mut self.queue,
                latency: self.latency,
                rng: &mut self.rng,
            };
            if !self.faults.flush_deferred(&mut inner) {
                break;
            }
        }
    }

    /// One anti-entropy pass (`protocol::repair`) under latency: every
    /// peer is kicked with `SyncReplicas` and re-clones its nodes along
    /// the ring; the `Replicate` walks interleave arbitrarily with each
    /// other. Runs to quiescence. No-op at `k = 1`.
    pub fn anti_entropy(&mut self) {
        let mut t = LatencyTransport {
            queue: &mut self.queue,
            latency: self.latency,
            rng: &mut self.rng,
        };
        if self.engine.anti_entropy_kick(&mut t) {
            self.run_to_quiescence();
        }
    }

    /// Non-graceful departure: the peer vanishes with its state; the
    /// ring heals and every node it ran fails over to a surviving
    /// follower copy where one exists. Returns the labels actually
    /// lost. Run [`LatencyNet::anti_entropy`] beforehand (for fresh
    /// copies) and afterwards (to restore `k`).
    pub fn crash_peer(&mut self, id: &Key) -> Vec<Key> {
        self.engine.crash_shard(id).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlpt_core::alphabet::Alphabet;
    use dlpt_core::cache::CacheStats;
    use dlpt_core::trie::PgcpTrie;

    fn build(latency: LatencyModel, seed: u64, peers: usize, keys: &[&str]) -> LatencyNet {
        let mut net = LatencyNet::new(latency, seed);
        let alphabet = Alphabet::grid();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
        for _ in 0..peers {
            loop {
                let id = alphabet.random_id(&mut rng, 10);
                if !net.contains_peer(&id) {
                    net.add_peer(id);
                    break;
                }
            }
        }
        for k in keys {
            net.insert_data(Key::from(*k));
        }
        net
    }

    const KEYS: [&str; 10] = [
        "DGEMM", "DGEMV", "DTRSM", "DTRMM", "SGEMM", "S3L_fft", "S3L_sort", "PSGESV", "PDGEMM",
        "ZTRSM",
    ];

    #[test]
    fn converges_to_oracle_under_uniform_latency() {
        let mut oracle = PgcpTrie::new();
        for k in KEYS {
            oracle.insert(Key::from(k));
        }
        for seed in 0..8 {
            let net = build(LatencyModel::Uniform(1, 50), seed, 8, &KEYS);
            assert_eq!(
                net.node_labels(),
                oracle.labels(),
                "seed {seed}: async construction must match the oracle"
            );
            net.check_tree().unwrap();
            net.check_mapping().unwrap();
        }
    }

    #[test]
    fn constant_latency_matches_uniform_result() {
        let a = build(LatencyModel::Constant(1), 3, 6, &KEYS);
        let b = build(LatencyModel::Uniform(1, 100), 3, 6, &KEYS);
        assert_eq!(a.node_labels(), b.node_labels());
        assert_eq!(a.registered_keys(), b.registered_keys());
    }

    #[test]
    fn lookups_work_after_async_construction() {
        let mut net = build(LatencyModel::Uniform(1, 30), 11, 10, &KEYS);
        for k in KEYS {
            let (found, results) = net.lookup(&Key::from(k));
            assert!(found, "{k}");
            assert_eq!(results, vec![Key::from(k)]);
        }
        let (found, _) = net.lookup(&Key::from("MISSING"));
        assert!(!found);
    }

    #[test]
    fn range_and_completion_under_latency() {
        let mut net = build(LatencyModel::Uniform(1, 30), 13, 6, &KEYS);
        let (ok, results) = net.complete(&Key::from("S3L"));
        assert!(ok);
        assert_eq!(results, vec![Key::from("S3L_fft"), Key::from("S3L_sort")]);
        let (ok, results) = net.range(&Key::from("D"), &Key::from("E"));
        assert!(ok);
        assert_eq!(results.len(), 4, "{results:?}");
    }

    #[test]
    fn peers_joining_after_data_keep_invariants() {
        let mut net = build(LatencyModel::Uniform(1, 40), 17, 4, &KEYS);
        let alphabet = Alphabet::grid();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..6 {
            loop {
                let id = alphabet.random_id(&mut rng, 10);
                if !net.contains_peer(&id) {
                    net.add_peer(id);
                    break;
                }
            }
            net.check_mapping().unwrap();
            net.check_tree().unwrap();
        }
        assert_eq!(net.peer_count(), 10);
    }

    #[test]
    fn deliveries_are_counted() {
        let net = build(LatencyModel::Constant(1), 19, 4, &KEYS[..4]);
        assert!(net.deliveries > 10);
    }

    #[test]
    fn anti_entropy_replicates_under_latency() {
        let mut net = build(LatencyModel::Uniform(1, 40), 23, 6, &KEYS);
        net.set_replication(3);
        net.anti_entropy();
        for label in net.node_labels() {
            let hosts = net.replica_hosts(&label);
            assert_eq!(hosts.len(), 3, "{label}: {hosts:?}");
            let distinct: std::collections::BTreeSet<&Key> = hosts.iter().collect();
            assert_eq!(distinct.len(), 3);
        }
    }

    #[test]
    fn crash_with_replicas_loses_nothing_under_latency() {
        let mut net = build(LatencyModel::Uniform(1, 25), 29, 7, &KEYS);
        net.set_replication(2);
        net.anti_entropy();
        // Crash the most loaded peer.
        let victim = net
            .shards()
            .max_by_key(|(_, s)| s.node_count())
            .map(|(id, _)| id.clone())
            .unwrap();
        let lost = net.crash_peer(&victim);
        assert!(lost.is_empty(), "{lost:?}");
        net.check_tree().unwrap();
        net.check_mapping().unwrap();
        for k in KEYS {
            let (found, _) = net.lookup(&Key::from(k));
            assert!(found, "{k}");
        }
        // A second pass restores full redundancy.
        net.anti_entropy();
        for label in net.node_labels() {
            assert_eq!(net.replica_hosts(&label).len(), 2, "{label}");
        }
    }

    #[test]
    fn cached_lookups_hit_and_stay_correct_under_latency() {
        let mut net = build(LatencyModel::Uniform(1, 40), 37, 8, &KEYS);
        net.set_cache_capacity(32);
        for _ in 0..6 {
            for k in KEYS {
                let (found, results) = net.lookup(&Key::from(k));
                assert!(found, "{k}");
                assert_eq!(results, vec![Key::from(k)]);
            }
        }
        assert!(net.cache_stats.learned > 0);
        assert!(
            net.cache_stats.hits > 0,
            "repeated lookups must hit: {:?}",
            net.cache_stats
        );
        // Misses still resolve correctly.
        let (found, _) = net.lookup(&Key::from("ABSENT"));
        assert!(!found);
    }

    #[test]
    fn removal_invalidates_cached_routes_under_latency() {
        let mut net = build(LatencyModel::Uniform(1, 30), 41, 6, &KEYS);
        net.set_cache_capacity(32);
        let victim = Key::from("DGEMM");
        for _ in 0..8 {
            assert!(net.lookup(&victim).0);
        }
        assert!(net.cache_stats.hits > 0, "cache must be warm");
        net.remove_data(&victim);
        assert!(
            net.cache_stats.invalidations_sent > 0,
            "dissolution must broadcast invalidations"
        );
        assert!(net.cache_stats.invalidations_delivered > 0);
        for _ in 0..8 {
            let (found, results) = net.lookup(&victim);
            assert!(!found, "cache must never resurrect a removed key");
            assert!(results.is_empty());
        }
        // Other keys unaffected.
        assert!(net.lookup(&Key::from("DGEMV")).0);
    }

    #[test]
    fn cache_off_counts_nothing() {
        let mut net = build(LatencyModel::Uniform(1, 30), 43, 5, &KEYS[..4]);
        for _ in 0..4 {
            assert!(net.lookup(&Key::from("DGEMM")).0);
        }
        assert_eq!(net.cache_stats, CacheStats::default());
    }

    #[test]
    fn unreplicated_crash_loses_the_hosted_nodes() {
        let mut net = build(LatencyModel::Constant(1), 31, 6, &KEYS);
        let victim = net
            .shards()
            .max_by_key(|(_, s)| s.node_count())
            .map(|(id, _)| id.clone())
            .unwrap();
        let lost = net.crash_peer(&victim);
        assert!(!lost.is_empty(), "k = 1 must lose the hosted nodes");
    }
}

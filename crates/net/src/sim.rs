//! Message-level simulation with randomized latencies.
//!
//! [`LatencyNet`] drives the same protocol handlers as the synchronous
//! pump, but every envelope is delivered after a sampled delay, so
//! messages from one operation interleave in arbitrary order. The
//! protocol is supposed to converge to the same tree regardless — the
//! tests here check exactly that, against the sequential oracle.
//!
//! Peer capacity is not modelled (the experiment harness owns that
//! concern); this runtime answers the orthogonal question "is the
//! protocol correct under asynchrony?".

use crate::event::EventQueue;
use dlpt_core::cache::{self, CacheStats, Shortcut};
use dlpt_core::directory::Directory;
use dlpt_core::key::Key;
use dlpt_core::mapping;
use dlpt_core::messages::{
    Address, DiscoveryOutcome, Envelope, JoinPhase, Message, NodeMsg, NodeSeed, PeerMsg, QueryKind,
};
use dlpt_core::node::NodeState;
use dlpt_core::peer::PeerShard;
use dlpt_core::protocol::{self, discovery, Effects};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// How long a message takes from send to delivery.
#[derive(Debug, Clone, Copy)]
pub enum LatencyModel {
    /// Every message takes exactly this many ticks.
    Constant(u64),
    /// Uniformly sampled delay (inclusive bounds).
    Uniform(u64, u64),
}

impl LatencyModel {
    fn sample(&self, rng: &mut StdRng) -> u64 {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform(lo, hi) => rng.gen_range(*lo..=*hi.max(lo)),
        }
    }
}

#[derive(Debug)]
struct Pending {
    outstanding: i64,
    satisfied: bool,
    results: Vec<Key>,
}

/// The asynchronous runtime.
#[derive(Debug)]
pub struct LatencyNet {
    shards: BTreeMap<Key, PeerShard>,
    directory: Directory,
    queue: EventQueue<(u32, Envelope)>,
    latency: LatencyModel,
    rng: StdRng,
    pending: BTreeMap<u64, Pending>,
    next_request: u64,
    requeue_budget: u32,
    /// Replication factor `k` (1 = off; see `protocol::repair`).
    replication: usize,
    /// Per-peer routing-shortcut cache capacity (0 = off; see
    /// `dlpt_core::cache`).
    cache_capacity: usize,
    /// Messages delivered so far.
    pub deliveries: u64,
    /// Caching counters (all zero at capacity 0).
    pub cache_stats: CacheStats,
}

impl LatencyNet {
    /// An empty network.
    pub fn new(latency: LatencyModel, seed: u64) -> Self {
        LatencyNet {
            shards: BTreeMap::new(),
            directory: Directory::new(),
            queue: EventQueue::new(),
            latency,
            rng: StdRng::seed_from_u64(seed),
            pending: BTreeMap::new(),
            next_request: 1,
            requeue_budget: 4096,
            replication: 1,
            cache_capacity: 0,
            deliveries: 0,
            cache_stats: CacheStats::default(),
        }
    }

    /// Sets the replication factor `k` (primary + `k - 1` ring
    /// followers). Takes effect at the next [`LatencyNet::anti_entropy`]
    /// pass.
    pub fn set_replication(&mut self, k: usize) {
        self.replication = k.max(1);
    }

    /// Sets the per-peer routing-shortcut cache capacity (0 = off),
    /// for existing peers and every peer joining later.
    pub fn set_cache_capacity(&mut self, n: usize) {
        self.cache_capacity = n;
        for shard in self.shards.values_mut() {
            shard.cache.set_capacity(n);
        }
    }

    /// Peer count.
    pub fn peer_count(&self) -> usize {
        self.shards.len()
    }

    /// All node labels, ascending.
    pub fn node_labels(&self) -> Vec<Key> {
        self.directory.labels().cloned().collect()
    }

    /// Every registered service key.
    pub fn registered_keys(&self) -> Vec<Key> {
        let mut out: Vec<Key> = self
            .shards
            .values()
            .flat_map(|s| s.nodes.values().flat_map(|n| n.data.iter().cloned()))
            .collect();
        out.sort();
        out
    }

    fn send(&mut self, env: Envelope) {
        let delay = self.latency.sample(&mut self.rng);
        self.queue.push_after(delay, (0, env));
    }

    fn random_node(&mut self) -> Option<Key> {
        if self.directory.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.directory.len());
        Some(self.directory.label_at(i).clone())
    }

    /// Adds a peer, routing the join through the tree, and runs the
    /// network to quiescence.
    pub fn add_peer(&mut self, id: Key) {
        assert!(!self.shards.contains_key(&id), "duplicate peer id");
        let mut shard = PeerShard::new(id.clone(), u32::MAX >> 1);
        shard.cache.set_capacity(self.cache_capacity);
        if self.shards.is_empty() {
            self.shards.insert(id, shard);
            return;
        }
        self.shards.insert(id.clone(), shard);
        match self.random_node() {
            Some(entry) => self.send(Envelope::to_node(
                entry,
                NodeMsg::PeerJoin {
                    joining: id,
                    phase: JoinPhase::Up,
                },
            )),
            None => {
                let contact = self
                    .shards
                    .keys()
                    .find(|k| **k != id)
                    .cloned()
                    .expect("another peer exists");
                self.send(Envelope::to_peer(
                    contact,
                    PeerMsg::NewPredecessor { joining: id },
                ));
            }
        }
        self.run_to_quiescence();
    }

    /// Registers a key and runs to quiescence.
    pub fn insert_data(&mut self, key: Key) {
        assert!(!self.shards.is_empty(), "need at least one peer");
        match self.random_node() {
            Some(entry) => self.send(Envelope::to_node(entry, NodeMsg::DataInsertion { key })),
            None => {
                // First node: seed it through the peer layer; the Host
                // ring-forwarding places it per the mapping rule.
                let contact = self.shards.keys().next().cloned().expect("non-empty");
                self.send(Envelope::to_peer(
                    contact,
                    PeerMsg::Host {
                        seed: NodeSeed {
                            label: key.clone(),
                            father: None,
                            children: Vec::new(),
                            data: vec![key],
                        },
                    },
                ));
            }
        }
        self.run_to_quiescence();
    }

    /// Deregisters a key and runs to quiescence.
    pub fn remove_data(&mut self, key: &Key) {
        if let Some(entry) = self.random_node() {
            self.send(Envelope::to_node(
                entry,
                NodeMsg::DataRemoval { key: key.clone() },
            ));
            self.run_to_quiescence();
        }
    }

    /// Exact lookup; returns `(found, results)`.
    pub fn lookup(&mut self, key: &Key) -> (bool, Vec<Key>) {
        self.request(QueryKind::Exact(key.clone()))
    }

    /// Range query.
    pub fn range(&mut self, lo: &Key, hi: &Key) -> (bool, Vec<Key>) {
        self.request(QueryKind::Range(lo.clone(), hi.clone()))
    }

    /// Completion query.
    pub fn complete(&mut self, prefix: &Key) -> (bool, Vec<Key>) {
        self.request(QueryKind::Complete(prefix.clone()))
    }

    fn request(&mut self, query: QueryKind) -> (bool, Vec<Key>) {
        let Some(entry) = self.random_node() else {
            return (false, Vec::new());
        };
        let id = self.next_request;
        self.next_request += 1;
        self.pending.insert(
            id,
            Pending {
                outstanding: 1,
                satisfied: true,
                results: Vec::new(),
            },
        );
        // Cache consult at the entry peer — same flow as the
        // synchronous pump, but the shortcut route (and later the
        // invalidations) travel through the latency-randomized queue.
        let mut learn: Option<(Key, Key)> = None;
        let mut shortcut: Option<Shortcut> = None;
        if self.cache_capacity > 0 {
            let target = query.target();
            let host = self
                .directory
                .host_of(&entry)
                .cloned()
                .expect("entry is a live node");
            if let Some(s) = self.shards.get_mut(&host) {
                shortcut = cache::consult(
                    &mut s.cache,
                    &self.directory,
                    &target,
                    &mut self.cache_stats,
                );
            }
            if shortcut.is_none() && matches!(query, QueryKind::Exact(_)) {
                learn = Some((target, host));
            }
        }
        let env = match shortcut {
            Some(sc) => cache::shortcut_envelope(id, query, sc),
            None => discovery::entry_envelope(entry, id, query),
        };
        self.send(env);
        self.run_to_quiescence();
        // Only judge completion once the network is drained: responses
        // arrive out of order here, so the outstanding-branch counter
        // can transiently touch zero while a parent's response (which
        // would raise it again via `pending_children`) is still in
        // flight.
        let p = self.pending.remove(&id).expect("request was registered");
        let satisfied = p.satisfied && p.outstanding <= 0;
        if let Some((target, host)) = learn {
            if satisfied {
                if let Some(sc) = cache::learned_shortcut(&self.directory, &target) {
                    if let Some(s) = self.shards.get_mut(&host) {
                        s.cache.insert(target, sc);
                        self.cache_stats.learned += 1;
                    }
                }
            }
        }
        let mut results = p.results;
        results.sort();
        results.dedup();
        (satisfied, results)
    }

    /// Delivers events until none remain.
    pub fn run_to_quiescence(&mut self) {
        while let Some((_, (requeues, env))) = self.queue.pop() {
            self.deliver(requeues, env);
        }
    }

    fn requeue(&mut self, requeues: u32, env: Envelope) {
        if requeues >= self.requeue_budget {
            panic!("undeliverable under latency: {env:?}");
        }
        // Retry shortly; the message that creates the destination is
        // already in flight.
        self.queue.push_after(1, (requeues + 1, env));
    }

    fn deliver(&mut self, requeues: u32, env: Envelope) {
        self.deliveries += 1;
        match env.to.clone() {
            Address::Client(_) => {
                if let Message::ClientResponse(o) = env.msg {
                    self.client_response(o);
                }
            }
            Address::Peer(id) => {
                let new_root = match &env.msg {
                    Message::Peer(PeerMsg::Host { seed }) if seed.father.is_none() => {
                        Some(seed.label.clone())
                    }
                    _ => None,
                };
                let Some(shard) = self.shards.get_mut(&id) else {
                    self.requeue(requeues, env);
                    return;
                };
                // Counted here — after the shard probe — so requeued
                // attempts and ultimately-dropped messages are not
                // reported as deliveries (mirrors the sync pump).
                if matches!(&env.msg, Message::Peer(PeerMsg::InvalidateCached { .. })) {
                    self.cache_stats.invalidations_delivered += 1;
                }
                let mut fx = Effects::default();
                match env.msg {
                    Message::Peer(m) => protocol::handle_peer_msg(shard, m, &mut fx),
                    _ => unreachable!("peer address carries peer message"),
                }
                let _ = new_root; // root tracking is not needed here
                self.apply(fx);
            }
            Address::Node(label) => {
                let Some(host) = self.directory.host_of(&label).cloned() else {
                    self.requeue(requeues, env);
                    return;
                };
                let Some(shard) = self.shards.get_mut(&host) else {
                    self.requeue(requeues, env);
                    return;
                };
                if !shard.nodes.contains_key(&label) {
                    self.requeue(requeues, env);
                    return;
                }
                // Non-discovery node messages may mutate the node's
                // structure: advance its epoch so learned routing
                // shortcuts re-validate (`dlpt_core::cache`).
                let structural = !matches!(&env.msg, Message::Node(NodeMsg::Discovery(_)));
                let mut fx = Effects::default();
                match env.msg {
                    Message::Node(m) => protocol::handle_node_msg(shard, &label, m, &mut fx),
                    _ => unreachable!("node address carries node message"),
                }
                if structural {
                    self.directory.bump_epoch(&label);
                }
                self.apply(fx);
            }
        }
    }

    fn apply(&mut self, fx: Effects) {
        for (label, host) in fx.relocated {
            self.directory.insert(label, host);
        }
        for label in fx.removed {
            self.directory.remove(&label);
            // Eager invalidation of shortcuts through the dissolved
            // node; the broadcasts interleave with everything else in
            // the latency queue, and the epoch guard on the handler
            // keeps reordered deliveries harmless.
            if self.cache_capacity > 0 {
                let epoch = self.directory.epoch_of(&label);
                let peers: Vec<Key> = self.shards.keys().cloned().collect();
                for p in peers {
                    self.cache_stats.invalidations_sent += 1;
                    self.send(Envelope::to_peer(
                        p,
                        PeerMsg::InvalidateCached {
                            label: label.clone(),
                            epoch,
                        },
                    ));
                }
            }
        }
        for env in fx.out {
            self.send(env);
        }
    }

    fn client_response(&mut self, o: DiscoveryOutcome) {
        let Some(p) = self.pending.get_mut(&o.request_id) else {
            return;
        };
        p.outstanding += o.pending_children as i64 - 1;
        p.satisfied &= o.satisfied && !o.dropped;
        p.results.extend(o.results);
    }

    /// One anti-entropy pass (`protocol::repair`) under latency: every
    /// peer is kicked with `SyncReplicas` and re-clones its nodes along
    /// the ring; the `Replicate` walks interleave arbitrarily with each
    /// other. Runs to quiescence. No-op at `k = 1`.
    pub fn anti_entropy(&mut self) {
        if self.replication <= 1 || self.shards.len() <= 1 {
            return;
        }
        let peers: Vec<Key> = self.shards.keys().cloned().collect();
        protocol::repair::refresh_follower_records(&mut self.directory, &peers, self.replication);
        for p in peers {
            self.send(Envelope::to_peer(
                p,
                PeerMsg::SyncReplicas {
                    k: self.replication as u32,
                },
            ));
        }
        self.run_to_quiescence();
    }

    /// Non-graceful departure: the peer vanishes with its state; the
    /// ring heals and every node it ran fails over to a surviving
    /// follower copy where one exists. Returns the labels actually
    /// lost. Run [`LatencyNet::anti_entropy`] beforehand (for fresh
    /// copies) and afterwards (to restore `k`).
    pub fn crash_peer(&mut self, id: &Key) -> Vec<Key> {
        let Some(shard) = self.shards.remove(id) else {
            return Vec::new();
        };
        let hosted: Vec<Key> = shard.nodes.keys().cloned().collect();
        if self.shards.is_empty() {
            for l in &hosted {
                self.directory.remove(l);
            }
            return hosted;
        }
        // Neighbours notice and heal their links.
        let (pred, succ) = (shard.peer.pred.clone(), shard.peer.succ.clone());
        if let Some(p) = self.shards.get_mut(&pred) {
            p.peer.succ = if succ == *id {
                pred.clone()
            } else {
                succ.clone()
            };
        }
        if let Some(s) = self.shards.get_mut(&succ) {
            s.peer.pred = if pred == *id {
                succ.clone()
            } else {
                pred.clone()
            };
        }
        let mut lost = Vec::new();
        for label in hosted {
            if !protocol::repair::promote_from_followers(
                &mut self.shards,
                &mut self.directory,
                &label,
            ) {
                self.directory.remove(&label);
                lost.push(label);
            }
        }
        lost
    }

    /// Distinct live peers holding a copy of `label` (primary first).
    pub fn replica_hosts(&self, label: &Key) -> Vec<Key> {
        protocol::repair::live_replica_hosts(&self.shards, &self.directory, label)
    }

    /// Checks the successor-mapping invariant over the whole network.
    pub fn check_mapping(&self) -> Result<(), String> {
        let peers: std::collections::BTreeSet<Key> = self.shards.keys().cloned().collect();
        for (label, actual) in self.directory.iter() {
            let expected = mapping::host_of(&peers, label).expect("non-empty");
            if actual != expected {
                return Err(format!(
                    "node {label} hosted on {actual}, rule demands {expected}"
                ));
            }
        }
        Ok(())
    }

    /// Checks tree-link consistency (bidirectional father/children and
    /// the PGCP label property).
    pub fn check_tree(&self) -> Result<(), String> {
        let node = |l: &Key| -> Option<&NodeState> {
            let host = self.directory.host_of(l)?;
            self.shards.get(host)?.nodes.get(l)
        };
        for shard in self.shards.values() {
            for n in shard.nodes.values() {
                if let Some(f) = &n.father {
                    let father = node(f).ok_or(format!("{}: father {f} missing", n.label))?;
                    if !father.children.contains(&n.label) {
                        return Err(format!("{}: father {f} does not list it", n.label));
                    }
                }
                let children: Vec<&Key> = n.children.iter().collect();
                for c in &children {
                    let child = node(c).ok_or(format!("{}: child {c} missing", n.label))?;
                    if child.father.as_ref() != Some(&n.label) {
                        return Err(format!("{c}: father is not {}", n.label));
                    }
                    if !n.label.is_proper_prefix_of(c) {
                        return Err(format!("{c} does not extend {}", n.label));
                    }
                }
                for (i, a) in children.iter().enumerate() {
                    for b in &children[i + 1..] {
                        if a.gcp_len(b) != n.label.len() {
                            return Err(format!(
                                "children {a}, {b} of {} violate the PGCP property",
                                n.label
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlpt_core::alphabet::Alphabet;
    use dlpt_core::trie::PgcpTrie;

    fn build(latency: LatencyModel, seed: u64, peers: usize, keys: &[&str]) -> LatencyNet {
        let mut net = LatencyNet::new(latency, seed);
        let alphabet = Alphabet::grid();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
        for _ in 0..peers {
            loop {
                let id = alphabet.random_id(&mut rng, 10);
                if !net.shards.contains_key(&id) {
                    net.add_peer(id);
                    break;
                }
            }
        }
        for k in keys {
            net.insert_data(Key::from(*k));
        }
        net
    }

    const KEYS: [&str; 10] = [
        "DGEMM", "DGEMV", "DTRSM", "DTRMM", "SGEMM", "S3L_fft", "S3L_sort", "PSGESV", "PDGEMM",
        "ZTRSM",
    ];

    #[test]
    fn converges_to_oracle_under_uniform_latency() {
        let mut oracle = PgcpTrie::new();
        for k in KEYS {
            oracle.insert(Key::from(k));
        }
        for seed in 0..8 {
            let net = build(LatencyModel::Uniform(1, 50), seed, 8, &KEYS);
            assert_eq!(
                net.node_labels(),
                oracle.labels(),
                "seed {seed}: async construction must match the oracle"
            );
            net.check_tree().unwrap();
            net.check_mapping().unwrap();
        }
    }

    #[test]
    fn constant_latency_matches_uniform_result() {
        let a = build(LatencyModel::Constant(1), 3, 6, &KEYS);
        let b = build(LatencyModel::Uniform(1, 100), 3, 6, &KEYS);
        assert_eq!(a.node_labels(), b.node_labels());
        assert_eq!(a.registered_keys(), b.registered_keys());
    }

    #[test]
    fn lookups_work_after_async_construction() {
        let mut net = build(LatencyModel::Uniform(1, 30), 11, 10, &KEYS);
        for k in KEYS {
            let (found, results) = net.lookup(&Key::from(k));
            assert!(found, "{k}");
            assert_eq!(results, vec![Key::from(k)]);
        }
        let (found, _) = net.lookup(&Key::from("MISSING"));
        assert!(!found);
    }

    #[test]
    fn range_and_completion_under_latency() {
        let mut net = build(LatencyModel::Uniform(1, 30), 13, 6, &KEYS);
        let (ok, results) = net.complete(&Key::from("S3L"));
        assert!(ok);
        assert_eq!(results, vec![Key::from("S3L_fft"), Key::from("S3L_sort")]);
        let (ok, results) = net.range(&Key::from("D"), &Key::from("E"));
        assert!(ok);
        assert_eq!(results.len(), 4, "{results:?}");
    }

    #[test]
    fn peers_joining_after_data_keep_invariants() {
        let mut net = build(LatencyModel::Uniform(1, 40), 17, 4, &KEYS);
        let alphabet = Alphabet::grid();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..6 {
            loop {
                let id = alphabet.random_id(&mut rng, 10);
                if !net.shards.contains_key(&id) {
                    net.add_peer(id);
                    break;
                }
            }
            net.check_mapping().unwrap();
            net.check_tree().unwrap();
        }
        assert_eq!(net.peer_count(), 10);
    }

    #[test]
    fn deliveries_are_counted() {
        let net = build(LatencyModel::Constant(1), 19, 4, &KEYS[..4]);
        assert!(net.deliveries > 10);
    }

    #[test]
    fn anti_entropy_replicates_under_latency() {
        let mut net = build(LatencyModel::Uniform(1, 40), 23, 6, &KEYS);
        net.set_replication(3);
        net.anti_entropy();
        for label in net.node_labels() {
            let hosts = net.replica_hosts(&label);
            assert_eq!(hosts.len(), 3, "{label}: {hosts:?}");
            let distinct: std::collections::BTreeSet<&Key> = hosts.iter().collect();
            assert_eq!(distinct.len(), 3);
        }
    }

    #[test]
    fn crash_with_replicas_loses_nothing_under_latency() {
        let mut net = build(LatencyModel::Uniform(1, 25), 29, 7, &KEYS);
        net.set_replication(2);
        net.anti_entropy();
        // Crash the most loaded peer.
        let victim = net
            .shards
            .iter()
            .max_by_key(|(_, s)| s.node_count())
            .map(|(id, _)| id.clone())
            .unwrap();
        let lost = net.crash_peer(&victim);
        assert!(lost.is_empty(), "{lost:?}");
        net.check_tree().unwrap();
        net.check_mapping().unwrap();
        for k in KEYS {
            let (found, _) = net.lookup(&Key::from(k));
            assert!(found, "{k}");
        }
        // A second pass restores full redundancy.
        net.anti_entropy();
        for label in net.node_labels() {
            assert_eq!(net.replica_hosts(&label).len(), 2, "{label}");
        }
    }

    #[test]
    fn cached_lookups_hit_and_stay_correct_under_latency() {
        let mut net = build(LatencyModel::Uniform(1, 40), 37, 8, &KEYS);
        net.set_cache_capacity(32);
        for _ in 0..6 {
            for k in KEYS {
                let (found, results) = net.lookup(&Key::from(k));
                assert!(found, "{k}");
                assert_eq!(results, vec![Key::from(k)]);
            }
        }
        assert!(net.cache_stats.learned > 0);
        assert!(
            net.cache_stats.hits > 0,
            "repeated lookups must hit: {:?}",
            net.cache_stats
        );
        // Misses still resolve correctly.
        let (found, _) = net.lookup(&Key::from("ABSENT"));
        assert!(!found);
    }

    #[test]
    fn removal_invalidates_cached_routes_under_latency() {
        let mut net = build(LatencyModel::Uniform(1, 30), 41, 6, &KEYS);
        net.set_cache_capacity(32);
        let victim = Key::from("DGEMM");
        for _ in 0..8 {
            assert!(net.lookup(&victim).0);
        }
        assert!(net.cache_stats.hits > 0, "cache must be warm");
        net.remove_data(&victim);
        assert!(
            net.cache_stats.invalidations_sent > 0,
            "dissolution must broadcast invalidations"
        );
        assert!(net.cache_stats.invalidations_delivered > 0);
        for _ in 0..8 {
            let (found, results) = net.lookup(&victim);
            assert!(!found, "cache must never resurrect a removed key");
            assert!(results.is_empty());
        }
        // Other keys unaffected.
        assert!(net.lookup(&Key::from("DGEMV")).0);
    }

    #[test]
    fn cache_off_counts_nothing() {
        let mut net = build(LatencyModel::Uniform(1, 30), 43, 5, &KEYS[..4]);
        for _ in 0..4 {
            assert!(net.lookup(&Key::from("DGEMM")).0);
        }
        assert_eq!(net.cache_stats, CacheStats::default());
    }

    #[test]
    fn unreplicated_crash_loses_the_hosted_nodes() {
        let mut net = build(LatencyModel::Constant(1), 31, 6, &KEYS);
        let victim = net
            .shards
            .iter()
            .max_by_key(|(_, s)| s.node_count())
            .map(|(id, _)| id.clone())
            .unwrap();
        let lost = net.crash_peer(&victim);
        assert!(!lost.is_empty(), "k = 1 must lose the hosted nodes");
    }
}

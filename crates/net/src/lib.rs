#![warn(missing_docs)]
//! # dlpt-net — transports for the DLPT protocol
//!
//! The protocol handlers in `dlpt-core::protocol` are pure functions
//! over one peer shard; this crate supplies the runtimes that carry
//! their envelopes:
//!
//! * [`event`] — a deterministic discrete-event queue;
//! * [`sim::LatencyNet`] — a message-level simulator that delivers
//!   envelopes after randomized latencies. Because deliveries
//!   interleave arbitrarily, it exercises the protocol's tolerance to
//!   out-of-order messages — something the synchronous FIFO pump of
//!   `DlptSystem` never does;
//! * [`codec`] — a length-prefixed binary wire format for every
//!   protocol message (what a deployment would put on TCP);
//! * [`threaded::ThreadedDlpt`] — a live in-process runtime: every
//!   peer is an OS thread, envelopes travel encoded over crossbeam
//!   channels, and a router thread plays the role the delivery
//!   directory plays in the simulator. This is the substitution for
//!   the paper's never-evaluated Grid'5000 prototype (see DESIGN.md).

pub mod codec;
pub mod event;
pub mod sim;
pub mod threaded;

pub use event::EventQueue;
pub use sim::{LatencyModel, LatencyNet};
pub use threaded::ThreadedDlpt;

//! Binary wire format for the DLPT protocol.
//!
//! Every [`Envelope`] encodes to a length-prefixed frame:
//!
//! ```text
//! [frame_len u32le] [address] [message]
//! ```
//!
//! with keys as `u16le` length then digits, collections as `u32le`
//! count then elements, and one tag byte per enum variant. The format is what
//! the threaded runtime puts on its channels (and what a deployment
//! would put on TCP); decoding is fully bounds-checked so a truncated
//! or corrupt frame yields an error, never a panic.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dlpt_core::key::{Key, KEY_INLINE_CAP};
use dlpt_core::messages::{
    Address, DiscoveryMsg, DiscoveryOutcome, Envelope, JoinPhase, Message, NodeMsg, NodeSeed,
    PeerMsg, QueryKind, RoutePhase,
};
use dlpt_core::node::NodeState;

/// Decoding failure: truncated frame or unknown tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}
impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

#[cold]
#[inline(never)]
fn err<T>(what: &str) -> Result<T> {
    Err(CodecError(what.to_string()))
}

#[cold]
#[inline(never)]
fn truncated<T>(what: &str) -> Result<T> {
    Err(CodecError(format!("truncated {what}")))
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

#[inline]
fn put_key(buf: &mut BytesMut, k: &Key) {
    buf.put_u16_le(k.len() as u16);
    buf.put_slice(k.as_bytes());
}

fn put_opt_key(buf: &mut BytesMut, k: &Option<Key>) {
    match k {
        Some(k) => {
            buf.put_u8(1);
            put_key(buf, k);
        }
        None => buf.put_u8(0),
    }
}

fn put_keys<'a>(buf: &mut BytesMut, ks: impl ExactSizeIterator<Item = &'a Key>) {
    buf.put_u32_le(ks.len() as u32);
    for k in ks {
        put_key(buf, k);
    }
}

fn put_node_state(buf: &mut BytesMut, n: &NodeState) {
    put_key(buf, &n.label);
    put_opt_key(buf, &n.father);
    put_keys(buf, n.children.iter());
    put_keys(buf, n.data.iter());
    buf.put_u64_le(n.load);
    buf.put_u64_le(n.prev_load);
}

fn put_seed(buf: &mut BytesMut, s: &NodeSeed) {
    put_key(buf, &s.label);
    put_opt_key(buf, &s.father);
    put_keys(buf, s.children.iter());
    put_keys(buf, s.data.iter());
}

fn put_query(buf: &mut BytesMut, q: &QueryKind) {
    match q {
        QueryKind::Exact(k) => {
            buf.put_u8(0);
            put_key(buf, k);
        }
        QueryKind::Range(lo, hi) => {
            buf.put_u8(1);
            put_key(buf, lo);
            put_key(buf, hi);
        }
        QueryKind::Complete(p) => {
            buf.put_u8(2);
            put_key(buf, p);
        }
    }
}

fn put_discovery(buf: &mut BytesMut, d: &DiscoveryMsg) {
    buf.put_u64_le(d.request_id);
    put_query(buf, &d.query);
    buf.put_u8(match d.phase {
        RoutePhase::Up => 0,
        RoutePhase::Down => 1,
        RoutePhase::Gather => 2,
    });
    put_keys(buf, d.path.iter());
}

fn put_outcome(buf: &mut BytesMut, o: &DiscoveryOutcome) {
    buf.put_u64_le(o.request_id);
    buf.put_u8(u8::from(o.satisfied) | (u8::from(o.dropped) << 1));
    put_keys(buf, o.results.iter());
    put_keys(buf, o.path.iter());
    buf.put_u32_le(o.pending_children);
}

fn put_node_msg(buf: &mut BytesMut, m: &NodeMsg) {
    match m {
        NodeMsg::PeerJoin { joining, phase } => {
            buf.put_u8(0);
            put_key(buf, joining);
            buf.put_u8(match phase {
                JoinPhase::Up => 0,
                JoinPhase::Down => 1,
            });
        }
        NodeMsg::DataInsertion { key } => {
            buf.put_u8(1);
            put_key(buf, key);
        }
        NodeMsg::SearchingHost { seed } => {
            buf.put_u8(2);
            put_seed(buf, seed);
        }
        NodeMsg::UpdateChild { old, new } => {
            buf.put_u8(3);
            put_key(buf, old);
            put_key(buf, new);
        }
        NodeMsg::Discovery(d) => {
            buf.put_u8(4);
            put_discovery(buf, d);
        }
        NodeMsg::DataRemoval { key } => {
            buf.put_u8(5);
            put_key(buf, key);
        }
        NodeMsg::RemoveChild { child } => {
            buf.put_u8(6);
            put_key(buf, child);
        }
        NodeMsg::SetFather { father } => {
            buf.put_u8(7);
            put_opt_key(buf, father);
        }
    }
}

fn put_peer_msg(buf: &mut BytesMut, m: &PeerMsg) {
    match m {
        PeerMsg::NewPredecessor { joining } => {
            buf.put_u8(0);
            put_key(buf, joining);
        }
        PeerMsg::YourInformation { pred, succ, nodes } => {
            buf.put_u8(1);
            put_key(buf, pred);
            put_key(buf, succ);
            buf.put_u32_le(nodes.len() as u32);
            for n in nodes {
                put_node_state(buf, n);
            }
        }
        PeerMsg::UpdateSuccessor { succ } => {
            buf.put_u8(2);
            put_key(buf, succ);
        }
        PeerMsg::UpdatePredecessor { pred } => {
            buf.put_u8(3);
            put_key(buf, pred);
        }
        PeerMsg::Host { seed } => {
            buf.put_u8(4);
            put_seed(buf, seed);
        }
        PeerMsg::TakeOver { pred, nodes } => {
            buf.put_u8(5);
            put_key(buf, pred);
            buf.put_u32_le(nodes.len() as u32);
            for n in nodes {
                put_node_state(buf, n);
            }
        }
        PeerMsg::SyncReplicas { k } => {
            buf.put_u8(6);
            buf.put_u32_le(*k);
        }
        PeerMsg::Replicate { primary, ttl, seed } => {
            buf.put_u8(7);
            put_key(buf, primary);
            buf.put_u32_le(*ttl);
            put_seed(buf, seed);
        }
        PeerMsg::DropReplica { label } => {
            buf.put_u8(8);
            put_key(buf, label);
        }
        PeerMsg::PromoteReplica { label } => {
            buf.put_u8(9);
            put_key(buf, label);
        }
        PeerMsg::InvalidateCached { label, epoch } => {
            buf.put_u8(10);
            put_key(buf, label);
            buf.put_u64_le(*epoch);
        }
    }
}

/// Encodes an envelope into a length-prefixed frame. The body is
/// written once into the final buffer and the length prefix patched in
/// afterwards — no staging buffer, no copy.
pub fn encode(env: &Envelope) -> Bytes {
    let mut frame = BytesMut::with_capacity(96);
    frame.put_u32_le(0); // placeholder, patched below
    match &env.to {
        Address::Peer(k) => {
            frame.put_u8(0);
            put_key(&mut frame, k);
        }
        Address::Node(k) => {
            frame.put_u8(1);
            put_key(&mut frame, k);
        }
        Address::Client(id) => {
            frame.put_u8(2);
            frame.put_u64_le(*id);
        }
    }
    match &env.msg {
        Message::Node(m) => {
            frame.put_u8(0);
            put_node_msg(&mut frame, m);
        }
        Message::Peer(m) => {
            frame.put_u8(1);
            put_peer_msg(&mut frame, m);
        }
        Message::ClientResponse(o) => {
            frame.put_u8(2);
            put_outcome(&mut frame, o);
        }
    }
    let body_len = (frame.len() - 4) as u32;
    frame[..4].copy_from_slice(&body_len.to_le_bytes());
    frame.freeze()
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

#[inline]
fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        truncated(what)
    } else {
        Ok(())
    }
}

#[inline]
fn get_key(buf: &mut impl Buf) -> Result<Key> {
    // Fast path: length prefix and digits contiguous in the cursor —
    // one chunk read and one bounds check cover both, and the key is
    // built straight into its inline (SSO) representation with no
    // intermediate buffer or allocation for short keys. Slice cursors
    // (every runtime decodes whole frames) always take this path on
    // well-formed input.
    let chunk = buf.chunk();
    if chunk.len() >= 2 {
        let len = u16::from_le_bytes([chunk[0], chunk[1]]) as usize;
        if chunk.len() - 2 >= len {
            // Short keys with a full-width window in the cursor land
            // straight in the inline repr via a fixed-size copy (no
            // variable-length memcpy, no 32-byte staging move).
            let key = if len <= KEY_INLINE_CAP && chunk.len() >= 2 + KEY_INLINE_CAP {
                let window: &[u8; KEY_INLINE_CAP] = chunk[2..2 + KEY_INLINE_CAP]
                    .try_into()
                    .expect("checked width");
                Key::from_inline_window(window, len)
            } else {
                Key::from_slice(&chunk[2..2 + len])
            };
            buf.advance(2 + len);
            return Ok(key);
        }
    }
    get_key_cold(buf)
}

/// Non-contiguous or truncated input: bounds-checked field reads with
/// precise error labels.
#[cold]
fn get_key_cold(buf: &mut impl Buf) -> Result<Key> {
    need(buf, 2, "key length")?;
    let len = buf.get_u16_le() as usize;
    need(buf, len, "key digits")?;
    let mut v = vec![0u8; len];
    buf.copy_to_slice(&mut v);
    Ok(Key::from_bytes(v))
}

fn get_opt_key(buf: &mut impl Buf) -> Result<Option<Key>> {
    need(buf, 1, "option flag")?;
    match buf.get_u8() {
        0 => Ok(None),
        1 => Ok(Some(get_key(buf)?)),
        t => err(&format!("option tag {t}")),
    }
}

fn get_keys(buf: &mut impl Buf) -> Result<Vec<Key>> {
    need(buf, 4, "key count")?;
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(get_key(buf)?);
    }
    Ok(out)
}

fn get_node_state(buf: &mut impl Buf) -> Result<NodeState> {
    let label = get_key(buf)?;
    let mut n = NodeState::new(label);
    n.father = get_opt_key(buf)?;
    n.children = get_keys(buf)?.into_iter().collect();
    n.data = get_keys(buf)?.into_iter().collect();
    need(buf, 16, "node load counters")?;
    n.load = buf.get_u64_le();
    n.prev_load = buf.get_u64_le();
    Ok(n)
}

fn get_seed(buf: &mut impl Buf) -> Result<NodeSeed> {
    Ok(NodeSeed {
        label: get_key(buf)?,
        father: get_opt_key(buf)?,
        children: get_keys(buf)?,
        data: get_keys(buf)?,
    })
}

fn get_query(buf: &mut impl Buf) -> Result<QueryKind> {
    need(buf, 1, "query tag")?;
    match buf.get_u8() {
        0 => Ok(QueryKind::Exact(get_key(buf)?)),
        1 => Ok(QueryKind::Range(get_key(buf)?, get_key(buf)?)),
        2 => Ok(QueryKind::Complete(get_key(buf)?)),
        t => err(&format!("query tag {t}")),
    }
}

fn get_discovery(buf: &mut impl Buf) -> Result<DiscoveryMsg> {
    need(buf, 8, "request id")?;
    let request_id = buf.get_u64_le();
    let query = get_query(buf)?;
    need(buf, 1, "phase")?;
    let phase = match buf.get_u8() {
        0 => RoutePhase::Up,
        1 => RoutePhase::Down,
        2 => RoutePhase::Gather,
        t => return err(&format!("phase tag {t}")),
    };
    Ok(DiscoveryMsg {
        request_id,
        query,
        phase,
        path: get_keys(buf)?,
    })
}

fn get_outcome(buf: &mut impl Buf) -> Result<DiscoveryOutcome> {
    need(buf, 9, "outcome header")?;
    let request_id = buf.get_u64_le();
    let flags = buf.get_u8();
    let results = get_keys(buf)?;
    let path = get_keys(buf)?;
    need(buf, 4, "pending count")?;
    Ok(DiscoveryOutcome {
        request_id,
        satisfied: flags & 1 != 0,
        dropped: flags & 2 != 0,
        results,
        path,
        pending_children: buf.get_u32_le(),
    })
}

fn get_node_msg(buf: &mut impl Buf) -> Result<NodeMsg> {
    need(buf, 1, "node msg tag")?;
    match buf.get_u8() {
        0 => {
            let joining = get_key(buf)?;
            need(buf, 1, "join phase")?;
            let phase = match buf.get_u8() {
                0 => JoinPhase::Up,
                1 => JoinPhase::Down,
                t => return err(&format!("join phase {t}")),
            };
            Ok(NodeMsg::PeerJoin { joining, phase })
        }
        1 => Ok(NodeMsg::DataInsertion { key: get_key(buf)? }),
        2 => Ok(NodeMsg::SearchingHost {
            seed: get_seed(buf)?,
        }),
        3 => Ok(NodeMsg::UpdateChild {
            old: get_key(buf)?,
            new: get_key(buf)?,
        }),
        4 => Ok(NodeMsg::Discovery(get_discovery(buf)?)),
        5 => Ok(NodeMsg::DataRemoval { key: get_key(buf)? }),
        6 => Ok(NodeMsg::RemoveChild {
            child: get_key(buf)?,
        }),
        7 => Ok(NodeMsg::SetFather {
            father: get_opt_key(buf)?,
        }),
        t => err(&format!("node msg tag {t}")),
    }
}

fn get_peer_msg(buf: &mut impl Buf) -> Result<PeerMsg> {
    need(buf, 1, "peer msg tag")?;
    match buf.get_u8() {
        0 => Ok(PeerMsg::NewPredecessor {
            joining: get_key(buf)?,
        }),
        1 => {
            let pred = get_key(buf)?;
            let succ = get_key(buf)?;
            need(buf, 4, "node count")?;
            let n = buf.get_u32_le() as usize;
            let mut nodes = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                nodes.push(get_node_state(buf)?);
            }
            Ok(PeerMsg::YourInformation { pred, succ, nodes })
        }
        2 => Ok(PeerMsg::UpdateSuccessor {
            succ: get_key(buf)?,
        }),
        3 => Ok(PeerMsg::UpdatePredecessor {
            pred: get_key(buf)?,
        }),
        4 => Ok(PeerMsg::Host {
            seed: get_seed(buf)?,
        }),
        5 => {
            let pred = get_key(buf)?;
            need(buf, 4, "node count")?;
            let n = buf.get_u32_le() as usize;
            let mut nodes = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                nodes.push(get_node_state(buf)?);
            }
            Ok(PeerMsg::TakeOver { pred, nodes })
        }
        6 => {
            need(buf, 4, "replication factor")?;
            Ok(PeerMsg::SyncReplicas {
                k: buf.get_u32_le(),
            })
        }
        7 => {
            let primary = get_key(buf)?;
            need(buf, 4, "replicate ttl")?;
            let ttl = buf.get_u32_le();
            Ok(PeerMsg::Replicate {
                primary,
                ttl,
                seed: get_seed(buf)?,
            })
        }
        8 => Ok(PeerMsg::DropReplica {
            label: get_key(buf)?,
        }),
        9 => Ok(PeerMsg::PromoteReplica {
            label: get_key(buf)?,
        }),
        10 => {
            let label = get_key(buf)?;
            need(buf, 8, "invalidation epoch")?;
            Ok(PeerMsg::InvalidateCached {
                label,
                epoch: buf.get_u64_le(),
            })
        }
        t => err(&format!("peer msg tag {t}")),
    }
}

/// Decodes one length-prefixed frame (as produced by [`encode`]).
pub fn decode(frame: &[u8]) -> Result<Envelope> {
    let mut buf = frame;
    need(&buf, 4, "frame length")?;
    let len = buf.get_u32_le() as usize;
    if buf.remaining() != len {
        return err(&format!(
            "frame length mismatch: header {len}, body {}",
            buf.remaining()
        ));
    }
    need(&buf, 1, "address tag")?;
    let to = match buf.get_u8() {
        0 => Address::Peer(get_key(&mut buf)?),
        1 => Address::Node(get_key(&mut buf)?),
        2 => {
            need(&buf, 8, "client id")?;
            Address::Client(buf.get_u64_le())
        }
        t => return err(&format!("address tag {t}")),
    };
    need(&buf, 1, "message tag")?;
    let msg = match buf.get_u8() {
        0 => Message::Node(get_node_msg(&mut buf)?),
        1 => Message::Peer(get_peer_msg(&mut buf)?),
        2 => Message::ClientResponse(get_outcome(&mut buf)?),
        t => return err(&format!("message tag {t}")),
    };
    if buf.remaining() != 0 {
        return err(&format!("{} trailing bytes", buf.remaining()));
    }
    Ok(Envelope { to, msg })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn sample_envelopes() -> Vec<Envelope> {
        let mut node = NodeState::new(k("101"));
        node.father = Some(Key::epsilon());
        node.children.insert(k("10101"));
        node.data.insert(k("101"));
        node.load = 7;
        node.prev_load = 3;
        vec![
            Envelope::to_node(
                k("10"),
                NodeMsg::PeerJoin {
                    joining: k("PEER01"),
                    phase: JoinPhase::Up,
                },
            ),
            Envelope::to_node(k("10"), NodeMsg::DataInsertion { key: k("10101") }),
            Envelope::to_node(
                k("10"),
                NodeMsg::SearchingHost {
                    seed: NodeSeed {
                        label: k("101"),
                        father: Some(k("10")),
                        children: vec![k("10101"), k("10111")],
                        data: vec![k("101")],
                    },
                },
            ),
            Envelope::to_node(
                k("10"),
                NodeMsg::UpdateChild {
                    old: k("10101"),
                    new: k("101"),
                },
            ),
            Envelope::to_node(k("10"), NodeMsg::DataRemoval { key: k("10101") }),
            Envelope::to_node(k("10"), NodeMsg::RemoveChild { child: k("10101") }),
            Envelope::to_node(
                k("10"),
                NodeMsg::SetFather {
                    father: Some(k("1")),
                },
            ),
            Envelope::to_node(k("10"), NodeMsg::SetFather { father: None }),
            Envelope::to_node(
                k("10"),
                NodeMsg::Discovery(DiscoveryMsg {
                    request_id: 42,
                    query: QueryKind::Range(k("A"), k("Z")),
                    phase: RoutePhase::Gather,
                    path: vec![k("ε-no"), k("10")],
                }),
            ),
            Envelope::to_peer(k("P1"), PeerMsg::NewPredecessor { joining: k("P0") }),
            Envelope::to_peer(
                k("P1"),
                PeerMsg::YourInformation {
                    pred: k("P0"),
                    succ: k("P2"),
                    nodes: vec![node.clone()],
                },
            ),
            Envelope::to_peer(k("P1"), PeerMsg::UpdateSuccessor { succ: k("P2") }),
            Envelope::to_peer(k("P1"), PeerMsg::UpdatePredecessor { pred: k("P0") }),
            Envelope::to_peer(
                k("P1"),
                PeerMsg::Host {
                    seed: NodeSeed {
                        label: Key::epsilon(),
                        father: None,
                        children: vec![],
                        data: vec![],
                    },
                },
            ),
            Envelope::to_peer(
                k("P1"),
                PeerMsg::TakeOver {
                    pred: k("P0"),
                    nodes: vec![node],
                },
            ),
            Envelope::to_peer(k("P1"), PeerMsg::SyncReplicas { k: 3 }),
            Envelope::to_peer(
                k("P1"),
                PeerMsg::Replicate {
                    primary: k("P0"),
                    ttl: 2,
                    seed: NodeSeed {
                        label: k("101"),
                        father: Some(k("10")),
                        children: vec![k("10101")],
                        data: vec![k("101")],
                    },
                },
            ),
            Envelope::to_peer(k("P1"), PeerMsg::DropReplica { label: k("101") }),
            Envelope::to_peer(k("P1"), PeerMsg::PromoteReplica { label: k("101") }),
            Envelope::to_peer(
                k("P1"),
                PeerMsg::InvalidateCached {
                    label: k("101"),
                    epoch: 0xDEAD_BEEF_u64,
                },
            ),
            Envelope::to_client(
                9,
                DiscoveryOutcome {
                    request_id: 9,
                    satisfied: true,
                    dropped: false,
                    results: vec![k("DGEMM")],
                    path: vec![k("D"), k("DGEMM")],
                    pending_children: 2,
                },
            ),
        ]
    }

    /// The discriminant of a message, as `(address-kind, payload-kind,
    /// variant)`. The `match`es are deliberately written without
    /// wildcards: adding a `NodeMsg`/`PeerMsg` variant fails to
    /// compile here until it is classified — and
    /// [`roundtrip_every_message_kind`] then fails until
    /// [`sample_envelopes`] actually covers it on the wire.
    fn variant_of(env: &Envelope) -> (u8, u8, u8) {
        let addr = match &env.to {
            Address::Peer(_) => 0,
            Address::Node(_) => 1,
            Address::Client(_) => 2,
        };
        match &env.msg {
            Message::Node(m) => {
                let v = match m {
                    NodeMsg::PeerJoin { .. } => 0,
                    NodeMsg::DataInsertion { .. } => 1,
                    NodeMsg::SearchingHost { .. } => 2,
                    NodeMsg::UpdateChild { .. } => 3,
                    NodeMsg::Discovery(_) => 4,
                    NodeMsg::DataRemoval { .. } => 5,
                    NodeMsg::RemoveChild { .. } => 6,
                    NodeMsg::SetFather { .. } => 7,
                };
                (addr, 0, v)
            }
            Message::Peer(m) => {
                let v = match m {
                    PeerMsg::NewPredecessor { .. } => 0,
                    PeerMsg::YourInformation { .. } => 1,
                    PeerMsg::UpdateSuccessor { .. } => 2,
                    PeerMsg::UpdatePredecessor { .. } => 3,
                    PeerMsg::Host { .. } => 4,
                    PeerMsg::TakeOver { .. } => 5,
                    PeerMsg::SyncReplicas { .. } => 6,
                    PeerMsg::Replicate { .. } => 7,
                    PeerMsg::DropReplica { .. } => 8,
                    PeerMsg::PromoteReplica { .. } => 9,
                    PeerMsg::InvalidateCached { .. } => 10,
                };
                (addr, 1, v)
            }
            Message::ClientResponse(_) => (addr, 2, 0),
        }
    }

    /// All `NodeMsg` and `PeerMsg` variants `variant_of` classifies —
    /// the counts the exhaustiveness test checks against. Keep in sync
    /// with the `match`es above (the compiler enforces the enums side;
    /// these constants enforce the sample-list side).
    const NODE_MSG_VARIANTS: u8 = 8;
    const PEER_MSG_VARIANTS: u8 = 11;

    #[test]
    fn sample_list_is_exhaustive_over_all_variants() {
        let seen: std::collections::BTreeSet<(u8, u8)> = sample_envelopes()
            .iter()
            .map(|e| {
                let (_, payload, v) = variant_of(e);
                (payload, v)
            })
            .collect();
        for v in 0..NODE_MSG_VARIANTS {
            assert!(seen.contains(&(0, v)), "NodeMsg variant {v} not sampled");
        }
        for v in 0..PEER_MSG_VARIANTS {
            assert!(seen.contains(&(1, v)), "PeerMsg variant {v} not sampled");
        }
        assert!(seen.contains(&(2, 0)), "ClientResponse not sampled");
    }

    #[test]
    fn roundtrip_every_message_kind() {
        for env in sample_envelopes() {
            let frame = encode(&env);
            let back = decode(&frame).unwrap_or_else(|e| panic!("{env:?}: {e}"));
            assert_eq!(back, env);
        }
    }

    #[test]
    fn truncation_is_an_error_never_a_panic() {
        for env in sample_envelopes() {
            let frame = encode(&env);
            for cut in 0..frame.len() {
                let sliced = &frame[..cut];
                assert!(decode(sliced).is_err(), "cut at {cut} of {env:?}");
            }
        }
    }

    #[test]
    fn corrupt_tags_are_errors() {
        let env = Envelope::to_peer(k("P"), PeerMsg::NewPredecessor { joining: k("Q") });
        let mut frame = encode(&env).to_vec();
        frame[4] = 9; // address tag
        assert!(decode(&frame).is_err());
        let mut frame = encode(&env).to_vec();
        let last = frame.len() - 1;
        frame.truncate(last); // trailing byte missing from key
        assert!(decode(&frame).is_err());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let env = Envelope::to_peer(k("P"), PeerMsg::UpdateSuccessor { succ: k("Q") });
        let mut frame = encode(&env).to_vec();
        frame.push(0xFF);
        assert!(decode(&frame).is_err(), "length prefix must pin the body");
    }

    #[test]
    fn empty_key_and_epsilon_roundtrip() {
        let env = Envelope::to_node(
            Key::epsilon(),
            NodeMsg::DataInsertion {
                key: Key::epsilon(),
            },
        );
        assert_eq!(decode(&encode(&env)).unwrap(), env);
    }
}

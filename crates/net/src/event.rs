//! A deterministic discrete-event queue.
//!
//! Events fire in timestamp order; ties break by insertion sequence,
//! so two runs that push the same events pop the same order — the
//! property every simulation in this workspace leans on.
//!
//! Payloads live in a slot vector with a free list; the heap orders
//! bare `{at, seq, slot}` records. Sifting therefore moves 24-byte
//! entries instead of full payloads (an `Envelope` is ~200 bytes), and
//! slot reuse keeps the steady state allocation-free.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in abstract ticks.
pub type SimTime = u64;

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Min-heap of timestamped events with deterministic tie-breaking.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Scheduled>>,
    items: Vec<Option<T>>,
    free: Vec<u32>,
    seq: u64,
    now: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            items: Vec::new(),
            free: Vec::new(),
            seq: 0,
            now: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `item` at absolute time `at` (clamped to now).
    pub fn push_at(&mut self, at: SimTime, item: T) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.items[s as usize] = Some(item);
                s
            }
            None => {
                let s = u32::try_from(self.items.len()).expect("event queue slot overflow");
                self.items.push(Some(item));
                s
            }
        };
        self.heap.push(Reverse(Scheduled { at, seq, slot }));
    }

    /// Schedules `item` `delay` ticks from now.
    pub fn push_after(&mut self, delay: SimTime, item: T) {
        self.push_at(self.now.saturating_add(delay), item);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let Reverse(s) = self.heap.pop()?;
        self.now = s.at;
        let item = self.items[s.slot as usize]
            .take()
            .expect("scheduled slot holds its payload until popped");
        self.free.push(s.slot);
        Some((s.at, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push_at(30, "c");
        q.push_at(10, "a");
        q.push_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.now(), 20);
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push_at(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn push_after_is_relative() {
        let mut q = EventQueue::new();
        q.push_at(100, "x");
        q.pop();
        q.push_after(5, "y");
        assert_eq!(q.pop(), Some((105, "y")));
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut q = EventQueue::new();
        q.push_at(50, "x");
        q.pop();
        q.push_at(10, "late");
        assert_eq!(q.pop(), Some((50, "late")), "no time travel");
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.push_at(1, 1);
        q.push_at(2, 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn slots_are_reused_after_pop() {
        let mut q = EventQueue::new();
        for round in 0..100 {
            q.push_at(round, round);
            q.push_at(round, round + 1);
            q.pop();
            q.pop();
        }
        assert!(q.items.len() <= 2, "steady state reuses payload slots");
    }
}

//! The live threaded runtime: every peer is an OS thread.
//!
//! This is the workspace's substitution for the paper's Grid'5000
//! prototype (announced as future work there): the same protocol
//! handlers, but each peer shard owned by its own thread, envelopes
//! travelling as encoded byte frames ([`crate::codec`]) over crossbeam
//! channels. A router owns the delivery directory (node label →
//! peer), plays the failure-free network, and aggregates
//! scatter/gather responses — the role `DlptSystem`'s pump plays in
//! the simulator.
//!
//! Scheduling is nondeterministic; the protocol's convergence is not.
//! The tests build overlays under real thread interleavings and check
//! the resulting tree against the sequential oracle.
//!
//! Scope: joins, registrations and queries (the live operations a
//! discovery service serves). Capacity accounting and churn are
//! experiment-harness concerns and stay in `dlpt-sim`.

use crate::codec::{decode, encode};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use dlpt_core::alphabet::Alphabet;
use dlpt_core::cache::{self, CacheStats, RouteCache};
use dlpt_core::directory::Directory;
use dlpt_core::key::Key;
use dlpt_core::messages::{
    Address, DiscoveryOutcome, Envelope, JoinPhase, Message, NodeMsg, NodeSeed, PeerMsg, QueryKind,
};
use dlpt_core::peer::PeerShard;
use dlpt_core::protocol::{self, discovery, Effects};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Message to a peer thread.
enum ToPeer {
    /// Deliver a frame; `retries` echoes back on failure.
    Frame { retries: u32, frame: Bytes },
    /// Terminate the thread.
    Shutdown,
}

/// Reply from a peer thread to the router.
struct PeerReply {
    /// Encoded outgoing envelopes.
    frames: Vec<Bytes>,
    /// Directory updates.
    relocated: Vec<(Key, Key)>,
    /// Nodes that dissolved (removal protocol).
    removed: Vec<Key>,
    /// A frame the peer could not handle yet (node not hosted here),
    /// with its retry count.
    undelivered: Option<(u32, Bytes)>,
}

/// Counters shared with the peer threads.
#[derive(Debug, Default)]
pub struct ThreadedStats {
    /// Frames handled by peer threads.
    pub frames_handled: Mutex<u64>,
    /// Frames bounced back for retry.
    pub frames_bounced: Mutex<u64>,
}

/// A live DLPT overlay over OS threads.
pub struct ThreadedDlpt {
    alphabet: Alphabet,
    rng: StdRng,
    directory: Directory,
    peers: HashMap<Key, Sender<ToPeer>>,
    handles: Vec<JoinHandle<PeerShard>>,
    reply_tx: Sender<PeerReply>,
    reply_rx: Receiver<PeerReply>,
    queue: VecDeque<(u32, Bytes)>,
    inflight: usize,
    next_request: u64,
    /// Replication factor `k` (1 = off; see `protocol::repair`).
    replication: usize,
    /// Per-peer routing-shortcut cache capacity (0 = off).
    cache_capacity: usize,
    /// Per-peer routing-shortcut caches (`dlpt_core::cache`), keyed by
    /// the peer a request entered through. The router plays the role a
    /// deployment's client library would — it already owns the
    /// delivery directory and mediates every request — so it is where
    /// shortcut consultation and epoch validation are colocated;
    /// entries stale out through the same per-label epochs the other
    /// runtimes use, and dissolved labels are evicted eagerly when a
    /// peer reply reports them removed.
    caches: HashMap<Key, RouteCache>,
    /// Caching counters (all zero at capacity 0).
    pub cache_stats: CacheStats,
    /// Shared counters.
    pub stats: Arc<ThreadedStats>,
    retry_budget: u32,
}

impl ThreadedDlpt {
    /// An empty live overlay.
    pub fn new(alphabet: Alphabet, seed: u64) -> Self {
        let (reply_tx, reply_rx) = unbounded();
        ThreadedDlpt {
            alphabet,
            rng: StdRng::seed_from_u64(seed),
            directory: Directory::new(),
            peers: HashMap::new(),
            handles: Vec::new(),
            reply_tx,
            reply_rx,
            queue: VecDeque::new(),
            inflight: 0,
            next_request: 1,
            replication: 1,
            cache_capacity: 0,
            caches: HashMap::new(),
            cache_stats: CacheStats::default(),
            stats: Arc::new(ThreadedStats::default()),
            retry_budget: 10_000,
        }
    }

    /// Number of live peer threads.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Sets the replication factor `k`; replica copies materialize at
    /// the next [`ThreadedDlpt::anti_entropy`] pass.
    pub fn set_replication(&mut self, k: usize) {
        self.replication = k.max(1);
    }

    /// Sets the per-peer routing-shortcut cache capacity (0 = off).
    pub fn set_cache_capacity(&mut self, n: usize) {
        self.cache_capacity = n;
        for cache in self.caches.values_mut() {
            cache.set_capacity(n);
        }
    }

    /// One anti-entropy pass over the live threads: every peer receives
    /// a `SyncReplicas` frame and re-clones its nodes onto its ring
    /// successors with `Replicate` frames — the full replication
    /// protocol exercised through the wire codec. No-op at `k = 1`.
    pub fn anti_entropy(&mut self) {
        if self.replication <= 1 || self.peers.len() <= 1 {
            return;
        }
        let mut ids: Vec<Key> = self.peers.keys().cloned().collect();
        ids.sort();
        protocol::repair::refresh_follower_records(&mut self.directory, &ids, self.replication);
        for id in ids {
            let env = Envelope::to_peer(
                id,
                PeerMsg::SyncReplicas {
                    k: self.replication as u32,
                },
            );
            self.queue.push_back((0, encode(&env)));
        }
        self.run_to_quiescence(|_| {});
    }

    /// Simulated crash: the peer thread is killed without hand-off and
    /// every node it hosted fails over to a follower copy via
    /// `PromoteReplica` frames. The ring heals through
    /// `UpdateSuccessor`/`UpdatePredecessor`. Returns the labels lost
    /// (nodes with no surviving copy). Run
    /// [`ThreadedDlpt::anti_entropy`] beforehand for fresh copies.
    pub fn crash_peer(&mut self, id: &Key) -> Vec<Key> {
        let Some(tx) = self.peers.remove(id) else {
            return Vec::new();
        };
        // The thread exits without handing anything over — its shard
        // state is discarded when the handle is joined at shutdown.
        let _ = tx.send(ToPeer::Shutdown);
        // Its entry-point cache dies with it; shortcuts other peers
        // learned toward its nodes stale out via the epoch bumps the
        // failover promotions and removals below perform.
        self.caches.remove(id);
        let hosted: Vec<Key> = self
            .directory
            .iter()
            .filter(|(_, host)| *host == id)
            .map(|(label, _)| label.clone())
            .collect();
        if self.peers.is_empty() {
            for l in &hosted {
                self.directory.remove(l);
            }
            return hosted;
        }
        // Heal the ring: the router knows the identifier order.
        let mut ids: Vec<Key> = self.peers.keys().cloned().collect();
        ids.sort();
        let succ = ids.iter().find(|p| *p > id).unwrap_or(&ids[0]).clone();
        let pred = ids
            .iter()
            .rev()
            .find(|p| *p < id)
            .unwrap_or(&ids[ids.len() - 1])
            .clone();
        let heal = [
            Envelope::to_peer(
                pred.clone(),
                PeerMsg::UpdateSuccessor { succ: succ.clone() },
            ),
            Envelope::to_peer(succ, PeerMsg::UpdatePredecessor { pred }),
        ];
        for env in heal {
            self.queue.push_back((0, encode(&env)));
        }
        // Fail over. The mapping rule's new host is the first live peer
        // at or after the label on the ring; promote there when the
        // bookkeeping says it holds a copy (the common case — the first
        // follower IS the crashed primary's successor). When a join
        // slid in between primary and follower since the last sync, the
        // rightful host has no copy yet: promote on the holder instead
        // and let the next anti-entropy pass re-place the set (a
        // transient mapping divergence, routed correctly through the
        // directory either way).
        let rightful =
            |label: &Key| -> Key { ids.iter().find(|p| *p >= label).unwrap_or(&ids[0]).clone() };
        let mut lost = Vec::new();
        for label in hosted {
            let want = rightful(&label);
            let target = self
                .directory
                .followers_of(&label)
                .any(|f| *f == want)
                .then_some(want)
                .or_else(|| {
                    self.directory
                        .followers_of(&label)
                        .find(|f| self.peers.contains_key(*f))
                        .cloned()
                });
            match target {
                Some(t) => {
                    let env = Envelope::to_peer(
                        t,
                        PeerMsg::PromoteReplica {
                            label: label.clone(),
                        },
                    );
                    self.queue.push_back((0, encode(&env)));
                }
                None => {
                    self.directory.remove(&label);
                    lost.push(label);
                }
            }
        }
        self.run_to_quiescence(|_| {});
        // A follower without the copy (crash raced the sync) leaves the
        // label pointing at the dead peer: count it lost.
        let stale: Vec<Key> = self
            .directory
            .iter()
            .filter(|(_, host)| *host == id)
            .map(|(label, _)| label.clone())
            .collect();
        for label in stale {
            self.directory.remove(&label);
            lost.push(label);
        }
        lost
    }

    /// Distinct live peers believed to hold a copy of `label` (primary
    /// first, per the router's follower bookkeeping).
    pub fn replica_hosts(&self, label: &Key) -> Vec<Key> {
        let mut out = Vec::new();
        if let Some(p) = self.directory.host_of(label) {
            if self.peers.contains_key(p) {
                out.push(p.clone());
            }
        }
        for f in self.directory.followers_of(label) {
            if self.peers.contains_key(f) && !out.contains(f) {
                out.push(f.clone());
            }
        }
        out
    }

    /// All node labels, ascending.
    pub fn node_labels(&self) -> Vec<Key> {
        self.directory.labels().cloned().collect()
    }

    fn spawn_peer(&mut self, id: Key) {
        let (tx, rx) = unbounded::<ToPeer>();
        let reply = self.reply_tx.clone();
        let stats = Arc::clone(&self.stats);
        let shard_id = id.clone();
        let handle = std::thread::Builder::new()
            .name(format!("peer-{shard_id}"))
            .spawn(move || peer_loop(PeerShard::new(shard_id, u32::MAX >> 1), rx, reply, stats))
            .expect("spawn peer thread");
        self.peers.insert(id, tx);
        self.handles.push(handle);
    }

    /// Joins a peer under a fresh random identifier; returns it.
    pub fn add_peer(&mut self) -> Key {
        let id = loop {
            let id = self.alphabet.random_id(&mut self.rng, 12);
            if !self.peers.contains_key(&id) {
                break id;
            }
        };
        self.add_peer_with_id(id.clone());
        id
    }

    /// Joins a peer under a chosen identifier, routing through the
    /// tree when one exists.
    pub fn add_peer_with_id(&mut self, id: Key) {
        assert!(!self.peers.contains_key(&id), "duplicate peer id");
        let first = self.peers.is_empty();
        self.spawn_peer(id.clone());
        if first {
            return;
        }
        let env = match self.random_node() {
            Some(entry) => Envelope::to_node(
                entry,
                NodeMsg::PeerJoin {
                    joining: id,
                    phase: JoinPhase::Up,
                },
            ),
            None => {
                let contact = self
                    .peers
                    .keys()
                    .find(|k| **k != id)
                    .cloned()
                    .expect("another peer exists");
                Envelope::to_peer(contact, PeerMsg::NewPredecessor { joining: id })
            }
        };
        self.queue.push_back((0, encode(&env)));
        self.run_to_quiescence(|_| {});
    }

    fn random_node(&mut self) -> Option<Key> {
        if self.directory.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.directory.len());
        Some(self.directory.label_at(i).clone())
    }

    /// Registers a service key.
    pub fn insert_data(&mut self, key: impl Into<Key>) {
        let key = key.into();
        assert!(!self.peers.is_empty(), "need at least one peer");
        let env = match self.random_node() {
            Some(entry) => Envelope::to_node(entry, NodeMsg::DataInsertion { key }),
            None => {
                let contact = self.peers.keys().next().cloned().expect("non-empty");
                Envelope::to_peer(
                    contact,
                    PeerMsg::Host {
                        seed: NodeSeed {
                            label: key.clone(),
                            father: None,
                            children: Vec::new(),
                            data: vec![key],
                        },
                    },
                )
            }
        };
        self.queue.push_back((0, encode(&env)));
        self.run_to_quiescence(|_| {});
    }

    /// Deregisters a service key.
    pub fn remove_data(&mut self, key: &Key) {
        if let Some(entry) = self.random_node() {
            let env = Envelope::to_node(entry, NodeMsg::DataRemoval { key: key.clone() });
            self.queue.push_back((0, encode(&env)));
            self.run_to_quiescence(|_| {});
        }
    }

    /// Exact lookup; returns `(found, results)`.
    pub fn lookup(&mut self, key: &Key) -> (bool, Vec<Key>) {
        self.request(QueryKind::Exact(key.clone()))
    }

    /// Automatic completion of a partial string.
    pub fn complete(&mut self, prefix: &Key) -> (bool, Vec<Key>) {
        self.request(QueryKind::Complete(prefix.clone()))
    }

    /// Range query over `[lo, hi]`.
    pub fn range(&mut self, lo: &Key, hi: &Key) -> (bool, Vec<Key>) {
        self.request(QueryKind::Range(lo.clone(), hi.clone()))
    }

    fn request(&mut self, query: QueryKind) -> (bool, Vec<Key>) {
        let Some(entry) = self.random_node() else {
            return (false, Vec::new());
        };
        let id = self.next_request;
        self.next_request += 1;
        // Cache consult at the entry peer's router-side cache — same
        // hit/stale/learn flow as the other runtimes.
        let mut learn: Option<(Key, Key)> = None;
        let mut shortcut: Option<cache::Shortcut> = None;
        if self.cache_capacity > 0 {
            let target = query.target();
            let host = self
                .directory
                .host_of(&entry)
                .cloned()
                .expect("entry is a live node");
            if let Some(c) = self.caches.get_mut(&host) {
                shortcut = cache::consult(c, &self.directory, &target, &mut self.cache_stats);
            }
            if shortcut.is_none() && matches!(query, QueryKind::Exact(_)) {
                learn = Some((target, host));
            }
        }
        let env = match shortcut {
            Some(sc) => cache::shortcut_envelope(id, query, sc),
            None => discovery::entry_envelope(entry, id, query),
        };
        self.queue.push_back((0, encode(&env)));
        let mut outstanding = 1i64;
        let mut satisfied = true;
        let mut results = Vec::new();
        self.run_to_quiescence(|o: &DiscoveryOutcome| {
            if o.request_id == id {
                outstanding += o.pending_children as i64 - 1;
                satisfied &= o.satisfied && !o.dropped;
                results.extend(o.results.iter().cloned());
            }
        });
        debug_assert!(outstanding <= 0 || results.is_empty());
        let satisfied = satisfied && outstanding <= 0;
        if let Some((target, host)) = learn {
            if satisfied {
                if let Some(sc) = cache::learned_shortcut(&self.directory, &target) {
                    let capacity = self.cache_capacity;
                    let cache = self
                        .caches
                        .entry(host)
                        .or_insert_with(|| RouteCache::new(capacity));
                    cache.insert(target, sc);
                    self.cache_stats.learned += 1;
                }
            }
        }
        results.sort();
        results.dedup();
        (satisfied, results)
    }

    /// Pumps the router until no frame is queued or in flight.
    ///
    /// Frames whose destination is not resolvable yet (a node still in
    /// flight between peers) are parked until the next peer reply —
    /// only replies can change the directory, so spinning on the queue
    /// would burn retries without progress.
    fn run_to_quiescence(&mut self, mut on_outcome: impl FnMut(&DiscoveryOutcome)) {
        let mut parked: VecDeque<(u32, Bytes)> = VecDeque::new();
        loop {
            while let Some((retries, frame)) = self.queue.pop_front() {
                if let Some(deferred) = self.dispatch(retries, frame, &mut on_outcome) {
                    parked.push_back(deferred);
                }
            }
            if self.inflight == 0 {
                if parked.is_empty() {
                    return;
                }
                // Nothing in flight can unblock the parked frames.
                let (retries, frame) = parked.front().expect("non-empty");
                let env = decode(frame).expect("self-produced");
                panic!(
                    "deadlock: {} frame(s) parked after {retries} rounds, first: {:?}",
                    parked.len(),
                    env.to
                );
            }
            let reply = self.reply_rx.recv().expect("peer threads alive");
            self.inflight -= 1;
            for (label, host) in reply.relocated {
                self.directory.insert(label, host);
            }
            for label in reply.removed {
                self.directory.remove(&label);
                // Eager invalidation: the router owns the per-peer
                // caches here, so the broadcast the other runtimes put
                // on the wire is a local sweep over them.
                if self.cache_capacity > 0 {
                    let epoch = self.directory.epoch_of(&label);
                    for cache in self.caches.values_mut() {
                        self.cache_stats.invalidations_sent += 1;
                        self.cache_stats.invalidations_delivered += 1;
                        cache.invalidate_label(&label, epoch);
                    }
                }
            }
            for f in reply.frames {
                self.queue.push_back((0, f));
            }
            if let Some((retries, frame)) = reply.undelivered {
                if retries >= self.retry_budget {
                    panic!("frame undeliverable after {retries} retries");
                }
                self.queue.push_back((retries + 1, frame));
            }
            // The directory may have changed: parked frames get
            // another chance.
            while let Some((retries, frame)) = parked.pop_front() {
                self.queue.push_back((retries + 1, frame));
            }
        }
    }

    /// Tries to deliver one frame. Returns the frame when its
    /// destination cannot be resolved yet.
    fn dispatch(
        &mut self,
        retries: u32,
        frame: Bytes,
        on_outcome: &mut impl FnMut(&DiscoveryOutcome),
    ) -> Option<(u32, Bytes)> {
        let env = decode(&frame).expect("frames are self-produced");
        match env.to {
            Address::Client(_) => {
                if let Message::ClientResponse(o) = env.msg {
                    on_outcome(&o);
                }
                None
            }
            Address::Peer(id) => match self.peers.get(&id) {
                Some(tx) => {
                    tx.send(ToPeer::Frame { retries, frame })
                        .expect("peer alive");
                    self.inflight += 1;
                    None
                }
                None => Some((retries, frame)),
            },
            Address::Node(label) => {
                let structural = !matches!(&env.msg, Message::Node(NodeMsg::Discovery(_)));
                let host = self.directory.host_of(&label).cloned();
                match host.as_ref().and_then(|h| self.peers.get(h)) {
                    // A directory entry pointing at a crashed peer parks
                    // the frame like an in-flight node would, instead of
                    // panicking the router.
                    Some(tx) => {
                        tx.send(ToPeer::Frame { retries, frame })
                            .expect("peer alive");
                        self.inflight += 1;
                        // A delivered non-discovery node frame may
                        // mutate the node's structure: advance its
                        // epoch so learned routing shortcuts
                        // re-validate. Only on the actual hand-off —
                        // a parked frame must not bump once per retry
                        // (the other runtimes bump once, at delivery).
                        if structural {
                            self.directory.bump_epoch(&label);
                        }
                        None
                    }
                    None => Some((retries, frame)),
                }
            }
        }
    }

    /// Stops every peer thread and returns their final shards
    /// (for inspection/validation).
    pub fn shutdown(mut self) -> Vec<PeerShard> {
        for tx in self.peers.values() {
            let _ = tx.send(ToPeer::Shutdown);
        }
        self.handles
            .drain(..)
            .map(|h| h.join().expect("peer thread exits cleanly"))
            .collect()
    }
}

/// The peer thread: decode, handle, encode, reply.
fn peer_loop(
    mut shard: PeerShard,
    rx: Receiver<ToPeer>,
    reply: Sender<PeerReply>,
    stats: Arc<ThreadedStats>,
) -> PeerShard {
    while let Ok(msg) = rx.recv() {
        let (retries, frame) = match msg {
            ToPeer::Shutdown => break,
            ToPeer::Frame { retries, frame } => (retries, frame),
        };
        let env = decode(&frame).expect("router sends valid frames");
        let mut fx = Effects::default();
        let undelivered = match &env.msg {
            Message::Node(_) => {
                let Address::Node(label) = &env.to else {
                    unreachable!("node message to node address")
                };
                if shard.nodes.contains_key(label) {
                    let Message::Node(m) = env.msg else {
                        unreachable!()
                    };
                    protocol::handle_node_msg(&mut shard, label, m, &mut fx);
                    None
                } else {
                    // Not hosted here (migration or creation still in
                    // flight): bounce back for retry.
                    *stats.frames_bounced.lock() += 1;
                    Some((retries, frame))
                }
            }
            Message::Peer(_) => {
                let Message::Peer(m) = env.msg else {
                    unreachable!()
                };
                protocol::handle_peer_msg(&mut shard, m, &mut fx);
                None
            }
            Message::ClientResponse(_) => None, // router handles these
        };
        *stats.frames_handled.lock() += 1;
        let frames: Vec<Bytes> = fx.out.iter().map(encode).collect();
        reply
            .send(PeerReply {
                frames,
                relocated: fx.relocated,
                removed: fx.removed,
                undelivered,
            })
            .expect("router alive");
    }
    shard
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlpt_core::trie::PgcpTrie;

    const KEYS: [&str; 12] = [
        "DGEMM", "DGEMV", "DTRSM", "DTRMM", "SGEMM", "SGEMV", "S3L_fft", "S3L_sort", "PSGESV",
        "PDGEMM", "ZTRSM", "CAXPY",
    ];

    fn live(seed: u64, peers: usize, keys: &[&str]) -> ThreadedDlpt {
        let mut net = ThreadedDlpt::new(Alphabet::grid(), seed);
        for _ in 0..peers {
            net.add_peer();
        }
        for k in keys {
            net.insert_data(*k);
        }
        net
    }

    #[test]
    fn threads_build_the_oracle_tree() {
        let mut oracle = PgcpTrie::new();
        for k in KEYS {
            oracle.insert(Key::from(k));
        }
        let net = live(1, 6, &KEYS);
        assert_eq!(net.node_labels(), oracle.labels());
        let shards = net.shutdown();
        assert_eq!(shards.len(), 6);
        let total_nodes: usize = shards.iter().map(|s| s.node_count()).sum();
        assert_eq!(total_nodes, oracle.labels().len());
    }

    #[test]
    fn live_lookups_and_queries() {
        let mut net = live(2, 5, &KEYS);
        for k in KEYS {
            let (found, results) = net.lookup(&Key::from(k));
            assert!(found, "{k}");
            assert_eq!(results, vec![Key::from(k)]);
        }
        let (found, _) = net.lookup(&Key::from("NOPE"));
        assert!(!found);
        let (ok, results) = net.complete(&Key::from("S3L"));
        assert!(ok);
        assert_eq!(results.len(), 2);
        let (ok, results) = net.range(&Key::from("D"), &Key::from("E"));
        assert!(ok);
        assert_eq!(results.len(), 4);
        net.shutdown();
    }

    #[test]
    fn peers_can_join_after_data() {
        let mut net = live(3, 3, &KEYS[..6]);
        for _ in 0..4 {
            net.add_peer();
        }
        assert_eq!(net.peer_count(), 7);
        for k in &KEYS[..6] {
            assert!(net.lookup(&Key::from(*k)).0, "{k}");
        }
        // Mapping invariant over the final shards.
        let labels = net.node_labels();
        let shards = net.shutdown();
        let peers: std::collections::BTreeSet<Key> =
            shards.iter().map(|s| s.peer.id.clone()).collect();
        for shard in &shards {
            for label in shard.nodes.keys() {
                let expected = dlpt_core::mapping::host_of(&peers, label).unwrap();
                assert_eq!(*expected, shard.peer.id, "node {label} on wrong peer");
            }
        }
        assert_eq!(
            labels.len(),
            shards.iter().map(|s| s.node_count()).sum::<usize>()
        );
    }

    #[test]
    fn stats_count_work() {
        let net = live(4, 4, &KEYS[..4]);
        assert!(*net.stats.frames_handled.lock() > 0);
        net.shutdown();
    }

    #[test]
    fn anti_entropy_places_replicas_on_live_threads() {
        let mut net = live(5, 5, &KEYS);
        net.set_replication(2);
        net.anti_entropy();
        let labels = net.node_labels();
        for label in &labels {
            assert_eq!(net.replica_hosts(label).len(), 2, "{label}");
        }
        // The copies are real: every shard's replica map mirrors the
        // router's bookkeeping.
        let shards = net.shutdown();
        let total_replicas: usize = shards.iter().map(|s| s.replica_count()).sum();
        assert_eq!(total_replicas, labels.len(), "one follower copy each");
    }

    #[test]
    fn cached_lookups_hit_on_live_threads() {
        let mut net = live(7, 5, &KEYS);
        net.set_cache_capacity(32);
        for _ in 0..6 {
            for k in KEYS {
                let (found, results) = net.lookup(&Key::from(k));
                assert!(found, "{k}");
                assert_eq!(results, vec![Key::from(k)]);
            }
        }
        assert!(net.cache_stats.learned > 0);
        assert!(
            net.cache_stats.hits > 0,
            "repeated lookups must hit: {:?}",
            net.cache_stats
        );
        let (found, _) = net.lookup(&Key::from("ABSENT"));
        assert!(!found);
        net.shutdown();
    }

    #[test]
    fn removal_invalidates_router_caches() {
        let mut net = live(8, 4, &KEYS);
        net.set_cache_capacity(32);
        let victim = Key::from("CAXPY");
        for _ in 0..8 {
            assert!(net.lookup(&victim).0);
        }
        assert!(net.cache_stats.hits > 0, "cache must be warm");
        net.remove_data(&victim);
        assert!(net.cache_stats.invalidations_delivered > 0);
        for _ in 0..6 {
            let (found, results) = net.lookup(&victim);
            assert!(!found, "cache must never resurrect a removed key");
            assert!(results.is_empty());
        }
        assert!(net.lookup(&Key::from("DGEMM")).0);
        net.shutdown();
    }

    #[test]
    fn crashed_thread_fails_over_without_losing_keys() {
        let mut net = live(6, 6, &KEYS);
        net.set_replication(2);
        net.anti_entropy();
        // Crash the thread hosting the most nodes.
        let mut by_host: std::collections::HashMap<Key, usize> = std::collections::HashMap::new();
        for label in net.node_labels() {
            let host = net.directory.host_of(&label).unwrap().clone();
            *by_host.entry(host).or_default() += 1;
        }
        let victim = by_host
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
            .map(|(id, _)| id)
            .unwrap();
        let lost = net.crash_peer(&victim);
        assert!(lost.is_empty(), "{lost:?}");
        assert_eq!(net.peer_count(), 5);
        for k in KEYS {
            let (found, results) = net.lookup(&Key::from(k));
            assert!(found, "{k}");
            assert_eq!(results, vec![Key::from(k)]);
        }
        // Redundancy is restored by the next pass.
        net.anti_entropy();
        for label in net.node_labels() {
            assert_eq!(net.replica_hosts(&label).len(), 2, "{label}");
        }
        net.shutdown();
    }
}

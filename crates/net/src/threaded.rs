//! The live threaded runtime: every peer is an OS thread.
//!
//! This is the workspace's substitution for the paper's Grid'5000
//! prototype (announced as future work there): the same protocol
//! handlers, but each peer shard owned by its own thread, envelopes
//! travelling as encoded byte frames ([`crate::codec`]) over crossbeam
//! channels. The router side is a thin adapter over the unified
//! protocol engine (`dlpt_core::engine`): the engine owns the delivery
//! directory, the per-peer route caches, membership and the
//! scatter/gather aggregation, while the [`Engine`]'s transport is
//! implemented by encoding envelopes into frames on the router queue.
//! Shard-side protocol handling is `dlpt_core::protocol`, exactly as
//! in the other runtimes — the peer threads never see runtime
//! concerns.
//!
//! Scheduling is nondeterministic; the protocol's convergence is not.
//! The tests build overlays under real thread interleavings and check
//! the resulting tree against the sequential oracle.
//!
//! Scope: joins, registrations and queries (the live operations a
//! discovery service serves). Capacity accounting and churn are
//! experiment-harness concerns and stay in `dlpt-sim`.

use crate::codec::{decode, encode};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use dlpt_core::alphabet::Alphabet;
use dlpt_core::engine::{Engine, EngineConfig, Transport};
use dlpt_core::key::Key;
use dlpt_core::messages::{Address, Envelope, Message, NodeMsg, PeerMsg, QueryKind};
use dlpt_core::peer::PeerShard;
use dlpt_core::protocol::{self, Effects};
use dlpt_core::transport::{FaultPlan, FaultStats, Faults, FaultyTransport};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Message to a peer thread.
enum ToPeer {
    /// Deliver a frame; `retries` echoes back on failure.
    Frame { retries: u32, frame: Bytes },
    /// Terminate the thread.
    Shutdown,
}

/// Reply from a peer thread to the router.
struct PeerReply {
    /// Encoded outgoing envelopes.
    frames: Vec<Bytes>,
    /// Directory updates.
    relocated: Vec<(Key, Key)>,
    /// Nodes that dissolved (removal protocol).
    removed: Vec<Key>,
    /// A frame the peer could not handle yet (node not hosted here),
    /// with its retry count.
    undelivered: Option<(u32, Bytes)>,
}

/// Counters shared with the peer threads.
#[derive(Debug, Default)]
pub struct ThreadedStats {
    /// Frames handled by peer threads.
    pub frames_handled: Mutex<u64>,
    /// Frames bounced back for retry.
    pub frames_bounced: Mutex<u64>,
}

/// The framed-channel transport: envelopes leaving the engine are
/// encoded into wire frames on the router queue, from where they are
/// dispatched to the owning peer thread.
struct FrameTransport<'a> {
    queue: &'a mut VecDeque<(u32, Bytes)>,
}

impl Transport for FrameTransport<'_> {
    fn deliver(&mut self, env: Envelope) {
        self.queue.push_back((0, encode(&env)));
    }
}

/// A live DLPT overlay over OS threads. Dereferences to the underlying
/// [`Engine`] for introspection (`node_labels`, `peer_count`, …) and
/// the `cache_stats` counters.
pub struct ThreadedDlpt {
    alphabet: Alphabet,
    rng: StdRng,
    engine: Engine,
    peers: HashMap<Key, Sender<ToPeer>>,
    handles: Vec<JoinHandle<PeerShard>>,
    reply_tx: Sender<PeerReply>,
    reply_rx: Receiver<PeerReply>,
    queue: VecDeque<(u32, Bytes)>,
    inflight: usize,
    /// Shared counters.
    pub stats: Arc<ThreadedStats>,
    retry_budget: u32,
    /// Fault-injection layer interposed on the router queue.
    faults: Faults,
    /// Re-issues of a request whose gather was stranded by frame loss
    /// (consulted only while a [`FaultPlan`] is active).
    request_retry_budget: u32,
}

impl std::ops::Deref for ThreadedDlpt {
    type Target = Engine;
    fn deref(&self) -> &Engine {
        &self.engine
    }
}

impl std::ops::DerefMut for ThreadedDlpt {
    fn deref_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }
}

impl ThreadedDlpt {
    /// An empty live overlay.
    pub fn new(alphabet: Alphabet, seed: u64) -> Self {
        let (reply_tx, reply_rx) = unbounded();
        ThreadedDlpt {
            alphabet,
            rng: StdRng::seed_from_u64(seed),
            engine: Engine::new(EngineConfig {
                judge_at_quiescence: true,
                ..EngineConfig::default()
            }),
            peers: HashMap::new(),
            handles: Vec::new(),
            reply_tx,
            reply_rx,
            queue: VecDeque::new(),
            inflight: 0,
            stats: Arc::new(ThreadedStats::default()),
            retry_budget: 10_000,
            faults: Faults::new(FaultPlan::default()),
            request_retry_budget: 4,
        }
    }

    /// Installs a fault plan on the router queue (resetting any prior
    /// fault state). The default plan is fully inert.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Faults::new(plan);
        self.engine.set_fault_recovery(self.faults.is_active());
    }

    /// Severs frames addressed to keys in `[lo, hi)` until
    /// [`ThreadedDlpt::heal_partition`].
    pub fn partition(&mut self, lo: Key, hi: Key) {
        self.faults.partition(lo, hi);
        self.engine.set_fault_recovery(true);
    }

    /// Lifts an active partition.
    pub fn heal_partition(&mut self) {
        self.faults.heal();
        self.engine.set_fault_recovery(self.faults.is_active());
    }

    /// Fault-injection and recovery counters.
    pub fn fault_stats(&self) -> FaultStats {
        let mut stats = self.faults.stats;
        stats.duplicates_suppressed += self.engine.duplicates_suppressed;
        stats
    }

    /// Caps per-frame redelivery attempts before the owning request is
    /// failed explicitly (default `10_000`).
    pub fn set_retry_budget(&mut self, budget: u32) {
        self.retry_budget = budget;
    }

    /// Routes an envelope onto the router queue through the fault
    /// layer (a no-op wrapper while the plan is inert).
    fn push_env(&mut self, env: Envelope) {
        let inner = FrameTransport {
            queue: &mut self.queue,
        };
        if self.faults.is_active() {
            FaultyTransport::new(inner, &mut self.faults).deliver(env);
        } else {
            let mut inner = inner;
            inner.deliver(env);
        }
    }

    /// One anti-entropy pass over the live threads: every peer receives
    /// a `SyncReplicas` frame and re-clones its nodes onto its ring
    /// successors with `Replicate` frames — the full replication
    /// protocol exercised through the wire codec. No-op at `k = 1`.
    pub fn anti_entropy(&mut self) {
        let mut t = FrameTransport {
            queue: &mut self.queue,
        };
        if self.engine.anti_entropy_kick(&mut t) {
            self.run_to_quiescence();
        }
    }

    /// Simulated crash: the peer thread is killed without hand-off and
    /// every node it hosted fails over to a follower copy via
    /// `PromoteReplica` frames. The ring heals through
    /// `UpdateSuccessor`/`UpdatePredecessor`. Returns the labels lost
    /// (nodes with no surviving copy). Run
    /// [`ThreadedDlpt::anti_entropy`] beforehand for fresh copies.
    pub fn crash_peer(&mut self, id: &Key) -> Vec<Key> {
        let Some(tx) = self.peers.remove(id) else {
            return Vec::new();
        };
        // The thread exits without handing anything over — its shard
        // state is discarded when the handle is joined at shutdown.
        let _ = tx.send(ToPeer::Shutdown);
        // Its entry-point cache dies with it; shortcuts other peers
        // learned toward its nodes stale out via the epoch bumps the
        // failover promotions and removals below perform.
        self.engine.remove_member(id);
        let hosted: Vec<Key> = self
            .engine
            .directory()
            .iter()
            .filter(|(_, host)| *host == id)
            .map(|(label, _)| label.clone())
            .collect();
        if self.peers.is_empty() {
            for l in &hosted {
                self.engine.directory_mut().remove(l);
            }
            return hosted;
        }
        // Heal the ring: the router knows the identifier order.
        let ids: Vec<Key> = self.engine.peer_ids();
        let succ = ids.iter().find(|p| *p > id).unwrap_or(&ids[0]).clone();
        let pred = ids
            .iter()
            .rev()
            .find(|p| *p < id)
            .unwrap_or(&ids[ids.len() - 1])
            .clone();
        let heal = [
            Envelope::to_peer(
                pred.clone(),
                PeerMsg::UpdateSuccessor { succ: succ.clone() },
            ),
            Envelope::to_peer(succ, PeerMsg::UpdatePredecessor { pred }),
        ];
        for env in heal {
            self.queue.push_back((0, encode(&env)));
        }
        // Fail over. The mapping rule's new host is the first live peer
        // at or after the label on the ring; promote there when the
        // bookkeeping says it holds a copy (the common case — the first
        // follower IS the crashed primary's successor). When a join
        // slid in between primary and follower since the last sync, the
        // rightful host has no copy yet: promote on the holder instead
        // and let the next anti-entropy pass re-place the set (a
        // transient mapping divergence, routed correctly through the
        // directory either way).
        let rightful =
            |label: &Key| -> Key { ids.iter().find(|p| *p >= label).unwrap_or(&ids[0]).clone() };
        let mut lost = Vec::new();
        for label in hosted {
            let want = rightful(&label);
            let directory = self.engine.directory();
            let target = directory
                .followers_of(&label)
                .any(|f| *f == want)
                .then_some(want)
                .or_else(|| {
                    directory
                        .followers_of(&label)
                        .find(|f| self.peers.contains_key(*f))
                        .cloned()
                });
            match target {
                Some(t) => {
                    let env = Envelope::to_peer(
                        t,
                        PeerMsg::PromoteReplica {
                            label: label.clone(),
                        },
                    );
                    self.queue.push_back((0, encode(&env)));
                }
                None => {
                    self.engine.directory_mut().remove(&label);
                    lost.push(label);
                }
            }
        }
        self.run_to_quiescence();
        // A follower without the copy (crash raced the sync) leaves the
        // label pointing at the dead peer: count it lost.
        let stale: Vec<Key> = self
            .engine
            .directory()
            .iter()
            .filter(|(_, host)| *host == id)
            .map(|(label, _)| label.clone())
            .collect();
        for label in stale {
            self.engine.directory_mut().remove(&label);
            lost.push(label);
        }
        lost
    }

    /// Distinct live peers believed to hold a copy of `label` (primary
    /// first, per the router's follower bookkeeping).
    pub fn replica_hosts(&self, label: &Key) -> Vec<Key> {
        let mut out = Vec::new();
        if let Some(p) = self.engine.directory().host_of(label) {
            if self.peers.contains_key(p) {
                out.push(p.clone());
            }
        }
        for f in self.engine.directory().followers_of(label) {
            if self.peers.contains_key(f) && !out.contains(f) {
                out.push(f.clone());
            }
        }
        out
    }

    fn spawn_peer(&mut self, id: Key) {
        let (tx, rx) = unbounded::<ToPeer>();
        let reply = self.reply_tx.clone();
        let stats = Arc::clone(&self.stats);
        let shard_id = id.clone();
        let handle = std::thread::Builder::new()
            .name(format!("peer-{shard_id}"))
            .spawn(move || peer_loop(PeerShard::new(shard_id, u32::MAX >> 1), rx, reply, stats))
            .expect("spawn peer thread");
        self.peers.insert(id.clone(), tx);
        self.engine.add_member(id);
        self.handles.push(handle);
    }

    /// Joins a peer under a fresh random identifier; returns it.
    pub fn add_peer(&mut self) -> Key {
        let id = loop {
            let id = self.alphabet.random_id(&mut self.rng, 12);
            if !self.peers.contains_key(&id) {
                break id;
            }
        };
        self.add_peer_with_id(id.clone());
        id
    }

    /// Joins a peer under a chosen identifier, routing through the
    /// tree when one exists.
    pub fn add_peer_with_id(&mut self, id: Key) {
        assert!(!self.peers.contains_key(&id), "duplicate peer id");
        let first = self.peers.is_empty();
        self.spawn_peer(id.clone());
        if first {
            return;
        }
        let env = self.engine.join_envelope(&id, &mut self.rng);
        self.push_env(env);
        self.run_to_quiescence();
    }

    /// Registers a service key.
    pub fn insert_data(&mut self, key: impl Into<Key>) {
        let key = key.into();
        assert!(!self.peers.is_empty(), "need at least one peer");
        let env = self.engine.insert_envelope(key, &mut self.rng);
        self.push_env(env);
        self.run_to_quiescence();
    }

    /// Deregisters a service key.
    pub fn remove_data(&mut self, key: &Key) {
        if let Some(entry) = self.engine.random_node(&mut self.rng) {
            let env = Envelope::to_node(entry, NodeMsg::DataRemoval { key: key.clone() });
            self.push_env(env);
            self.run_to_quiescence();
        }
    }

    /// Exact lookup; returns `(found, results)`.
    pub fn lookup(&mut self, key: &Key) -> (bool, Vec<Key>) {
        self.request(QueryKind::Exact(key.clone()))
    }

    /// Automatic completion of a partial string.
    pub fn complete(&mut self, prefix: &Key) -> (bool, Vec<Key>) {
        self.request(QueryKind::Complete(prefix.clone()))
    }

    /// Range query over `[lo, hi]`.
    pub fn range(&mut self, lo: &Key, hi: &Key) -> (bool, Vec<Key>) {
        self.request(QueryKind::Range(lo.clone(), hi.clone()))
    }

    fn request(&mut self, query: QueryKind) -> (bool, Vec<Key>) {
        let Some(entry) = self.engine.random_node(&mut self.rng) else {
            return (false, Vec::new());
        };
        // Cache consult at the entry peer — the engine's shared
        // hit/stale/learn flow; the router (the clients' access proxy)
        // owns the caches, so consultation happens before the frame is
        // cut.
        let (id, env) = self
            .engine
            .begin_request(&entry, query)
            .expect("entry is a live node");
        self.push_env(env);
        self.run_to_quiescence();
        if self.faults.is_active() {
            // A branch still outstanding after the router drained means
            // a frame was lost: re-issue the engine's retry snapshot of
            // the origin envelope with a fresh aggregate, then fail
            // explicitly at budget exhaustion. The threaded runtime has
            // no clock, so the retry is immediate rather than backed
            // off. Fault-off runs never take the snapshot.
            let mut attempts = 0u32;
            while self.engine.retry_pending(id) && attempts < self.request_retry_budget {
                self.faults.stats.retries += 1;
                let origin = self
                    .engine
                    .retry_envelope(id)
                    .expect("fault recovery keeps the origin snapshot");
                self.engine.reset_request_for_retry(id);
                attempts += 1;
                self.push_env(origin);
                self.run_to_quiescence();
            }
            if self.engine.retry_pending(id) {
                self.faults.stats.requests_failed += 1;
            }
        }
        let out = self.engine.finish_request(id);
        (out.satisfied, out.results)
    }

    /// Pumps the router until no frame is queued or in flight.
    ///
    /// Frames whose destination is not resolvable yet (a node still in
    /// flight between peers) are parked until the next peer reply —
    /// only replies can change the directory, so spinning on the queue
    /// would burn retries without progress.
    fn run_to_quiescence(&mut self) {
        let mut parked: VecDeque<(u32, Bytes)> = VecDeque::new();
        loop {
            while let Some((retries, frame)) = self.queue.pop_front() {
                if let Some(deferred) = self.dispatch(retries, frame) {
                    parked.push_back(deferred);
                }
            }
            if self.inflight == 0 {
                // Frames a reordering fault held back re-enter the
                // queue now ("late", never "lost twice").
                {
                    let mut t = FrameTransport {
                        queue: &mut self.queue,
                    };
                    if self.faults.flush_deferred(&mut t) {
                        continue;
                    }
                }
                if parked.is_empty() {
                    return;
                }
                if self.faults.is_active() {
                    // A lost frame can strand its descendants with no
                    // destination ever materialising: fail their
                    // requests explicitly instead of deadlocking.
                    while let Some((_, frame)) = parked.pop_front() {
                        self.faults.stats.frames_exhausted += 1;
                        let env = decode(&frame).expect("self-produced");
                        self.engine
                            .fail_undeliverable(env)
                            .expect("only discovery frames may strand under faults");
                    }
                    continue;
                }
                // Nothing in flight can unblock the parked frames.
                let (retries, frame) = parked.front().expect("non-empty");
                let env = decode(frame).expect("self-produced");
                panic!(
                    "deadlock: {} frame(s) parked after {retries} rounds, first: {:?}",
                    parked.len(),
                    env.to
                );
            }
            let reply = self.reply_rx.recv().expect("peer threads alive");
            self.inflight -= 1;
            // Route the peer's effects through the engine: directory
            // updates, dissolution bookkeeping and the eager cache
            // invalidation broadcast (one implementation for every
            // runtime) — the broadcast frames land on the router queue
            // and terminate at the engine-owned caches in `dispatch`.
            let mut fx = Effects {
                out: Vec::new(),
                relocated: reply.relocated,
                removed: reply.removed,
            };
            if self.faults.is_active() {
                let inner = FrameTransport {
                    queue: &mut self.queue,
                };
                let mut t = FaultyTransport::new(inner, &mut self.faults);
                self.engine.apply(&mut fx, &mut t);
                for f in reply.frames {
                    let env = decode(&f).expect("self-produced");
                    let inner = FrameTransport {
                        queue: &mut self.queue,
                    };
                    FaultyTransport::new(inner, &mut self.faults).deliver(env);
                }
            } else {
                let mut t = FrameTransport {
                    queue: &mut self.queue,
                };
                self.engine.apply(&mut fx, &mut t);
                for f in reply.frames {
                    self.queue.push_back((0, f));
                }
            }
            if let Some((retries, frame)) = reply.undelivered {
                if retries >= self.retry_budget {
                    // Budget exhausted: record it and resolve the
                    // owning request as an explicit failure instead of
                    // aborting the router (frames that are not
                    // discovery traffic still abort — exhausting the
                    // budget there is a routing bug).
                    self.faults.stats.frames_exhausted += 1;
                    let env = decode(&frame).expect("self-produced");
                    self.engine
                        .fail_undeliverable(env)
                        .expect("only discovery frames may exhaust the retry budget");
                } else {
                    self.queue.push_back((retries + 1, frame));
                }
            }
            // The directory may have changed: parked frames get
            // another chance.
            while let Some((retries, frame)) = parked.pop_front() {
                self.queue.push_back((retries + 1, frame));
            }
        }
    }

    /// Tries to deliver one frame. Returns the frame when its
    /// destination cannot be resolved yet.
    fn dispatch(&mut self, retries: u32, frame: Bytes) -> Option<(u32, Bytes)> {
        let env = decode(&frame).expect("frames are self-produced");
        match env.to {
            Address::Client(_) => {
                if let Message::ClientResponse(o) = env.msg {
                    self.engine.client_response(o);
                }
                None
            }
            Address::Peer(id) => {
                if let Message::Peer(PeerMsg::InvalidateCached { label, epoch }) = &env.msg {
                    // The router owns the route caches, so invalidation
                    // frames terminate here instead of at the shard —
                    // same epoch-guarded handler as every runtime.
                    self.engine.deliver_invalidation(&id, label, *epoch);
                    return None;
                }
                match self.peers.get(&id) {
                    Some(tx) => {
                        tx.send(ToPeer::Frame { retries, frame })
                            .expect("peer alive");
                        self.inflight += 1;
                        None
                    }
                    None => Some((retries, frame)),
                }
            }
            Address::Node(label) => {
                let structural = !matches!(&env.msg, Message::Node(NodeMsg::Discovery(_)));
                let host = self.engine.directory().host_of(&label).cloned();
                match host.as_ref().and_then(|h| self.peers.get(h)) {
                    // A directory entry pointing at a crashed peer parks
                    // the frame like an in-flight node would, instead of
                    // panicking the router.
                    Some(tx) => {
                        tx.send(ToPeer::Frame { retries, frame })
                            .expect("peer alive");
                        self.inflight += 1;
                        // A delivered non-discovery node frame may
                        // mutate the node's structure: advance its
                        // epoch so learned routing shortcuts
                        // re-validate. Only on the actual hand-off —
                        // a parked frame must not bump once per retry
                        // (the other runtimes bump once, at delivery).
                        if structural {
                            self.engine.directory_mut().bump_epoch(&label);
                        }
                        None
                    }
                    None => Some((retries, frame)),
                }
            }
        }
    }

    /// Stops every peer thread and returns their final shards
    /// (for inspection/validation).
    pub fn shutdown(mut self) -> Vec<PeerShard> {
        for tx in self.peers.values() {
            let _ = tx.send(ToPeer::Shutdown);
        }
        self.handles
            .drain(..)
            .map(|h| h.join().expect("peer thread exits cleanly"))
            .collect()
    }
}

/// The peer thread: decode, handle, encode, reply.
fn peer_loop(
    mut shard: PeerShard,
    rx: Receiver<ToPeer>,
    reply: Sender<PeerReply>,
    stats: Arc<ThreadedStats>,
) -> PeerShard {
    while let Ok(msg) = rx.recv() {
        let (retries, frame) = match msg {
            ToPeer::Shutdown => break,
            ToPeer::Frame { retries, frame } => (retries, frame),
        };
        let env = decode(&frame).expect("router sends valid frames");
        let mut fx = Effects::default();
        let undelivered = match &env.msg {
            Message::Node(_) => {
                let Address::Node(label) = &env.to else {
                    unreachable!("node message to node address")
                };
                if shard.nodes.contains_key(label) {
                    let Message::Node(m) = env.msg else {
                        unreachable!()
                    };
                    protocol::handle_node_msg(&mut shard, label, m, &mut fx);
                    None
                } else {
                    // Not hosted here (migration or creation still in
                    // flight): bounce back for retry.
                    *stats.frames_bounced.lock() += 1;
                    Some((retries, frame))
                }
            }
            Message::Peer(_) => {
                let Message::Peer(m) = env.msg else {
                    unreachable!()
                };
                protocol::handle_peer_msg(&mut shard, m, &mut fx);
                None
            }
            Message::ClientResponse(_) => None, // router handles these
        };
        *stats.frames_handled.lock() += 1;
        let frames: Vec<Bytes> = fx.out.iter().map(encode).collect();
        reply
            .send(PeerReply {
                frames,
                relocated: fx.relocated,
                removed: fx.removed,
                undelivered,
            })
            .expect("router alive");
    }
    shard
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlpt_core::trie::PgcpTrie;

    const KEYS: [&str; 12] = [
        "DGEMM", "DGEMV", "DTRSM", "DTRMM", "SGEMM", "SGEMV", "S3L_fft", "S3L_sort", "PSGESV",
        "PDGEMM", "ZTRSM", "CAXPY",
    ];

    fn live(seed: u64, peers: usize, keys: &[&str]) -> ThreadedDlpt {
        let mut net = ThreadedDlpt::new(Alphabet::grid(), seed);
        for _ in 0..peers {
            net.add_peer();
        }
        for k in keys {
            net.insert_data(*k);
        }
        net
    }

    #[test]
    fn threads_build_the_oracle_tree() {
        let mut oracle = PgcpTrie::new();
        for k in KEYS {
            oracle.insert(Key::from(k));
        }
        let net = live(1, 6, &KEYS);
        assert_eq!(net.node_labels(), oracle.labels());
        let shards = net.shutdown();
        assert_eq!(shards.len(), 6);
        let total_nodes: usize = shards.iter().map(|s| s.node_count()).sum();
        assert_eq!(total_nodes, oracle.labels().len());
    }

    #[test]
    fn live_lookups_and_queries() {
        let mut net = live(2, 5, &KEYS);
        for k in KEYS {
            let (found, results) = net.lookup(&Key::from(k));
            assert!(found, "{k}");
            assert_eq!(results, vec![Key::from(k)]);
        }
        let (found, _) = net.lookup(&Key::from("NOPE"));
        assert!(!found);
        let (ok, results) = net.complete(&Key::from("S3L"));
        assert!(ok);
        assert_eq!(results.len(), 2);
        let (ok, results) = net.range(&Key::from("D"), &Key::from("E"));
        assert!(ok);
        assert_eq!(results.len(), 4);
        net.shutdown();
    }

    #[test]
    fn peers_can_join_after_data() {
        let mut net = live(3, 3, &KEYS[..6]);
        for _ in 0..4 {
            net.add_peer();
        }
        assert_eq!(net.peer_count(), 7);
        for k in &KEYS[..6] {
            assert!(net.lookup(&Key::from(*k)).0, "{k}");
        }
        // Mapping invariant over the final shards.
        let labels = net.node_labels();
        let shards = net.shutdown();
        let peers: std::collections::BTreeSet<Key> =
            shards.iter().map(|s| s.peer.id.clone()).collect();
        for shard in &shards {
            for label in shard.nodes.keys() {
                let expected = dlpt_core::mapping::host_of(&peers, label).unwrap();
                assert_eq!(*expected, shard.peer.id, "node {label} on wrong peer");
            }
        }
        assert_eq!(
            labels.len(),
            shards.iter().map(|s| s.node_count()).sum::<usize>()
        );
    }

    #[test]
    fn stats_count_work() {
        let net = live(4, 4, &KEYS[..4]);
        assert!(*net.stats.frames_handled.lock() > 0);
        net.shutdown();
    }

    #[test]
    fn anti_entropy_places_replicas_on_live_threads() {
        let mut net = live(5, 5, &KEYS);
        net.set_replication(2);
        net.anti_entropy();
        let labels = net.node_labels();
        for label in &labels {
            assert_eq!(net.replica_hosts(label).len(), 2, "{label}");
        }
        // The copies are real: every shard's replica map mirrors the
        // router's bookkeeping.
        let shards = net.shutdown();
        let total_replicas: usize = shards.iter().map(|s| s.replica_count()).sum();
        assert_eq!(total_replicas, labels.len(), "one follower copy each");
    }

    #[test]
    fn cached_lookups_hit_on_live_threads() {
        let mut net = live(7, 5, &KEYS);
        net.set_cache_capacity(32);
        for _ in 0..6 {
            for k in KEYS {
                let (found, results) = net.lookup(&Key::from(k));
                assert!(found, "{k}");
                assert_eq!(results, vec![Key::from(k)]);
            }
        }
        assert!(net.cache_stats.learned > 0);
        assert!(
            net.cache_stats.hits > 0,
            "repeated lookups must hit: {:?}",
            net.cache_stats
        );
        let (found, _) = net.lookup(&Key::from("ABSENT"));
        assert!(!found);
        net.shutdown();
    }

    #[test]
    fn removal_invalidates_router_caches() {
        let mut net = live(8, 4, &KEYS);
        net.set_cache_capacity(32);
        let victim = Key::from("CAXPY");
        for _ in 0..8 {
            assert!(net.lookup(&victim).0);
        }
        assert!(net.cache_stats.hits > 0, "cache must be warm");
        net.remove_data(&victim);
        assert!(net.cache_stats.invalidations_delivered > 0);
        for _ in 0..6 {
            let (found, results) = net.lookup(&victim);
            assert!(!found, "cache must never resurrect a removed key");
            assert!(results.is_empty());
        }
        assert!(net.lookup(&Key::from("DGEMM")).0);
        net.shutdown();
    }

    #[test]
    fn crashed_thread_fails_over_without_losing_keys() {
        let mut net = live(6, 6, &KEYS);
        net.set_replication(2);
        net.anti_entropy();
        // Crash the thread hosting the most nodes.
        let mut by_host: std::collections::HashMap<Key, usize> = std::collections::HashMap::new();
        for label in net.node_labels() {
            let host = net.directory().host_of(&label).unwrap().clone();
            *by_host.entry(host).or_default() += 1;
        }
        let victim = by_host
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
            .map(|(id, _)| id)
            .unwrap();
        let lost = net.crash_peer(&victim);
        assert!(lost.is_empty(), "{lost:?}");
        assert_eq!(net.peer_count(), 5);
        for k in KEYS {
            let (found, results) = net.lookup(&Key::from(k));
            assert!(found, "{k}");
            assert_eq!(results, vec![Key::from(k)]);
        }
        // Redundancy is restored by the next pass.
        net.anti_entropy();
        for label in net.node_labels() {
            assert_eq!(net.replica_hosts(&label).len(), 2, "{label}");
        }
        net.shutdown();
    }
}

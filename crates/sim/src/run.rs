//! One seeded run of the Section-4 loop.
//!
//! "Each time unit is composed of several steps. (1) If MLT is
//! enabled, a fixed fraction of the peers executes the MLT load
//! balancing. (2) A fixed fraction of peers join the system (applying
//! the KC algorithm if enabled […]). (3) A fixed fraction of peers
//! leaves the system. (4) A fixed fraction of new services are added
//! in the tree (possibly resulting in the creation of new nodes).
//! (5) Discovery requests are sent to the tree (and results on the
//! number of satisfied discovery requests are collected)."

use crate::config::ExperimentConfig;
use dlpt_core::key::Key;
use dlpt_core::messages::QueryKind;
use dlpt_core::metrics::DepthHistogram;
use dlpt_core::system::DlptSystem;
use dlpt_core::transport::FaultPlan;
use dlpt_dht::mapping::RandomMapping;
use dlpt_workloads::capacity::CapacityModel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Raw measurements of one time unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UnitMetrics {
    /// Requests issued.
    pub issued: u64,
    /// Requests that reached their destination ("satisfied").
    pub satisfied: u64,
    /// Requests ignored by an exhausted peer.
    pub dropped: u64,
    /// Requests whose key had no node (should be 0: only registered
    /// keys are requested).
    pub not_found: u64,
    /// Σ logical hops over satisfied requests.
    pub logical_hops_sum: u64,
    /// Σ physical hops (lexicographic mapping) over satisfied requests.
    pub physical_lexico_sum: u64,
    /// Σ physical hops (random/DHT mapping replay) over satisfied
    /// requests; only filled when `track_mapping_hops` is set.
    pub physical_random_sum: u64,
    /// Number of requests contributing to the hop sums.
    pub hop_samples: u64,
    /// Peers alive at the end of the unit.
    pub peers: usize,
    /// Tree nodes at the end of the unit.
    pub nodes: usize,
    /// Node migrations the balancer performed this unit.
    pub migrations: u64,
    /// Distinct service keys registered so far (replication extension).
    pub keys_inserted: u64,
    /// Of those, keys still present in the tree at the end of the unit
    /// — the data-survival numerator `figR` tracks. Crashes are the
    /// only way the two diverge in these workloads.
    pub keys_alive: u64,
    /// Peers crashed (non-gracefully) during this unit.
    pub crashes: u64,
    /// Requests answered through a validated routing shortcut
    /// (caching extension, `figC`).
    pub cache_hits: u64,
    /// Shortcut hits rejected by the epoch check (evicted, request
    /// fell back to the up/down route).
    pub cache_stale: u64,
    /// Per-depth visits of satisfied routes this unit (`counts[d]` =
    /// visits at tree depth `d`); empty unless `track_depth_hist` is
    /// set.
    pub depth_visits: Vec<u64>,
    /// Faultable messages lost in transit this unit (fault extension,
    /// `figA`). All-zero fault counters mean the transport ran inert.
    pub frames_lost: u64,
    /// Faultable messages delivered twice this unit.
    pub frames_duplicated: u64,
    /// Messages severed by an active partition this unit.
    pub partition_dropped: u64,
    /// Request re-issues after a gather was stranded by loss.
    pub retries: u64,
    /// Requests failed explicitly at retry-budget exhaustion.
    pub requests_failed: u64,
    /// Duplicated responses suppressed by the per-request idempotency
    /// filter this unit (fault extension).
    pub dedup_suppressed: u64,
    /// Routing shortcuts learned this unit (caching extension).
    pub cache_learned: u64,
    /// Eager cache invalidations delivered this unit.
    pub cache_invalidations: u64,
    /// Total visible work this unit
    /// ([`dlpt_core::metrics::SystemStats::total_work`]): delivered
    /// protocol messages **plus** capacity drops, requeues and
    /// undeliverable envelopes — the contention-honest message cost
    /// the figure report lines quote.
    pub work: u64,
}

impl UnitMetrics {
    /// Percentage of satisfied requests — the y-axis of Figures 4–8.
    pub fn satisfaction_pct(&self) -> f64 {
        if self.issued == 0 {
            100.0
        } else {
            100.0 * self.satisfied as f64 / self.issued as f64
        }
    }

    /// Mean logical hops per satisfied request (Figure 9).
    pub fn mean_logical_hops(&self) -> f64 {
        if self.hop_samples == 0 {
            0.0
        } else {
            self.logical_hops_sum as f64 / self.hop_samples as f64
        }
    }

    /// Mean physical hops, lexicographic mapping (Figure 9).
    pub fn mean_physical_lexico(&self) -> f64 {
        if self.hop_samples == 0 {
            0.0
        } else {
            self.physical_lexico_sum as f64 / self.hop_samples as f64
        }
    }

    /// Mean physical hops, random mapping replay (Figure 9).
    pub fn mean_physical_random(&self) -> f64 {
        if self.hop_samples == 0 {
            0.0
        } else {
            self.physical_random_sum as f64 / self.hop_samples as f64
        }
    }

    /// Percentage of registered keys still discoverable — the
    /// data-survival axis of `figR`. 100 when nothing was registered.
    pub fn survival_pct(&self) -> f64 {
        if self.keys_inserted == 0 {
            100.0
        } else {
            100.0 * self.keys_alive as f64 / self.keys_inserted as f64
        }
    }
}

/// All units of one run.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Per-unit metrics, index = time unit.
    pub units: Vec<UnitMetrics>,
    /// One JSONL [`dlpt_core::HealthSnapshot`] line per unit when
    /// [`ExperimentConfig::health_snapshots`] is set; empty otherwise.
    pub health: String,
    /// The final unit's snapshot (for Prometheus-style rendering of
    /// the end-of-horizon state); `None` unless `health_snapshots`.
    pub last_snapshot: Option<dlpt_core::HealthSnapshot>,
}

impl RunResult {
    /// Total satisfied requests over units `[skip..]` — Table 1's
    /// aggregate (growth period excluded).
    pub fn total_satisfied(&self, skip: usize) -> u64 {
        self.units.iter().skip(skip).map(|u| u.satisfied).sum()
    }

    /// Total issued requests over units `[skip..]`.
    pub fn total_issued(&self, skip: usize) -> u64 {
        self.units.iter().skip(skip).map(|u| u.issued).sum()
    }
}

/// Executes one seeded run of the experiment.
pub fn run_once(cfg: &ExperimentConfig, run_idx: usize) -> RunResult {
    let seed = cfg.base_seed.wrapping_add(run_idx as u64);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let mut corpus = cfg.corpus.build(&mut rng);
    corpus.shuffle(&mut rng);

    let mut sys = DlptSystem::builder()
        .alphabet(cfg.corpus.alphabet())
        .seed(seed)
        .peer_id_len(cfg.peer_id_len)
        .replication(cfg.replication)
        .cache_capacity(cfg.cache_capacity)
        .build();
    let capacities = CapacityModel {
        base: cfg.base_capacity,
        ratio: cfg.capacity_ratio,
    };
    let mut lb = cfg.lb.build();
    for _ in 0..cfg.peers {
        let cap = capacities.draw(&mut rng);
        let id = lb.choose_join_id(&sys, &mut rng, cap);
        sys.add_peer_with_id(id, cap)
            .expect("bootstrap identifiers are fresh");
    }

    if cfg.loss_rate > 0.0 || cfg.dup_rate > 0.0 || cfg.partition.is_some() {
        sys.set_fault_plan(FaultPlan {
            loss_rate: cfg.loss_rate,
            dup_rate: cfg.dup_rate,
            reorder_rate: 0.0,
            seed: seed ^ 0xFA17,
        });
    }

    let mut health = String::new();
    let mut monitor = cfg.health_snapshots.then(dlpt_core::HealthMonitor::new);

    let mut pop = cfg.popularity.build();
    let per_unit_growth = corpus.len().div_ceil(cfg.growth_units.max(1) as usize);
    let mut next_key = 0usize;
    let mut live_keys: Vec<Key> = Vec::with_capacity(corpus.len());

    let mut units = Vec::with_capacity(cfg.time_units as usize);
    for t in 0..cfg.time_units {
        let migrations_before = sys.stats.balance_migrations;
        let work_before = sys.stats.total_work();
        let learned_before = sys.cache_stats.learned;
        let invalidations_before = sys.cache_stats.invalidations_delivered;
        if let Some(p) = &cfg.partition {
            if t == p.from {
                sys.partition(Key::from(p.lo.as_str()), Key::from(p.hi.as_str()));
            }
            if t == p.until {
                sys.heal_partition();
            }
        }
        let faults_before = sys.fault_stats();

        // (1) Load balancing on recent history.
        lb.before_unit(&mut sys, &mut rng);

        // (2) Joins.
        let joins = cfg.churn.joins(sys.peer_count(), &mut rng);
        for _ in 0..joins {
            let cap = capacities.draw(&mut rng);
            let id = lb.choose_join_id(&sys, &mut rng, cap);
            sys.add_peer_with_id(id, cap).expect("join id is fresh");
        }

        // (3) Leaves (graceful; never the last peer).
        let leaves = cfg.churn.leaves(sys.peer_count(), &mut rng);
        for _ in 0..leaves {
            let ids = sys.peer_ids();
            if ids.len() <= 1 {
                break;
            }
            let victim = ids[rng.gen_range(0..ids.len())].clone();
            sys.leave_peer(&victim).expect("victim is live");
        }

        // (3b) Crashes (non-graceful; replication extension). A zero
        // crash rate draws no randomness, so the paper experiments
        // replay their pre-crash-step streams byte-identically.
        let crashes = cfg.churn.crashes(sys.peer_count(), &mut rng);
        let mut crashed = 0u64;
        for _ in 0..crashes {
            let ids = sys.peer_ids();
            if ids.len() <= 1 {
                break;
            }
            let victim = ids[rng.gen_range(0..ids.len())].clone();
            sys.crash_peer(&victim).expect("victim is live");
            crashed += 1;
        }
        if crashed > 0 {
            sys.repair_tree();
        }
        if cfg.anti_entropy && cfg.replication > 1 {
            sys.anti_entropy().expect("anti-entropy pass completes");
        }

        // (4) Service registrations (tree growth).
        let goal = if t + 1 >= cfg.growth_units {
            corpus.len()
        } else {
            ((t as usize + 1) * per_unit_growth).min(corpus.len())
        };
        while next_key < goal {
            let key = corpus[next_key].clone();
            sys.insert_data(key.clone()).expect("ring is non-empty");
            live_keys.push(key);
            next_key += 1;
        }

        // (5) Discovery requests.
        let aggregate: u64 = sys
            .peer_ids()
            .iter()
            .filter_map(|p| sys.shard(p))
            .map(|s| s.peer.capacity as u64)
            .sum();
        let n_requests = (cfg.load * aggregate as f64 / cfg.route_cost.max(1.0)).round() as usize;
        let random_map = cfg
            .track_mapping_hops
            .then(|| RandomMapping::new(&sys.peer_ids()));

        let hits_before = sys.cache_stats.hits;
        let stale_before = sys.cache_stats.stale_hits;
        // Depth map snapshot for the visit histogram: requests create
        // no nodes, so one map per unit serves every route of step (5).
        let depth_map = cfg.track_depth_hist.then(|| sys.depth_map());
        let mut depth_hist = DepthHistogram::default();

        let mut m = UnitMetrics::default();
        let fold = |m: &mut UnitMetrics,
                    depth_hist: &mut DepthHistogram,
                    out: dlpt_core::system::LookupOutcome| {
            m.issued += 1;
            if out.satisfied {
                m.satisfied += 1;
                m.hop_samples += 1;
                m.logical_hops_sum += out.logical_hops() as u64;
                m.physical_lexico_sum += out.physical_hops() as u64;
                if let Some(rm) = &random_map {
                    m.physical_random_sum += rm.physical_hops(&out.path) as u64;
                }
                if let Some(map) = &depth_map {
                    for label in &out.path {
                        if let Some(d) = map.get(label) {
                            depth_hist.record(*d as usize);
                        }
                    }
                }
            } else if out.dropped {
                m.dropped += 1;
            } else {
                m.not_found += 1;
            }
        };
        if !live_keys.is_empty() {
            if cfg.workers > 1 {
                // The unit's whole request batch through the sharded
                // parallel pump: popularity draws and entry-node draws
                // consume the two RNG streams in exactly the order the
                // sequential path does, so the seeded run shape is
                // unchanged — only the delivery interleaving is.
                let queries: Vec<QueryKind> = (0..n_requests)
                    .map(|_| QueryKind::Exact(live_keys[pop.pick(&live_keys, &mut rng, t)].clone()))
                    .collect();
                // An empty tree (k = 1 crashes can lose every node
                // while keys remain registered on paper) errors the
                // batch before any engine state changes — issue
                // nothing this unit, exactly like the sequential
                // path's per-request `continue`.
                if let Ok(outs) = sys.discover_batch(queries, cfg.workers) {
                    for out in outs {
                        fold(&mut m, &mut depth_hist, out);
                    }
                }
            } else {
                for _ in 0..n_requests {
                    let key = &live_keys[pop.pick(&live_keys, &mut rng, t)];
                    let Ok(out) = sys.request(QueryKind::Exact(key.clone())) else {
                        continue;
                    };
                    fold(&mut m, &mut depth_hist, out);
                }
            }
        }
        m.cache_hits = sys.cache_stats.hits - hits_before;
        m.cache_stale = sys.cache_stats.stale_hits - stale_before;
        m.depth_visits = depth_hist.counts;
        m.peers = sys.peer_count();
        m.nodes = sys.node_count();
        m.migrations = sys.stats.balance_migrations - migrations_before;
        m.crashes = crashed;
        m.keys_inserted = next_key as u64;
        // One key registers on exactly one node, so the live count is
        // the total of the data sets (follower copies are kept apart).
        m.keys_alive = sys
            .peer_ids()
            .iter()
            .filter_map(|p| sys.shard(p))
            .flat_map(|s| s.nodes.values())
            .map(|n| n.data.len() as u64)
            .sum();
        let faults_after = sys.fault_stats();
        m.frames_lost = faults_after.lost - faults_before.lost;
        m.frames_duplicated = faults_after.duplicated - faults_before.duplicated;
        m.partition_dropped = faults_after.partition_dropped - faults_before.partition_dropped;
        m.retries = faults_after.retries - faults_before.retries;
        m.requests_failed = faults_after.requests_failed - faults_before.requests_failed;
        m.dedup_suppressed =
            faults_after.duplicates_suppressed - faults_before.duplicates_suppressed;
        m.cache_learned = sys.cache_stats.learned - learned_before;
        m.cache_invalidations = sys.cache_stats.invalidations_delivered - invalidations_before;
        m.work = sys.stats.total_work() - work_before;
        // Snapshot before `end_time_unit` rolls the per-node load
        // counters: "messages handled this unit" is still readable
        // here, and the collection itself is a pure read.
        if let Some(mon) = monitor.as_mut() {
            let violations = sys.audit();
            sys.collect_health(t as u64, &sys.fault_stats(), mon);
            mon.snap.audit_violations = violations.len() as u64;
            mon.snap
                .write_jsonl_line(&cfg.name, run_idx as u64, &mut health);
        }
        sys.end_time_unit();
        units.push(m);
    }
    RunResult {
        units,
        health,
        last_snapshot: monitor.map(|mon| mon.snap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CorpusKind, LbKind, PopKind};
    use dlpt_workloads::churn::ChurnModel;

    fn tiny(lb: LbKind) -> ExperimentConfig {
        ExperimentConfig {
            name: "tiny".into(),
            peers: 12,
            corpus: CorpusKind::GridSubset(60),
            time_units: 8,
            growth_units: 3,
            load: 0.10,
            route_cost: 1.0,
            base_capacity: 10,
            capacity_ratio: 4,
            churn: ChurnModel::stable(),
            lb,
            popularity: PopKind::Uniform,
            runs: 2,
            base_seed: 99,
            peer_id_len: 8,
            track_mapping_hops: true,
            replication: 1,
            anti_entropy: false,
            cache_capacity: 0,
            track_depth_hist: false,
            workers: 1,
            loss_rate: 0.0,
            dup_rate: 0.0,
            partition: None,
            health_snapshots: false,
        }
    }

    #[test]
    fn multi_worker_discovery_is_deterministic_and_issues_identically() {
        let mut cfg = tiny(LbKind::None);
        cfg.workers = 4;
        let a = run_once(&cfg, 0);
        let b = run_once(&cfg, 0);
        assert_eq!(a.units, b.units, "per-(seed, workers) determinism");
        // The sequential run consumes the same RNG streams, so the
        // request counts (and everything upstream of delivery
        // interleaving) match unit for unit.
        let seq = run_once(&tiny(LbKind::None), 0);
        assert_eq!(a.units.len(), seq.units.len());
        for (p, s) in a.units.iter().zip(&seq.units) {
            assert_eq!(p.issued, s.issued);
            assert_eq!(p.peers, s.peers);
            assert_eq!(p.nodes, s.nodes);
            assert_eq!(p.keys_inserted, s.keys_inserted);
        }
    }

    #[test]
    fn run_produces_full_series() {
        let res = run_once(&tiny(LbKind::None), 0);
        assert_eq!(res.units.len(), 8);
        for (t, u) in res.units.iter().enumerate() {
            assert!(u.issued > 0, "unit {t} issued nothing");
            assert!(u.satisfied + u.dropped + u.not_found == u.issued);
            assert!(u.peers >= 11);
        }
        // Tree fully grown after growth_units.
        assert!(res.units[3].nodes >= 60);
        assert_eq!(res.units.last().unwrap().nodes, res.units[3].nodes);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_once(&tiny(LbKind::Mlt { fraction: 1.0 }), 1);
        let b = run_once(&tiny(LbKind::Mlt { fraction: 1.0 }), 1);
        assert_eq!(a.units, b.units);
        let c = run_once(&tiny(LbKind::Mlt { fraction: 1.0 }), 2);
        assert_ne!(a.units, c.units, "different seeds differ");
    }

    #[test]
    fn mlt_runs_migrate_nodes() {
        let res = run_once(&tiny(LbKind::Mlt { fraction: 1.0 }), 0);
        let total: u64 = res.units.iter().map(|u| u.migrations).sum();
        assert!(total > 0, "MLT should move nodes under load");
    }

    #[test]
    fn kc_runs_complete_under_churn() {
        let mut cfg = tiny(LbKind::Kc { k: 4 });
        cfg.churn = ChurnModel::dynamic();
        let res = run_once(&cfg, 0);
        assert_eq!(res.units.len(), 8);
        assert!(res.total_issued(0) > 0);
    }

    #[test]
    fn hotspot_workload_runs() {
        let mut cfg = tiny(LbKind::Mlt { fraction: 1.0 });
        cfg.popularity = PopKind::Figure8 { hot_fraction: 0.9 };
        cfg.time_units = 12;
        let res = run_once(&cfg, 0);
        assert_eq!(res.units.len(), 12);
    }

    #[test]
    fn cached_runs_hit_and_cut_hops_without_changing_results() {
        let mut base = tiny(LbKind::None);
        base.popularity = PopKind::Zipf(1.2);
        base.time_units = 12;
        let mut cached = base.clone();
        cached.cache_capacity = 128;
        let off = run_once(&base, 0);
        let on = run_once(&cached, 0);
        // Identical seeds issue identical request streams.
        for (a, b) in off.units.iter().zip(&on.units) {
            assert_eq!(a.issued, b.issued);
        }
        let hits: u64 = on.units.iter().map(|u| u.cache_hits).sum();
        assert!(hits > 0, "skewed workload must hit the cache");
        assert_eq!(
            off.units.iter().map(|u| u.cache_hits).sum::<u64>(),
            0,
            "cache-off run counts nothing"
        );
        let mean = |r: &RunResult| {
            let h: u64 = r.units.iter().map(|u| u.logical_hops_sum).sum();
            let n: u64 = r.units.iter().map(|u| u.hop_samples).sum();
            h as f64 / n.max(1) as f64
        };
        assert!(
            mean(&on) < mean(&off),
            "cached routes must lower mean hops: {} vs {}",
            mean(&on),
            mean(&off)
        );
        // Satisfaction can only move up: hits free capacity.
        let sat = |r: &RunResult| r.units.iter().map(|u| u.satisfied).sum::<u64>();
        assert!(sat(&on) >= sat(&off));
    }

    #[test]
    fn depth_histogram_tracks_visits() {
        let mut cfg = tiny(LbKind::None);
        cfg.track_depth_hist = true;
        cfg.time_units = 6;
        let res = run_once(&cfg, 0);
        let total: u64 = res.units.iter().flat_map(|u| u.depth_visits.iter()).sum();
        let visits: u64 = res
            .units
            .iter()
            .map(|u| u.logical_hops_sum + u.hop_samples)
            .sum();
        assert_eq!(
            total, visits,
            "every visit of a satisfied route lands in one depth bucket"
        );
        // Without the flag the histogram stays empty.
        let mut cfg2 = tiny(LbKind::None);
        cfg2.time_units = 6;
        let res2 = run_once(&cfg2, 0);
        assert!(res2.units.iter().all(|u| u.depth_visits.is_empty()));
    }

    #[test]
    fn hop_tracking_fills_random_mapping() {
        let res = run_once(&tiny(LbKind::None), 3);
        let any_random: u64 = res.units.iter().map(|u| u.physical_random_sum).sum();
        let any_lex: u64 = res.units.iter().map(|u| u.physical_lexico_sum).sum();
        let logical: u64 = res.units.iter().map(|u| u.logical_hops_sum).sum();
        assert!(any_random > 0);
        assert!(any_lex <= logical, "lexico physical ≤ logical");
    }

    #[test]
    fn health_snapshots_are_deterministic_and_inert_when_off() {
        let off = run_once(&tiny(LbKind::None), 0);
        assert!(off.health.is_empty(), "off-by-default collects nothing");

        let mut cfg = tiny(LbKind::None);
        cfg.health_snapshots = true;
        let a = run_once(&cfg, 0);
        let b = run_once(&cfg, 0);
        assert_eq!(a.health, b.health, "per-seed health determinism");
        assert_eq!(a.health.lines().count(), 8, "one JSONL line per unit");
        assert_eq!(
            a.units, off.units,
            "collection is a pure read: metrics are byte-identical"
        );
        for line in a.health.lines() {
            assert!(line.starts_with("{\"cfg\":\"tiny\",\"run\":0,"));
            assert!(
                line.contains("\"violations\":0"),
                "healthy run audits clean"
            );
            assert!(line.contains("\"bytes_total\":"));
        }

        // Same contract under the parallel pump.
        let mut par = cfg.clone();
        par.workers = 4;
        let pa = run_once(&par, 0);
        let pb = run_once(&par, 0);
        assert_eq!(pa.health, pb.health, "workers > 1 stays deterministic");
        assert_eq!(pa.health.lines().count(), 8);
    }

    #[test]
    fn totals_skip_growth() {
        let res = run_once(&tiny(LbKind::None), 0);
        assert!(res.total_satisfied(3) <= res.total_satisfied(0));
        assert!(res.total_issued(3) > 0);
    }
}

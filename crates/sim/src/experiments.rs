//! One constructor per figure/table of the paper's evaluation.
//!
//! Figures 4–8 are built from [`ExperimentConfig`]s (three curves:
//! MLT, KC, No LB); Figure 9 replays routes under both mappings inside
//! a single MLT experiment; Table 1 aggregates steady-state gains over
//! a load sweep; Table 2 measures the implemented PHT and P-Grid
//! comparators against the DLPT on an identical corpus.

use crate::config::{ExperimentConfig, LbKind, PartitionSpec, PopKind};
use crate::runner::{gain_pct, run_experiment, AveragedSeries};
use dlpt_baselines::pgrid::PGrid;
use dlpt_baselines::pht::{PhtConfig, PrefixHashTree};
use dlpt_core::key::Key;
use dlpt_core::messages::QueryKind;
use dlpt_core::system::DlptSystem;
use dlpt_workloads::churn::ChurnModel;
use dlpt_workloads::corpus::Corpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three load-balancing curves every satisfaction figure compares.
pub fn lb_variants() -> Vec<LbKind> {
    vec![
        LbKind::Mlt { fraction: 1.0 },
        LbKind::Kc { k: 4 },
        LbKind::None,
    ]
}

/// Base config for the satisfaction figures (4–7): 100 peers, grid
/// corpus (~1000 nodes), 50 units with the tree growing over the
/// first 10, 30 runs.
fn satisfaction_config(name: &str, lb: LbKind, load: f64, churn: ChurnModel) -> ExperimentConfig {
    ExperimentConfig {
        name: format!("{name}-{}", lb.label()),
        load,
        churn,
        lb,
        ..ExperimentConfig::default()
    }
}

/// Figure 4: stable network, low load.
pub fn fig4_configs() -> Vec<ExperimentConfig> {
    lb_variants()
        .into_iter()
        .map(|lb| satisfaction_config("fig4", lb, 0.10, ChurnModel::stable()))
        .collect()
}

/// Figure 5: stable network, high load ("overload": a very high
/// number of requests to stress the system).
pub fn fig5_configs() -> Vec<ExperimentConfig> {
    lb_variants()
        .into_iter()
        .map(|lb| satisfaction_config("fig5", lb, 0.80, ChurnModel::stable()))
        .collect()
}

/// Figure 6: dynamic network (10% of peers replaced per unit), low
/// load.
pub fn fig6_configs() -> Vec<ExperimentConfig> {
    lb_variants()
        .into_iter()
        .map(|lb| satisfaction_config("fig6", lb, 0.10, ChurnModel::dynamic()))
        .collect()
}

/// Figure 7: dynamic network, high load.
pub fn fig7_configs() -> Vec<ExperimentConfig> {
    lb_variants()
        .into_iter()
        .map(|lb| satisfaction_config("fig7", lb, 0.80, ChurnModel::dynamic()))
        .collect()
}

/// Figure 8: dynamic network with hot spots — 160 units, 50 runs;
/// uniform traffic, then an "S3L" burst at unit 40, a ScaLAPACK "P"
/// burst at 80, uniform again from 120.
pub fn fig8_configs() -> Vec<ExperimentConfig> {
    lb_variants()
        .into_iter()
        .map(|lb| {
            let mut cfg = satisfaction_config("fig8", lb, 0.16, ChurnModel::dynamic());
            cfg.time_units = 160;
            cfg.runs = 50;
            cfg.popularity = PopKind::Figure8 { hot_fraction: 0.85 };
            cfg
        })
        .collect()
}

/// Figure 9: communication gain of the lexicographic mapping — one
/// MLT experiment over the Figure 8 timeline, 100 runs, replaying
/// every satisfied route under the hash (random) mapping as well.
pub fn fig9_config() -> ExperimentConfig {
    let mut cfg = satisfaction_config(
        "fig9",
        LbKind::Mlt { fraction: 1.0 },
        0.16,
        ChurnModel::dynamic(),
    );
    cfg.time_units = 160;
    cfg.runs = 100;
    cfg.popularity = PopKind::Figure8 { hot_fraction: 0.85 };
    cfg.track_mapping_hops = true;
    cfg
}

/// One replication curve of Figure R (replication extension): a
/// replication factor plus whether the self-healing anti-entropy pass
/// runs each unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FigRVariant {
    /// Curve label used in CSV headers and charts.
    pub label: &'static str,
    /// Replication factor `k`.
    pub replication: usize,
    /// Anti-entropy on/off.
    pub anti_entropy: bool,
}

/// The four curves Figure R compares: the paper's unreplicated system,
/// self-healing replication at k ∈ {2, 3}, and the k = 2 ablation with
/// the anti-entropy loop disabled (static redundancy decays as crashed
/// followers are never re-cloned).
pub fn figr_variants() -> Vec<FigRVariant> {
    vec![
        FigRVariant {
            label: "k1",
            replication: 1,
            anti_entropy: false,
        },
        FigRVariant {
            label: "k2",
            replication: 2,
            anti_entropy: true,
        },
        FigRVariant {
            label: "k3",
            replication: 3,
            anti_entropy: true,
        },
        FigRVariant {
            label: "k2-noAE",
            replication: 2,
            anti_entropy: false,
        },
    ]
}

/// The crash-rate sweep of Figure R (fraction of peers crashing per
/// unit). Over the 50-unit horizon these cumulate to roughly 10%, 30%,
/// 60% and 100% of the population crashing (joins keep the count
/// level).
pub const FIGR_CRASH_RATES: [f64; 4] = [0.002, 0.006, 0.012, 0.02];

/// One Figure R experiment: the low-load stable setup of Figure 4 plus
/// non-graceful crashes at `crash_rate`, run at the variant's
/// replication setting. Low load keeps capacity drops out of the way,
/// so the satisfaction and survival curves isolate crash damage.
pub fn figr_config(crash_rate: f64, v: FigRVariant) -> ExperimentConfig {
    ExperimentConfig {
        name: format!("figR-{}-r{crash_rate}", v.label),
        load: 0.10,
        churn: ChurnModel::stable().with_crash_rate(crash_rate),
        lb: LbKind::None,
        replication: v.replication,
        anti_entropy: v.anti_entropy,
        ..ExperimentConfig::default()
    }
}

/// One workload column of Figure C (caching extension): how requests
/// pick targets during the sweep.
#[derive(Debug, Clone)]
pub struct FigCWorkload {
    /// Label used in CSV rows and charts.
    pub label: &'static str,
    /// The popularity model.
    pub pop: PopKind,
}

/// The four figC workloads: the paper's uniform traffic (the
/// control — caching must not hurt it), two Zipf skews, and a
/// sustained hot-prefix phase (the Figure 8 burst shape, held for the
/// rest of the horizon).
pub fn figc_workloads() -> Vec<FigCWorkload> {
    vec![
        FigCWorkload {
            label: "uniform",
            pop: PopKind::Uniform,
        },
        FigCWorkload {
            label: "zipf0.8",
            pop: PopKind::Zipf(0.8),
        },
        FigCWorkload {
            label: "zipf1.2",
            pop: PopKind::Zipf(1.2),
        },
        FigCWorkload {
            label: "hotprefix",
            pop: PopKind::HotPrefix {
                prefix: "S3L".into(),
                fraction: 0.9,
                from: 20,
            },
        },
    ]
}

/// The per-peer cache capacities figC sweeps (0 = the uncached
/// baseline).
pub const FIGC_CACHE_SIZES: [usize; 3] = [0, 64, 512];

/// One figC experiment: the stable network under moderate-high load
/// (enough for the upper-tree hotspot to cost satisfaction), no load
/// balancing (so the cache's effect is isolated), the given popularity
/// model, and the given per-peer shortcut-cache capacity. The depth
/// histogram is always on — it is figC's flattening evidence.
pub fn figc_config(w: &FigCWorkload, cache: usize) -> ExperimentConfig {
    ExperimentConfig {
        name: format!("figC-{}-c{cache}", w.label),
        load: 0.40,
        churn: ChurnModel::stable(),
        lb: LbKind::None,
        popularity: w.pop.clone(),
        cache_capacity: cache,
        track_depth_hist: true,
        ..ExperimentConfig::default()
    }
}

/// One resilience curve of Figure A (fault extension): a replication
/// setting run under lossy transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FigAVariant {
    /// Curve label used in CSV headers and charts.
    pub label: &'static str,
    /// Replication factor `k`.
    pub replication: usize,
    /// Anti-entropy on/off.
    pub anti_entropy: bool,
}

/// The two curves Figure A compares: the paper's unreplicated system
/// and the self-healing k = 2 + anti-entropy configuration, both under
/// the same message-fault schedule.
pub fn figa_variants() -> Vec<FigAVariant> {
    vec![
        FigAVariant {
            label: "k1",
            replication: 1,
            anti_entropy: false,
        },
        FigAVariant {
            label: "k2",
            replication: 2,
            anti_entropy: true,
        },
    ]
}

/// The message-loss sweep of Figure A (probability that a discovery or
/// response message is dropped in transit). 0 is the fault-free
/// control.
pub const FIGA_LOSS_RATES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// One Figure A experiment: the low-load stable setup of Figure 4 plus
/// a light crash rate (so key survival has something to defend), 5%
/// message duplication, the given loss rate, and a partition severing
/// the `["D", "K")` key range over units 25–34 before healing. Low
/// load keeps capacity drops out of the way, so satisfaction isolates
/// transport damage and the retry machinery's recovery.
pub fn figa_config(loss_rate: f64, v: FigAVariant) -> ExperimentConfig {
    ExperimentConfig {
        name: format!("figA-{}-l{loss_rate}", v.label),
        load: 0.10,
        churn: ChurnModel::stable().with_crash_rate(0.006),
        lb: LbKind::None,
        replication: v.replication,
        anti_entropy: v.anti_entropy,
        loss_rate,
        dup_rate: 0.05,
        partition: Some(PartitionSpec {
            lo: "D".into(),
            hi: "K".into(),
            from: 25,
            until: 35,
        }),
        ..ExperimentConfig::default()
    }
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Load as a fraction of the aggregated capacity.
    pub load: f64,
    /// MLT gain over No-LB, stable network (percent).
    pub stable_mlt: f64,
    /// KC gain over No-LB, stable network.
    pub stable_kc: f64,
    /// MLT gain over No-LB, dynamic network.
    pub dynamic_mlt: f64,
    /// KC gain over No-LB, dynamic network.
    pub dynamic_kc: f64,
}

/// The paper's Table 1 load column.
pub const TABLE1_LOADS: [f64; 6] = [0.05, 0.10, 0.16, 0.24, 0.40, 0.80];

/// Computes one Table 1 row (six experiments: 3 strategies × 2
/// networks). `shrink` scales runs/peers down for quick passes
/// (1 = full scale).
pub fn table1_row(load: f64, shrink: usize) -> Table1Row {
    let mut gains = [0.0f64; 4];
    for (i, churn) in [ChurnModel::stable(), ChurnModel::dynamic()]
        .into_iter()
        .enumerate()
    {
        let series: Vec<AveragedSeries> = lb_variants()
            .into_iter()
            .map(|lb| {
                let mut cfg = satisfaction_config("table1", lb, load, churn);
                if shrink > 1 {
                    cfg = cfg.scaled_down(shrink);
                    // Keep the timeline: gains need a steady state.
                    cfg.time_units = 30;
                    cfg.growth_units = 10;
                }
                run_experiment(&cfg)
            })
            .collect();
        // Order per lb_variants(): MLT, KC, None.
        gains[2 * i] = gain_pct(&series[0], &series[2]);
        gains[2 * i + 1] = gain_pct(&series[1], &series[2]);
    }
    Table1Row {
        load,
        stable_mlt: gains[0],
        stable_kc: gains[1],
        dynamic_mlt: gains[2],
        dynamic_kc: gains[3],
    }
}

/// One row of Table 2 — measured, with the paper's asymptotic claims
/// alongside.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// System name.
    pub system: &'static str,
    /// Mean overlay routing hops per exact lookup (physical messages).
    pub routing_hops: f64,
    /// Mean logical tree levels visited per lookup (where distinct).
    pub logical_levels: f64,
    /// Mean local state per peer (routing + tree references).
    pub local_state: f64,
    /// The paper's tree-routing complexity claim.
    pub theory_routing: &'static str,
    /// The paper's local-state complexity claim.
    pub theory_state: &'static str,
}

/// Measures Table 2 on an identical corpus: `peers` peers, a
/// `keys`-key spread of the grid corpus, `lookups` random exact
/// lookups per system.
pub fn table2_measure(peers: usize, keys: usize, lookups: usize, seed: u64) -> Vec<Table2Row> {
    let corpus: Vec<Key> = Corpus::grid().take_spread(keys);
    let mut rng = StdRng::seed_from_u64(seed);

    // --- DLPT ---------------------------------------------------------
    let mut sys = DlptSystem::builder()
        .seed(seed)
        .peer_id_len(12)
        .bootstrap_peers(peers)
        .build();
    for k in &corpus {
        sys.insert_data(k.clone()).expect("ring non-empty");
    }
    let mut dlpt_logical = 0.0;
    let mut dlpt_physical = 0.0;
    for _ in 0..lookups {
        let key = &corpus[rng.gen_range(0..corpus.len())];
        let out = sys
            .request(QueryKind::Exact(key.clone()))
            .expect("tree non-empty");
        dlpt_logical += out.logical_hops() as f64;
        dlpt_physical += out.physical_hops() as f64;
        sys.end_time_unit();
    }
    let dlpt_state: f64 = {
        let ids = sys.peer_ids();
        let total: usize = ids
            .iter()
            .filter_map(|p| sys.shard(p))
            .map(|s| {
                2 + s
                    .nodes
                    .values()
                    .map(|n| n.children.len() + usize::from(n.father.is_some()))
                    .sum::<usize>()
            })
            .sum();
        total as f64 / ids.len() as f64
    };

    // --- PHT ----------------------------------------------------------
    let mut pht = PrefixHashTree::new(
        PhtConfig {
            leaf_capacity: 4,
            depth_bytes: 24,
            succ_list_len: 4,
        },
        peers,
        seed ^ 0x9E37,
    );
    for k in &corpus {
        pht.insert(k);
    }
    let before = (pht.stats.dht_hops, pht.stats.vertex_accesses);
    let mut pht_levels = 0.0;
    for _ in 0..lookups {
        let key = &corpus[rng.gen_range(0..corpus.len())];
        let (found, levels) = pht.lookup(key);
        debug_assert!(found);
        pht_levels += levels as f64;
    }
    let pht_hops = (pht.stats.dht_hops - before.0) as f64 / lookups as f64;
    let _accesses = (pht.stats.vertex_accesses - before.1) as f64 / lookups as f64;
    let pht_state: f64 = {
        // Chord routing state per node: distinct fingers + successor
        // list + stored trie vertices.
        let ids = pht.dht.ids();
        let total: usize = ids
            .iter()
            .filter_map(|id| pht.dht.node(*id))
            .map(|n| {
                let mut fingers: Vec<u64> = n.fingers.clone();
                fingers.sort_unstable();
                fingers.dedup();
                fingers.len() + n.succ_list.len() + n.store.len()
            })
            .sum();
        total as f64 / ids.len() as f64
    };

    // --- P-Grid -------------------------------------------------------
    let mut pgrid = PGrid::build(&corpus, peers, 2, 24, seed ^ 0x51D);
    let mut pgrid_hops = 0.0;
    for _ in 0..lookups {
        let key = &corpus[rng.gen_range(0..corpus.len())];
        let (found, hops) = pgrid.lookup(key);
        debug_assert!(found);
        pgrid_hops += hops as f64;
    }

    vec![
        Table2Row {
            system: "P-Grid",
            routing_hops: pgrid_hops / lookups as f64,
            logical_levels: pgrid_hops / lookups as f64,
            local_state: pgrid.mean_state(),
            theory_routing: "O(log |Pi|)",
            theory_state: "O(log |Pi|)",
        },
        Table2Row {
            system: "PHT",
            routing_hops: pht_hops,
            logical_levels: pht_levels / lookups as f64,
            local_state: pht_state,
            theory_routing: "O(D log P)",
            theory_state: "|N|/|P| * |A|",
        },
        Table2Row {
            system: "DLPT",
            routing_hops: dlpt_physical / lookups as f64,
            logical_levels: dlpt_logical / lookups as f64,
            local_state: dlpt_state,
            theory_routing: "O(D)",
            theory_state: "|N|/|P| * |A|",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_configs_have_three_curves() {
        for figs in [
            fig4_configs(),
            fig5_configs(),
            fig6_configs(),
            fig7_configs(),
            fig8_configs(),
        ] {
            assert_eq!(figs.len(), 3);
            let labels: Vec<&str> = figs.iter().map(|c| c.lb.label()).collect();
            assert_eq!(labels, vec!["MLT", "KC", "NoLB"]);
        }
    }

    #[test]
    fn figure_parameters_match_paper() {
        let f4 = &fig4_configs()[0];
        assert_eq!(f4.time_units, 50);
        assert_eq!(f4.runs, 30);
        assert_eq!(f4.peers, 100);
        let f8 = &fig8_configs()[0];
        assert_eq!(f8.time_units, 160);
        assert_eq!(f8.runs, 50);
        assert!(matches!(f8.popularity, PopKind::Figure8 { .. }));
        let f9 = fig9_config();
        assert_eq!(f9.runs, 100);
        assert!(f9.track_mapping_hops);
        assert_eq!(TABLE1_LOADS.len(), 6);
    }

    #[test]
    fn figr_variants_cover_the_ablation_grid() {
        let vs = figr_variants();
        assert_eq!(vs.len(), 4);
        assert!(vs.iter().any(|v| v.replication == 1));
        assert!(vs.iter().any(|v| v.replication == 3 && v.anti_entropy));
        assert!(vs.iter().any(|v| v.replication == 2 && !v.anti_entropy));
        let cfg = figr_config(0.006, vs[1]);
        assert_eq!(cfg.replication, 2);
        assert!(cfg.anti_entropy);
        assert!((cfg.churn.crash_rate - 0.006).abs() < 1e-12);
        assert_eq!(cfg.churn.join_fraction, 0.02, "stable base churn");
        let baseline = figr_config(0.0, vs[0]);
        assert_eq!(baseline.replication, 1);
        assert_eq!(baseline.churn.crash_rate, 0.0);
    }

    #[test]
    fn figr_zero_loss_at_k2_and_loss_at_k1_on_a_seeded_run() {
        // The acceptance scenario at test scale: ~30% of peers crash
        // over the horizon. k=2 + anti-entropy must end with every key
        // alive; the unreplicated baseline must demonstrably lose data.
        use crate::run::run_once;
        let scale = |v: FigRVariant| {
            let mut cfg = figr_config(0.012, v).scaled_down(4);
            cfg.time_units = 25;
            cfg.growth_units = 5;
            cfg.base_seed = 0xF16;
            cfg
        };
        let vs = figr_variants();
        let k2 = run_once(&scale(vs[1]), 0);
        let last = k2.units.last().unwrap();
        assert_eq!(
            last.keys_alive, last.keys_inserted,
            "k=2 + AE must lose zero keys"
        );
        assert!(
            k2.units.iter().map(|u| u.crashes).sum::<u64>() > 0,
            "the run must actually crash peers"
        );
        let k1 = run_once(&scale(vs[0]), 0);
        let last = k1.units.last().unwrap();
        assert!(
            last.keys_alive < last.keys_inserted,
            "k=1 must lose keys ({} of {} alive)",
            last.keys_alive,
            last.keys_inserted
        );
    }

    #[test]
    fn figa_grid_covers_the_fault_sweep() {
        let vs = figa_variants();
        assert_eq!(vs.len(), 2);
        assert!(vs.iter().any(|v| v.replication == 1 && !v.anti_entropy));
        assert!(vs.iter().any(|v| v.replication == 2 && v.anti_entropy));
        assert_eq!(FIGA_LOSS_RATES[0], 0.0, "first sweep point is fault-free");
        let cfg = figa_config(0.10, vs[1]);
        assert_eq!(cfg.replication, 2);
        assert!((cfg.loss_rate - 0.10).abs() < 1e-12);
        assert!((cfg.dup_rate - 0.05).abs() < 1e-12);
        let p = cfg.partition.expect("figA schedules a partition");
        assert!(p.from < p.until && p.until <= cfg.time_units);
        let control = figa_config(0.0, vs[0]);
        assert_eq!(control.base_seed, cfg.base_seed, "paired seeds");
    }

    #[test]
    fn figa_requests_terminate_and_k2_ae_survives_a_healed_partition() {
        // The acceptance scenario at test scale: 10% loss + 5% dup +
        // a healed partition. Every request must terminate (satisfied,
        // dropped or explicitly failed — never hung), and k=2 + AE must
        // end with ≥ 99% of keys discoverable after the cut heals.
        use crate::run::run_once;
        let scale = |v: FigAVariant| {
            let mut cfg = figa_config(0.10, v).scaled_down(8);
            cfg.time_units = 30;
            cfg.growth_units = 10;
            cfg.partition = Some(PartitionSpec {
                lo: "D".into(),
                hi: "K".into(),
                from: 15,
                until: 20,
            });
            cfg.base_seed = 0xFA17;
            cfg
        };
        let vs = figa_variants();
        let k2 = run_once(&scale(vs[1]), 0);
        for (t, u) in k2.units.iter().enumerate() {
            assert_eq!(
                u.satisfied + u.dropped + u.not_found,
                u.issued,
                "unit {t}: every request must terminate"
            );
        }
        let last = k2.units.last().unwrap();
        assert!(
            last.survival_pct() >= 99.0,
            "k=2 + AE survival after heal: {} ({} of {})",
            last.survival_pct(),
            last.keys_alive,
            last.keys_inserted
        );
        let lost: u64 = k2.units.iter().map(|u| u.frames_lost).sum();
        let severed: u64 = k2.units.iter().map(|u| u.partition_dropped).sum();
        let retries: u64 = k2.units.iter().map(|u| u.retries).sum();
        assert!(lost > 0, "the run must actually lose frames");
        assert!(severed > 0, "the partition must actually sever frames");
        assert!(retries > 0, "loss must trigger the retry machinery");
        // The partition window visibly dents satisfaction relative to
        // the healed tail — and the tail recovers.
        let tail = &k2.units[25..];
        assert!(
            tail.iter().all(|u| u.partition_dropped == 0),
            "no severed frames after the heal"
        );
    }

    #[test]
    fn figc_grid_covers_workloads_and_capacities() {
        let ws = figc_workloads();
        assert_eq!(ws.len(), 4);
        assert!(ws.iter().any(|w| matches!(w.pop, PopKind::Uniform)));
        assert!(ws
            .iter()
            .any(|w| matches!(w.pop, PopKind::Zipf(s) if (s - 1.2).abs() < 1e-9)));
        assert!(ws
            .iter()
            .any(|w| matches!(&w.pop, PopKind::HotPrefix { prefix, .. } if prefix == "S3L")));
        assert_eq!(FIGC_CACHE_SIZES[0], 0, "first sweep point is the baseline");
        let cfg = figc_config(&ws[2], 512);
        assert_eq!(cfg.cache_capacity, 512);
        assert!(cfg.track_depth_hist);
        assert_eq!(cfg.lb, LbKind::None, "cache effect isolated from LB");
        let base = figc_config(&ws[2], 0);
        assert_eq!(base.base_seed, cfg.base_seed, "paired seeds across sweep");
    }

    #[test]
    fn figc_cache_cuts_hops_on_a_seeded_zipf_run() {
        // The acceptance scenario at test scale: at Zipf s = 1.2 a
        // non-trivial cache must cut mean hops by ≥ 30% and must not
        // hurt satisfaction on the uniform workload.
        use crate::runner::run_experiment;
        let scale = |w: &FigCWorkload, cache: usize| {
            let mut cfg = figc_config(w, cache).scaled_down(8);
            cfg.time_units = 30;
            cfg.growth_units = 10;
            cfg.runs = 3;
            cfg
        };
        let ws = figc_workloads();
        let zipf = &ws[2];
        let off = run_experiment(&scale(zipf, 0));
        let on = run_experiment(&scale(zipf, 512));
        assert!(
            on.steady_cache_hit_pct() > 20.0,
            "{:?}",
            on.steady_cache_hits
        );
        assert!(
            on.steady_mean_hops() <= 0.7 * off.steady_mean_hops(),
            "cached mean hops {} vs uncached {}",
            on.steady_mean_hops(),
            off.steady_mean_hops()
        );
        let uni = &ws[0];
        let uni_off = run_experiment(&scale(uni, 0));
        let uni_on = run_experiment(&scale(uni, 512));
        assert!(
            uni_on.steady_satisfaction() >= uni_off.steady_satisfaction() - 0.5,
            "uniform satisfaction must not degrade: {} vs {}",
            uni_on.steady_satisfaction(),
            uni_off.steady_satisfaction()
        );
    }

    #[test]
    fn table2_shapes_hold_on_small_instance() {
        let rows = table2_measure(24, 120, 60, 42);
        assert_eq!(rows.len(), 3);
        let by_name = |n: &str| rows.iter().find(|r| r.system == n).unwrap().clone();
        let (pgrid, pht, dlpt) = (by_name("P-Grid"), by_name("PHT"), by_name("DLPT"));
        // The headline claim: DLPT's physical routing beats PHT's
        // DHT-amplified descent.
        assert!(
            dlpt.routing_hops < pht.routing_hops,
            "DLPT {} vs PHT {}",
            dlpt.routing_hops,
            pht.routing_hops
        );
        // P-Grid routes in O(log Pi) — single digits here.
        assert!(pgrid.routing_hops < 15.0);
        // Everyone keeps some state.
        assert!(dlpt.local_state > 0.0);
        assert!(pht.local_state > 0.0);
        assert!(pgrid.local_state > 0.0);
    }

    #[test]
    #[ignore = "multi-minute full-scale sweep; run explicitly"]
    fn table1_row_full_scale() {
        let row = table1_row(0.10, 1);
        assert!(row.stable_mlt > 0.0);
    }

    #[test]
    fn table1_row_scaled_down_is_finite() {
        let row = table1_row(0.16, 8);
        for g in [
            row.stable_mlt,
            row.stable_kc,
            row.dynamic_mlt,
            row.dynamic_kc,
        ] {
            assert!(g.is_finite());
        }
    }
}

//! Multi-run execution and averaging.
//!
//! "Each simulation were repeated 30, 50 or 100 times, to have some
//! relevant results." Runs are independent (seed = base + index), so
//! they distribute over a thread pool without affecting results.

use crate::config::ExperimentConfig;
use crate::run::{run_once, RunResult};

/// Per-unit series averaged over all runs of one experiment.
#[derive(Debug, Clone, Default)]
pub struct AveragedSeries {
    /// Experiment name (copied from the config).
    pub name: String,
    /// Time axis (unit indices).
    pub time: Vec<u32>,
    /// Mean satisfaction percentage per unit (Figures 4–8).
    pub satisfaction: Vec<f64>,
    /// Mean logical hops per satisfied request (Figure 9).
    pub logical_hops: Vec<f64>,
    /// Mean physical hops, lexicographic mapping (Figure 9).
    pub physical_lexico: Vec<f64>,
    /// Mean physical hops, random-mapping replay (Figure 9).
    pub physical_random: Vec<f64>,
    /// Mean live peers per unit.
    pub peers: Vec<f64>,
    /// Mean tree nodes per unit.
    pub nodes: Vec<f64>,
    /// Mean balancer migrations per unit.
    pub migrations: Vec<f64>,
    /// Mean data-survival percentage per unit (`figR`).
    pub survival: Vec<f64>,
    /// Total satisfied requests per run (averaged), growth excluded —
    /// the quantity Table 1's gains compare.
    pub steady_satisfied: f64,
    /// Total issued requests per run (averaged), growth excluded.
    pub steady_issued: f64,
    /// Σ logical hops over steady-state satisfied requests (averaged
    /// per run) — numerator of `figC`'s mean-hop column.
    pub steady_hops_sum: f64,
    /// Steady-state satisfied requests contributing hops (averaged per
    /// run) — its denominator.
    pub steady_hop_samples: f64,
    /// Steady-state cache hits per run (averaged; caching extension).
    pub steady_cache_hits: f64,
    /// Steady-state stale cache hits per run (averaged).
    pub steady_cache_stale: f64,
    /// Steady-state per-depth visits of satisfied routes (summed over
    /// units, averaged per run); empty unless `track_depth_hist`.
    pub depth_visits: Vec<f64>,
    /// Steady-state faultable messages lost per run (averaged; fault
    /// extension, `figA`).
    pub steady_frames_lost: f64,
    /// Steady-state faultable messages delivered twice per run
    /// (averaged).
    pub steady_frames_duplicated: f64,
    /// Steady-state duplicated responses suppressed by the idempotency
    /// filter per run (averaged).
    pub steady_dedup_suppressed: f64,
    /// Steady-state request re-issues per run (averaged).
    pub steady_retries: f64,
    /// Steady-state requests failed at retry exhaustion per run
    /// (averaged).
    pub steady_requests_failed: f64,
    /// Steady-state routing shortcuts learned per run (averaged;
    /// caching extension, `figC`).
    pub steady_cache_learned: f64,
    /// Steady-state eager cache invalidations delivered per run
    /// (averaged).
    pub steady_cache_invalidations: f64,
    /// Steady-state total visible work per run (averaged) —
    /// `SystemStats::total_work`, i.e. delivered messages plus drops,
    /// requeues and undeliverable envelopes.
    pub steady_work: f64,
    /// Number of runs averaged.
    pub runs: usize,
}

impl AveragedSeries {
    /// Mean satisfaction over the steady-state units (growth period
    /// excluded).
    pub fn steady_satisfaction(&self) -> f64 {
        if self.steady_issued == 0.0 {
            0.0
        } else {
            100.0 * self.steady_satisfied / self.steady_issued
        }
    }

    /// Data survival at the end of the horizon (mean over runs of the
    /// last unit's survival percentage) — `figR`'s y-axis.
    pub fn final_survival(&self) -> f64 {
        self.survival.last().copied().unwrap_or(100.0)
    }

    /// Mean logical hops per satisfied steady-state request — `figC`'s
    /// mean-hop axis (visit-weighted, unlike the per-unit chart
    /// series).
    pub fn steady_mean_hops(&self) -> f64 {
        if self.steady_hop_samples == 0.0 {
            0.0
        } else {
            self.steady_hops_sum / self.steady_hop_samples
        }
    }

    /// Steady-state cache hit rate as a percentage of issued requests
    /// (each request consults the cache exactly once when caching is
    /// on).
    pub fn steady_cache_hit_pct(&self) -> f64 {
        if self.steady_issued == 0.0 {
            0.0
        } else {
            100.0 * self.steady_cache_hits / self.steady_issued
        }
    }

    /// Steady-state stale-hit rate as a percentage of issued requests.
    pub fn steady_cache_stale_pct(&self) -> f64 {
        if self.steady_issued == 0.0 {
            0.0
        } else {
            100.0 * self.steady_cache_stale / self.steady_issued
        }
    }
}

/// Runs every seed of the experiment (in parallel) and averages.
pub fn run_experiment(cfg: &ExperimentConfig) -> AveragedSeries {
    let results = run_all(cfg);
    average(cfg, &results)
}

/// Runs all seeds, returning the raw per-run results (kept public for
/// statistical post-processing in the benches).
pub fn run_all(cfg: &ExperimentConfig) -> Vec<RunResult> {
    let runs = cfg.runs.max(1);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(runs);
    if workers <= 1 {
        return (0..runs).map(|i| run_once(cfg, i)).collect();
    }
    let mut results: Vec<Option<RunResult>> = vec![None; runs];
    let chunks: Vec<Vec<usize>> = (0..workers)
        .map(|w| (0..runs).filter(|i| i % workers == w).collect())
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|idxs| {
                scope.spawn(move || {
                    idxs.into_iter()
                        .map(|i| (i, run_once(cfg, i)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("runner thread panicked") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index filled"))
        .collect()
}

/// Concatenates the per-run health JSONL series in run order — the
/// file body the figure binaries write when `--health` is passed.
/// Empty unless the config had `health_snapshots` set.
pub fn health_jsonl(results: &[RunResult]) -> String {
    results.iter().map(|r| r.health.as_str()).collect()
}

/// Averages run results into per-unit series.
pub fn average(cfg: &ExperimentConfig, results: &[RunResult]) -> AveragedSeries {
    let units = cfg.time_units as usize;
    let runs = results.len().max(1) as f64;
    let skip = cfg.growth_units as usize;
    let mut out = AveragedSeries {
        name: cfg.name.clone(),
        time: (0..cfg.time_units).collect(),
        satisfaction: vec![0.0; units],
        logical_hops: vec![0.0; units],
        physical_lexico: vec![0.0; units],
        physical_random: vec![0.0; units],
        peers: vec![0.0; units],
        nodes: vec![0.0; units],
        migrations: vec![0.0; units],
        survival: vec![0.0; units],
        steady_satisfied: 0.0,
        steady_issued: 0.0,
        steady_hops_sum: 0.0,
        steady_hop_samples: 0.0,
        steady_cache_hits: 0.0,
        steady_cache_stale: 0.0,
        depth_visits: Vec::new(),
        steady_frames_lost: 0.0,
        steady_frames_duplicated: 0.0,
        steady_dedup_suppressed: 0.0,
        steady_retries: 0.0,
        steady_requests_failed: 0.0,
        steady_cache_learned: 0.0,
        steady_cache_invalidations: 0.0,
        steady_work: 0.0,
        runs: results.len(),
    };
    for r in results {
        for (t, u) in r.units.iter().enumerate() {
            out.satisfaction[t] += u.satisfaction_pct() / runs;
            out.logical_hops[t] += u.mean_logical_hops() / runs;
            out.physical_lexico[t] += u.mean_physical_lexico() / runs;
            out.physical_random[t] += u.mean_physical_random() / runs;
            out.peers[t] += u.peers as f64 / runs;
            out.nodes[t] += u.nodes as f64 / runs;
            out.migrations[t] += u.migrations as f64 / runs;
            out.survival[t] += u.survival_pct() / runs;
        }
        for u in r.units.iter().skip(skip) {
            out.steady_hops_sum += u.logical_hops_sum as f64 / runs;
            out.steady_hop_samples += u.hop_samples as f64 / runs;
            out.steady_cache_hits += u.cache_hits as f64 / runs;
            out.steady_cache_stale += u.cache_stale as f64 / runs;
            out.steady_frames_lost += u.frames_lost as f64 / runs;
            out.steady_frames_duplicated += u.frames_duplicated as f64 / runs;
            out.steady_dedup_suppressed += u.dedup_suppressed as f64 / runs;
            out.steady_retries += u.retries as f64 / runs;
            out.steady_requests_failed += u.requests_failed as f64 / runs;
            out.steady_cache_learned += u.cache_learned as f64 / runs;
            out.steady_cache_invalidations += u.cache_invalidations as f64 / runs;
            out.steady_work += u.work as f64 / runs;
            if out.depth_visits.len() < u.depth_visits.len() {
                out.depth_visits.resize(u.depth_visits.len(), 0.0);
            }
            for (d, c) in u.depth_visits.iter().enumerate() {
                out.depth_visits[d] += *c as f64 / runs;
            }
        }
        out.steady_satisfied += r.total_satisfied(skip) as f64 / runs;
        out.steady_issued += r.total_issued(skip) as f64 / runs;
    }
    out
}

/// Table 1's gain: percentage improvement of `candidate` over
/// `baseline` in steady-state satisfied requests.
pub fn gain_pct(candidate: &AveragedSeries, baseline: &AveragedSeries) -> f64 {
    if baseline.steady_satisfied == 0.0 {
        return 0.0;
    }
    100.0 * (candidate.steady_satisfied - baseline.steady_satisfied) / baseline.steady_satisfied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CorpusKind, LbKind, PopKind};
    use dlpt_workloads::churn::ChurnModel;

    fn tiny(runs: usize) -> ExperimentConfig {
        ExperimentConfig {
            name: "tiny".into(),
            peers: 10,
            corpus: CorpusKind::GridSubset(50),
            time_units: 6,
            growth_units: 2,
            load: 0.10,
            route_cost: 9.0,
            base_capacity: 10,
            capacity_ratio: 4,
            churn: ChurnModel::none(),
            lb: LbKind::None,
            popularity: PopKind::Uniform,
            runs,
            base_seed: 5,
            peer_id_len: 8,
            track_mapping_hops: false,
            replication: 1,
            anti_entropy: false,
            cache_capacity: 0,
            track_depth_hist: false,
            workers: 1,
            loss_rate: 0.0,
            dup_rate: 0.0,
            partition: None,
            health_snapshots: false,
        }
    }

    #[test]
    fn averaging_matches_manual_computation() {
        let cfg = tiny(3);
        let results = run_all(&cfg);
        let avg = average(&cfg, &results);
        assert_eq!(avg.runs, 3);
        assert_eq!(avg.satisfaction.len(), 6);
        let manual: f64 = results
            .iter()
            .map(|r| r.units[4].satisfaction_pct())
            .sum::<f64>()
            / 3.0;
        assert!((avg.satisfaction[4] - manual).abs() < 1e-9);
    }

    #[test]
    fn parallel_equals_sequential() {
        let cfg = tiny(4);
        let parallel = run_all(&cfg);
        let sequential: Vec<_> = (0..4).map(|i| run_once(&cfg, i)).collect();
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.units, s.units);
        }
    }

    #[test]
    fn gain_is_relative_difference() {
        let base = AveragedSeries {
            steady_satisfied: 100.0,
            ..Default::default()
        };
        let cand = AveragedSeries {
            steady_satisfied: 150.0,
            ..Default::default()
        };
        assert!((gain_pct(&cand, &base) - 50.0).abs() < 1e-9);
        let zero = AveragedSeries::default();
        assert_eq!(gain_pct(&cand, &zero), 0.0);
    }

    #[test]
    fn steady_satisfaction_ratio() {
        let cfg = tiny(2);
        let avg = run_experiment(&cfg);
        let s = avg.steady_satisfaction();
        assert!((0.0..=100.0).contains(&s), "{s}");
    }
}

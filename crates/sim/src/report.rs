//! Output: CSV series and ASCII charts.
//!
//! The harness binaries (`crates/bench/src/bin/fig*.rs`) regenerate
//! the paper's figures as CSV files under `results/` plus an ASCII
//! rendering on stdout, so the shapes can be inspected without any
//! plotting stack.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Creates (if needed) and returns the results directory.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("DLPT_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    fs::create_dir_all(&dir).expect("results directory must be creatable");
    dir
}

/// Writes a CSV file: `time` column plus one column per series.
pub fn write_csv(path: &Path, time: &[u32], series: &[(&str, &[f64])]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(fs::File::create(path)?);
    write!(f, "time")?;
    for (name, _) in series {
        write!(f, ",{name}")?;
    }
    writeln!(f)?;
    for (i, t) in time.iter().enumerate() {
        write!(f, "{t}")?;
        for (_, vals) in series {
            match vals.get(i) {
                Some(v) => write!(f, ",{v:.4}")?,
                None => write!(f, ",")?,
            }
        }
        writeln!(f)?;
    }
    f.flush()
}

/// Renders a fixed-size ASCII line chart of several series.
///
/// `y_max = None` auto-scales; pass `Some(100.0)` for satisfaction
/// percentages so figures stay visually comparable.
// The row written per bucket depends on the sampled value, so the
// column index is genuinely needed.
#[allow(clippy::needless_range_loop)]
pub fn ascii_chart(
    title: &str,
    series: &[(&str, &[f64])],
    y_max: Option<f64>,
    height: usize,
    width: usize,
) -> String {
    const MARKS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];
    let height = height.max(4);
    let width = width.max(10);
    let n = series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    if n == 0 {
        return format!("{title}\n(empty)\n");
    }
    let max = y_max.unwrap_or_else(|| {
        series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(1e-9_f64, f64::max)
            * 1.05
    });
    // Downsample each series into `width` buckets (bucket mean).
    let bucket = |vals: &[f64], b: usize| -> Option<f64> {
        let lo = b * n / width;
        let hi = (((b + 1) * n) / width).max(lo + 1).min(n);
        if lo >= n {
            return None;
        }
        let slice = &vals[lo..hi.min(vals.len()).max(lo)];
        if slice.is_empty() {
            None
        } else {
            Some(slice.iter().sum::<f64>() / slice.len() as f64)
        }
    };
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, vals)) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for b in 0..width {
            if let Some(v) = bucket(vals, b) {
                let row = ((v / max) * (height - 1) as f64).round() as usize;
                let row = (height - 1).saturating_sub(row.min(height - 1));
                grid[row][b] = mark;
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{max:7.1} |")
        } else if i == height - 1 {
            format!("{:7.1} |", 0.0)
        } else {
            "        |".to_string()
        };
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{label}{line}");
    }
    let _ = writeln!(out, "        +{}", "-".repeat(width));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {name}", MARKS[i % MARKS.len()]))
        .collect();
    let _ = writeln!(out, "         {}", legend.join("   "));
    out
}

/// Formats a table for stdout: headers plus rows of cells.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let _ = writeln!(out, "{}", fmt_row(&header_cells, &widths));
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        let _ = writeln!(out, "{}", fmt_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("dlpt-sim-test-csv");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let time: Vec<u32> = (0..5).collect();
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [10.0, 20.0, 30.0, 40.0, 50.0];
        write_csv(&path, &time, &[("A", &a), ("B", &b)]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "time,A,B");
        assert_eq!(lines.len(), 6);
        assert!(lines[1].starts_with("0,1.0000,10.0000"));
    }

    #[test]
    fn chart_contains_marks_and_legend() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| 50.0 - i as f64).collect();
        let chart = ascii_chart("test", &[("up", &a), ("down", &b)], None, 10, 40);
        assert!(chart.contains('*'));
        assert!(chart.contains('+'));
        assert!(chart.contains("up"));
        assert!(chart.contains("down"));
        assert!(chart.lines().count() > 10);
    }

    #[test]
    fn chart_handles_empty_and_constant() {
        let empty = ascii_chart("e", &[("x", &[])], None, 8, 20);
        assert!(empty.contains("(empty)"));
        let c = [5.0; 10];
        let chart = ascii_chart("c", &[("flat", &c)], Some(100.0), 8, 20);
        assert!(chart.contains('*'));
    }

    #[test]
    fn table_alignment() {
        let t = ascii_table(
            &["sys", "hops"],
            &[
                vec!["DLPT".into(), "2.10".into()],
                vec!["PHT".into(), "18.00".into()],
            ],
        );
        assert!(t.contains("DLPT"));
        assert!(t.contains("18.00"));
    }
}

#![warn(missing_docs)]
//! # dlpt-sim — the paper's evaluation, as an executable harness
//!
//! Section 4 of the paper describes the simulator its results come
//! from: discrete time; each unit runs (1) MLT on a fraction of peers,
//! (2) peer joins (through KC when enabled), (3) peer leaves, (4) new
//! service registrations, (5) discovery requests, whose satisfaction
//! is recorded. Peer capacity is the number of requests a peer accepts
//! per unit ("all requests received on a peer after it reached this
//! number are ignored"); the max/min capacity ratio is 4; ~100 peers
//! run a tree of ~1000 nodes built from linear-algebra routine names;
//! every experiment averages 30, 50 or 100 seeded runs.
//!
//! | Module | Role |
//! |---|---|
//! | [`config`] | [`config::ExperimentConfig`]: every knob of the Section-4 loop |
//! | [`run`] | one seeded run — the five-step time-unit loop |
//! | [`runner`] | parallel multi-run execution and averaging |
//! | [`experiments`] | one constructor per figure/table of the paper |
//! | [`report`] | CSV writers and ASCII charts for the harness binaries |
//!
//! Determinism: run `i` of an experiment is a pure function of
//! `(config, base_seed + i)`; the thread pool only distributes work.

pub mod config;
pub mod experiments;
pub mod report;
pub mod run;
pub mod runner;

pub use config::{CorpusKind, ExperimentConfig, LbKind, PopKind};
pub use run::{RunResult, UnitMetrics};
pub use runner::{run_experiment, AveragedSeries};

//! Experiment configuration: every knob of the Section-4 loop.

use dlpt_core::alphabet::Alphabet;
use dlpt_core::balance::{KChoices, LoadBalancer, MaxLocalThroughput, NoBalancing};
use dlpt_core::key::Key;
use dlpt_workloads::churn::ChurnModel;
use dlpt_workloads::corpus::Corpus;
use dlpt_workloads::popularity::{HotspotSchedule, Phase, Popularity, Uniform, Zipf};
use rand::RngCore;

/// Which load-balancing strategy a run uses (the three curves of
/// Figures 4–8).
#[derive(Debug, Clone, PartialEq)]
pub enum LbKind {
    /// "No LB".
    None,
    /// "MLT enabled": the given fraction of peers rebalance per unit.
    Mlt {
        /// Fraction of peers running MLT each unit.
        fraction: f64,
    },
    /// "KC enabled" with the given number of candidates (paper: 4).
    Kc {
        /// Candidates evaluated per join.
        k: usize,
    },
}

impl LbKind {
    /// Instantiates the strategy.
    pub fn build(&self) -> Box<dyn LoadBalancer> {
        match self {
            LbKind::None => Box::new(NoBalancing),
            LbKind::Mlt { fraction } => Box::new(MaxLocalThroughput::with_fraction(*fraction)),
            LbKind::Kc { k } => Box::new(KChoices::with_k(*k)),
        }
    }

    /// Curve label used in charts and CSV headers.
    pub fn label(&self) -> &'static str {
        match self {
            LbKind::None => "NoLB",
            LbKind::Mlt { .. } => "MLT",
            LbKind::Kc { .. } => "KC",
        }
    }
}

/// How requests pick targets.
#[derive(Debug, Clone, PartialEq)]
pub enum PopKind {
    /// "services requested were randomly picked among the set of
    /// available services".
    Uniform,
    /// Zipf-skewed popularity (ablation).
    Zipf(f64),
    /// The Figure 8 hot-spot timeline with the given burst intensity.
    Figure8 {
        /// Fraction of burst-phase requests aimed at the hot prefix.
        hot_fraction: f64,
    },
    /// A single sustained hot-prefix phase (figC): uniform traffic
    /// until `from`, then `fraction` of requests aimed at keys
    /// extending `prefix` for the rest of the horizon.
    HotPrefix {
        /// The hot lexicographic region.
        prefix: String,
        /// Fraction of burst-phase requests aimed at it.
        fraction: f64,
        /// First unit of the burst phase.
        from: u32,
    },
}

impl PopKind {
    /// Instantiates the model.
    pub fn build(&self) -> Box<dyn Popularity> {
        match self {
            PopKind::Uniform => Box::new(Uniform),
            PopKind::Zipf(s) => Box::new(Zipf::new(*s)),
            PopKind::Figure8 { hot_fraction } => Box::new(HotspotSchedule::figure8(*hot_fraction)),
            PopKind::HotPrefix {
                prefix,
                fraction,
                from,
            } => Box::new(HotspotSchedule::new(vec![
                Phase::uniform(0, *from),
                Phase::burst(*from, u32::MAX, prefix.as_str(), *fraction),
            ])),
        }
    }
}

/// Which corpus the tree is built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusKind {
    /// The full grid corpus (≈1000 routine names) — the paper's setup.
    Grid,
    /// A deterministic spread sample of the grid corpus (scaled-down
    /// benches).
    GridSubset(usize),
    /// Random binary identifiers (Figure 1(a) style).
    Binary {
        /// Number of keys.
        n: usize,
        /// Digits per key.
        len: usize,
    },
}

impl CorpusKind {
    /// Materializes the key set.
    pub fn build(&self, rng: &mut dyn RngCore) -> Vec<Key> {
        match self {
            CorpusKind::Grid => Corpus::grid().keys,
            CorpusKind::GridSubset(n) => Corpus::grid().take_spread(*n),
            CorpusKind::Binary { n, len } => Corpus::binary(*n, *len, rng).keys,
        }
    }

    /// The digit alphabet matching the corpus.
    pub fn alphabet(&self) -> Alphabet {
        match self {
            CorpusKind::Grid | CorpusKind::GridSubset(_) => Alphabet::grid(),
            CorpusKind::Binary { .. } => Alphabet::binary(),
        }
    }
}

/// A healable network partition scheduled within a run (fault
/// extension, `figA`): frames addressed to keys in `[lo, hi)` are
/// severed from unit `from` (inclusive) until unit `until`
/// (exclusive), then the cut heals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Lower bound (inclusive) of the severed key range.
    pub lo: String,
    /// Upper bound (exclusive) of the severed key range.
    pub hi: String,
    /// First time unit with the partition in place.
    pub from: u32,
    /// First time unit after the partition heals.
    pub until: u32,
}

/// Full description of one experiment (one curve of one figure).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Name used in file names and chart titles.
    pub name: String,
    /// Peers bootstrapped before unit 0 (paper: ~100).
    pub peers: usize,
    /// Key corpus (paper: routine names, tree ≈ 1000 nodes).
    pub corpus: CorpusKind,
    /// Simulated time units (Figures 4–7: 50; Figures 8–9: 160).
    pub time_units: u32,
    /// Units over which the corpus is registered ("the first 10 units
    /// correspond to the period where the prefix tree is growing").
    pub growth_units: u32,
    /// Load: offered work per unit as a fraction of the aggregated
    /// peer capacity (Table 1's row labels). In the paper's
    /// terminology every routing hop is a request *received* by a
    /// peer, so a discovery that traverses `h` nodes offers `h` units
    /// of work; the number of discoveries issued per unit is
    /// `load * Σ capacity / route_cost`.
    pub load: f64,
    /// Mean peer-visits one discovery costs (entry + up + down),
    /// used to convert `load` into a request count. Calibrated from
    /// measured logical route lengths on the grid corpus (≈ 9).
    pub route_cost: f64,
    /// Capacity of the weakest peer.
    pub base_capacity: u32,
    /// Max/min capacity ratio (paper: 4).
    pub capacity_ratio: u32,
    /// Churn model (stable vs dynamic network).
    pub churn: ChurnModel,
    /// Load-balancing strategy.
    pub lb: LbKind,
    /// Popularity model.
    pub popularity: PopKind,
    /// Seeded runs to average (30/50/100 in the paper).
    pub runs: usize,
    /// Base seed; run `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Digits per random peer identifier.
    pub peer_id_len: usize,
    /// Also compute Figure 9's random-mapping physical hops (costs one
    /// hash per path node per request).
    pub track_mapping_hops: bool,
    /// Replication factor `k` (replication extension, `figR`): each
    /// tree node lives on its primary plus `k - 1` ring-successor
    /// followers. `1` (the default) reproduces the paper's
    /// single-copy system byte-identically.
    pub replication: usize,
    /// Run the self-healing anti-entropy pass once per time unit
    /// (after the churn step). Only meaningful at `replication > 1`.
    pub anti_entropy: bool,
    /// Per-peer routing-shortcut cache capacity (caching extension,
    /// `figC`): hot query targets learned from completed discoveries
    /// route in one hop instead of the O(depth) up/down climb. `0`
    /// (the default) reproduces the uncached system byte-identically.
    pub cache_capacity: usize,
    /// Also record the per-depth visit histogram of satisfied routes
    /// (costs one O(nodes) depth map per unit plus one map probe per
    /// visited label) — the figC evidence that shortcuts relieve the
    /// upper tree.
    pub track_depth_hist: bool,
    /// Workers for the discovery phase: at `> 1` each unit's request
    /// batch runs through the sharded parallel pump
    /// (`dlpt_core::engine::parallel`) instead of one-at-a-time FIFO.
    /// Entry draws and metrics are identical; under capacity pressure
    /// the interleaving (and therefore which visits are refused) is
    /// deterministic per `(seed, workers)` rather than per seed alone,
    /// so committed CSVs stay at the default `1`.
    pub workers: usize,
    /// Probability that a faultable message (discovery, client
    /// response, cache invalidation) is lost in transit (fault
    /// extension, `figA`). `0.0` (the default) keeps the transport
    /// byte-identical to the fault-free system.
    pub loss_rate: f64,
    /// Probability that a faultable message is delivered twice.
    pub dup_rate: f64,
    /// Scheduled healable partition; `None` (the default) for a fully
    /// connected network.
    pub partition: Option<PartitionSpec>,
    /// Collect a [`dlpt_core::HealthSnapshot`] at every unit boundary
    /// (observability extension, `dlpt-core::obs::health`) and expose
    /// the per-run JSONL time series on [`crate::run::RunResult`].
    /// `false` (the default) skips collection entirely — snapshots are
    /// a pure read, so either setting leaves every simulated metric
    /// byte-identical.
    pub health_snapshots: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            name: "baseline".into(),
            peers: 100,
            corpus: CorpusKind::Grid,
            time_units: 50,
            growth_units: 10,
            load: 0.10,
            route_cost: 9.0,
            base_capacity: 10,
            capacity_ratio: 4,
            churn: ChurnModel::stable(),
            lb: LbKind::None,
            popularity: PopKind::Uniform,
            runs: 30,
            base_seed: 0x0D1B,
            peer_id_len: 12,
            track_mapping_hops: false,
            replication: 1,
            anti_entropy: false,
            cache_capacity: 0,
            track_depth_hist: false,
            workers: 1,
            loss_rate: 0.0,
            dup_rate: 0.0,
            partition: None,
            health_snapshots: false,
        }
    }
}

impl ExperimentConfig {
    /// Scales the experiment down by `factor` (fewer peers, keys and
    /// runs) for fast benches; load and dynamics stay put.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        let f = factor.max(1);
        self.peers = (self.peers / f).max(8);
        self.runs = (self.runs / f).max(2);
        self.corpus = match self.corpus {
            CorpusKind::Grid => CorpusKind::GridSubset((1000 / f).max(50)),
            CorpusKind::GridSubset(n) => CorpusKind::GridSubset((n / f).max(50)),
            other => other,
        };
        self.time_units = (self.time_units / f as u32).max(10);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lb_kinds_build_and_label() {
        assert_eq!(LbKind::None.label(), "NoLB");
        assert_eq!(LbKind::Mlt { fraction: 1.0 }.label(), "MLT");
        assert_eq!(LbKind::Kc { k: 4 }.label(), "KC");
        assert_eq!(LbKind::None.build().name(), "none");
        assert_eq!(LbKind::Mlt { fraction: 0.5 }.build().name(), "MLT");
        assert_eq!(LbKind::Kc { k: 4 }.build().name(), "KC");
    }

    #[test]
    fn corpus_kinds_materialize() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(CorpusKind::Grid.build(&mut rng).len() > 800);
        assert_eq!(CorpusKind::GridSubset(100).build(&mut rng).len(), 100);
        let b = CorpusKind::Binary { n: 50, len: 10 }.build(&mut rng);
        assert!(b.len() <= 50 && b.len() > 30);
        assert_eq!(CorpusKind::Binary { n: 1, len: 1 }.alphabet().len(), 2);
    }

    #[test]
    fn scaled_down_shrinks_but_stays_valid() {
        let cfg = ExperimentConfig::default().scaled_down(5);
        assert_eq!(cfg.peers, 20);
        assert_eq!(cfg.runs, 6);
        assert_eq!(cfg.time_units, 10);
        assert!(matches!(cfg.corpus, CorpusKind::GridSubset(200)));
        assert_eq!(cfg.load, 0.10, "load is preserved");
    }
}

//! Property tests of the comparators: the binary encoding preserves
//! order, and PHT/P-Grid behave as sets over arbitrary corpora.

use dlpt_baselines::encoding::{from_bits, to_bits};
use dlpt_baselines::pht::{PhtConfig, PrefixHashTree};
use dlpt_baselines::PGrid;
use dlpt_core::key::Key;
use proptest::prelude::*;

fn name() -> impl Strategy<Value = String> {
    "[A-Z][A-Z0-9_]{0,9}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encoding preserves lexicographic order and roundtrips.
    #[test]
    fn encoding_preserves_order(a in name(), b in name()) {
        let (ka, kb) = (Key::from(a.as_str()), Key::from(b.as_str()));
        let (ea, eb) = (to_bits(&ka, 12), to_bits(&kb, 12));
        prop_assert_eq!(ka.cmp(&kb), ea.cmp(&eb));
        prop_assert_eq!(from_bits(&ea), ka);
    }

    /// PHT stores exactly the inserted key set, whatever the order and
    /// the split threshold.
    #[test]
    fn pht_is_a_set(
        keys in proptest::collection::btree_set(name(), 1..25),
        leaf_capacity in 1usize..6,
        probe in name(),
    ) {
        let mut pht = PrefixHashTree::new(
            PhtConfig { leaf_capacity, depth_bytes: 12, succ_list_len: 3 },
            8,
            1,
        );
        for k in &keys {
            pht.insert(&Key::from(k.as_str()));
        }
        prop_assert_eq!(pht.key_count(), keys.len());
        for k in &keys {
            prop_assert!(pht.lookup(&Key::from(k.as_str())).0, "{}", k);
        }
        let probe_key = Key::from(probe.as_str());
        prop_assert_eq!(pht.lookup(&probe_key).0, keys.contains(&probe));
        // Binary-search lookup agrees with the linear descent.
        prop_assert_eq!(pht.lookup_binary(&probe_key).0, keys.contains(&probe));
    }

    /// PHT range queries equal a filter.
    #[test]
    fn pht_range_equals_filter(
        keys in proptest::collection::btree_set(name(), 1..20),
        a in name(),
        b in name(),
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (lo, hi) = (Key::from(lo.as_str()), Key::from(hi.as_str()));
        let mut pht = PrefixHashTree::new(PhtConfig::default(), 8, 2);
        for k in &keys {
            pht.insert(&Key::from(k.as_str()));
        }
        let want: Vec<Key> = keys
            .iter()
            .map(|k| Key::from(k.as_str()))
            .filter(|k| *k >= lo && *k <= hi)
            .collect();
        prop_assert_eq!(pht.range(&lo, &hi), want);
    }

    /// P-Grid finds every stored key and rejects absent probes, for
    /// arbitrary corpora and peer counts.
    #[test]
    fn pgrid_is_a_set(
        keys in proptest::collection::btree_set(name(), 1..25),
        peers in 1usize..20,
        probe in name(),
    ) {
        let corpus: Vec<Key> = keys.iter().map(|k| Key::from(k.as_str())).collect();
        let mut g = PGrid::build(&corpus, peers, 2, 12, 3);
        for k in &corpus {
            prop_assert!(g.lookup(k).0, "{}", k);
        }
        let probe_key = Key::from(probe.as_str());
        prop_assert_eq!(g.lookup(&probe_key).0, keys.contains(&probe));
    }
}

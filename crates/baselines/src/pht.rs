//! Prefix Hash Tree (Ramabhadran, Ratnasamy, Hellerstein, Shenker,
//! PODC 2004) over the `dlpt-dht` Chord network.
//!
//! "PHT builds a prefix tree over the data set on top of a DHT. The
//! trie is used as an upper logical layer allowing complex searches on
//! top of any DHT-like network" (Section 5 of the DLPT paper).
//!
//! The trie vertex with binary prefix label `p` lives at the DHT node
//! owning `hash("pht:" ++ p)`. Leaves hold up to `B` keys and split on
//! overflow. Every vertex access is therefore a full DHT lookup —
//! O(log P) hops — which is exactly the multiplicative factor Table 2
//! charges PHT with (`O(D · log P)` routing against DLPT's `O(D)`).
//!
//! Insertions and lookups use the linear descent of the original
//! design; the binary search over prefix lengths
//! ([`PrefixHashTree::lookup_binary`]) is provided as the paper's
//! optimized variant. Range queries descend to the longest common
//! prefix of the bounds and walk the covered sub-trie.

use crate::encoding::to_bits;
use dlpt_core::key::Key;
use dlpt_dht::chord::ChordNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a [`PrefixHashTree`].
#[derive(Debug, Clone)]
pub struct PhtConfig {
    /// Leaf split threshold `B`.
    pub leaf_capacity: usize,
    /// Fixed key depth in bytes (must cover the corpus).
    pub depth_bytes: usize,
    /// Chord successor-list length.
    pub succ_list_len: usize,
}

impl Default for PhtConfig {
    fn default() -> Self {
        PhtConfig {
            leaf_capacity: 4,
            depth_bytes: 24,
            succ_list_len: 4,
        }
    }
}

/// Counters for the complexity measurements of Table 2.
#[derive(Debug, Clone, Default)]
pub struct PhtStats {
    /// Trie vertex accesses (each one is a DHT lookup).
    pub vertex_accesses: u64,
    /// DHT routing hops spent on those accesses.
    pub dht_hops: u64,
    /// Leaf splits performed.
    pub splits: u64,
    /// Exact lookups answered.
    pub lookups: u64,
}

/// One stored trie vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Vertex {
    /// Interior vertex: both children exist (labels `p0`, `p1`).
    Internal,
    /// Leaf holding the keys whose encoding extends its label.
    Leaf(Vec<Key>),
}

impl Vertex {
    fn encode(&self) -> Vec<u8> {
        match self {
            Vertex::Internal => vec![0u8],
            Vertex::Leaf(keys) => {
                let mut out = vec![1u8];
                out.extend((keys.len() as u32).to_le_bytes());
                for k in keys {
                    out.extend((k.len() as u16).to_le_bytes());
                    out.extend(k.as_bytes());
                }
                out
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<Vertex> {
        match bytes.first()? {
            0 => Some(Vertex::Internal),
            1 => {
                let n = u32::from_le_bytes(bytes.get(1..5)?.try_into().ok()?) as usize;
                let mut keys = Vec::with_capacity(n);
                let mut at = 5usize;
                for _ in 0..n {
                    let len = u16::from_le_bytes(bytes.get(at..at + 2)?.try_into().ok()?) as usize;
                    at += 2;
                    // Straight from the slice: short keys decode inline
                    // with no heap allocation.
                    keys.push(Key::from_slice(bytes.get(at..at + len)?));
                    at += len;
                }
                Some(Vertex::Leaf(keys))
            }
            _ => None,
        }
    }
}

/// A Prefix Hash Tree over Chord.
#[derive(Debug)]
pub struct PrefixHashTree {
    /// The underlying DHT (public so experiments can churn it).
    pub dht: ChordNetwork,
    cfg: PhtConfig,
    rng: StdRng,
    key_count: usize,
    /// Complexity counters.
    pub stats: PhtStats,
}

impl PrefixHashTree {
    /// Builds the overlay over `peers` DHT nodes.
    pub fn new(cfg: PhtConfig, peers: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dht = ChordNetwork::new(cfg.succ_list_len);
        while dht.len() < peers.max(1) {
            dht.join(rng.gen());
        }
        dht.stabilize();
        let mut pht = PrefixHashTree {
            dht,
            cfg,
            rng,
            key_count: 0,
            stats: PhtStats::default(),
        };
        // The root leaf always exists.
        pht.write_vertex(&Key::epsilon(), &Vertex::Leaf(Vec::new()));
        pht
    }

    /// Number of registered keys.
    pub fn key_count(&self) -> usize {
        self.key_count
    }

    fn entry(&mut self) -> u64 {
        let ids = self.dht.ids();
        ids[self.rng.gen_range(0..ids.len())]
    }

    fn storage_key(label: &Key) -> Vec<u8> {
        let mut v = b"pht:".to_vec();
        v.extend(label.as_bytes());
        v
    }

    fn read_vertex(&mut self, label: &Key) -> Option<Vertex> {
        let entry = self.entry();
        let (vals, res) = self.dht.get(entry, &Self::storage_key(label));
        self.stats.vertex_accesses += 1;
        self.stats.dht_hops += res.hops as u64;
        vals.and_then(|vs| vs.first().and_then(|v| Vertex::decode(v)))
    }

    fn write_vertex(&mut self, label: &Key, v: &Vertex) {
        let entry = self.entry();
        let res = self
            .dht
            .put_replace(entry, &Self::storage_key(label), v.encode());
        self.stats.vertex_accesses += 1;
        self.stats.dht_hops += res.hops as u64;
    }

    /// Registers a key. Returns the number of trie levels descended.
    pub fn insert(&mut self, key: &Key) -> usize {
        let bits = to_bits(key, self.cfg.depth_bytes);
        let (label, vertex) = self.descend_to_leaf(&bits);
        let Vertex::Leaf(mut keys) = vertex else {
            unreachable!("descend_to_leaf returns a leaf");
        };
        let depth = label.len();
        if !keys.contains(key) {
            keys.push(key.clone());
            keys.sort();
            self.key_count += 1;
        }
        if keys.len() <= self.cfg.leaf_capacity || label.len() >= bits.len() {
            self.write_vertex(&label, &Vertex::Leaf(keys));
        } else {
            self.split_leaf(label, keys);
        }
        depth
    }

    /// Linear descent from the root to the leaf covering `bits`.
    fn descend_to_leaf(&mut self, bits: &Key) -> (Key, Vertex) {
        let mut label = Key::epsilon();
        loop {
            match self.read_vertex(&label) {
                Some(Vertex::Internal) => {
                    let next_bit = bits.as_bytes()[label.len()];
                    label = label.child(next_bit);
                }
                Some(leaf @ Vertex::Leaf(_)) => return (label, leaf),
                None => {
                    // Fresh branch below a split: materialize the leaf.
                    let leaf = Vertex::Leaf(Vec::new());
                    self.write_vertex(&label, &leaf);
                    return (label, leaf);
                }
            }
        }
    }

    /// Splits an overflowing leaf, cascading while every key falls on
    /// the same side.
    fn split_leaf(&mut self, label: Key, keys: Vec<Key>) {
        let mut label = label;
        let mut keys = keys;
        loop {
            self.stats.splits += 1;
            let (mut zeros, mut ones) = (Vec::new(), Vec::new());
            for k in keys {
                let bits = to_bits(&k, self.cfg.depth_bytes);
                if bits.as_bytes()[label.len()] == b'1' {
                    ones.push(k);
                } else {
                    zeros.push(k);
                }
            }
            self.write_vertex(&label, &Vertex::Internal);
            let (l0, l1) = (label.child(b'0'), label.child(b'1'));
            let over = |v: &Vec<Key>| v.len() > self.cfg.leaf_capacity;
            match (over(&zeros), over(&ones)) {
                (true, false) => {
                    self.write_vertex(&l1, &Vertex::Leaf(ones));
                    label = l0;
                    keys = zeros;
                }
                (false, true) => {
                    self.write_vertex(&l0, &Vertex::Leaf(zeros));
                    label = l1;
                    keys = ones;
                }
                (false, false) => {
                    self.write_vertex(&l0, &Vertex::Leaf(zeros));
                    self.write_vertex(&l1, &Vertex::Leaf(ones));
                    return;
                }
                (true, true) => {
                    // Can't happen: splitting strictly shrinks one side
                    // below the other; handle defensively by recursing
                    // into the zeros side after writing ones.
                    self.write_vertex(&l1, &Vertex::Leaf(ones));
                    label = l0;
                    keys = zeros;
                }
            }
        }
    }

    /// Exact lookup by linear descent. Returns `(found, trie levels
    /// visited)` — multiply by the observed DHT hops per access for the
    /// physical cost.
    pub fn lookup(&mut self, key: &Key) -> (bool, usize) {
        self.stats.lookups += 1;
        let bits = to_bits(key, self.cfg.depth_bytes);
        let (label, vertex) = self.descend_to_leaf(&bits);
        let Vertex::Leaf(keys) = vertex else {
            unreachable!()
        };
        (keys.contains(key), label.len() + 1)
    }

    /// Exact lookup by binary search over prefix lengths (the PHT
    /// paper's optimization: O(log D) DHT gets instead of O(D)).
    pub fn lookup_binary(&mut self, key: &Key) -> (bool, usize) {
        self.stats.lookups += 1;
        let bits = to_bits(key, self.cfg.depth_bytes);
        let (mut lo, mut hi) = (0usize, bits.len());
        let mut accesses = 0usize;
        loop {
            let mid = (lo + hi) / 2;
            accesses += 1;
            match self.read_vertex(&bits.truncated(mid)) {
                Some(Vertex::Leaf(keys)) => return (keys.contains(key), accesses),
                Some(Vertex::Internal) => lo = mid + 1,
                None => {
                    if mid == 0 {
                        return (false, accesses);
                    }
                    hi = mid - 1;
                }
            }
            if lo > hi {
                // Converged next to the leaf boundary; resolve linearly.
                let (label, vertex) = self.descend_to_leaf(&bits);
                let Vertex::Leaf(keys) = vertex else {
                    unreachable!()
                };
                return (keys.contains(key), accesses + label.len() + 1);
            }
        }
    }

    /// Range query: all registered keys in `[lo, hi]`. Walks from the
    /// root (the GCP of the bounds need not exist as a vertex in a
    /// sparse trie); pruning discards the subtrees outside the range
    /// after O(|GCP|) shared-path steps.
    pub fn range(&mut self, lo: &Key, hi: &Key) -> Vec<Key> {
        let lo_bits = to_bits(lo, self.cfg.depth_bytes);
        let hi_bits = to_bits(hi, self.cfg.depth_bytes);
        let mut out = Vec::new();
        self.range_walk(Key::epsilon(), &lo_bits, &hi_bits, lo, hi, &mut out);
        out.sort();
        out
    }

    fn range_walk(
        &mut self,
        label: Key,
        lo_b: &Key,
        hi_b: &Key,
        lo: &Key,
        hi: &Key,
        out: &mut Vec<Key>,
    ) {
        // Prune: the subtree covers bit strings extending `label`.
        if &label > hi_b {
            return;
        }
        match self.read_vertex(&label) {
            Some(Vertex::Leaf(keys)) => {
                out.extend(keys.into_iter().filter(|k| k >= lo && k <= hi));
            }
            Some(Vertex::Internal) => {
                for bit in [b'0', b'1'] {
                    let child = label.child(bit);
                    // Child subtree range: [child·000…, child·111…].
                    if upper_bound_below(&child, lo_b) || &child > hi_b {
                        continue;
                    }
                    self.range_walk(child, lo_b, hi_b, lo, hi, out);
                }
            }
            None => {}
        }
    }

    /// Mean DHT hops per vertex access so far.
    pub fn mean_dht_hops(&self) -> f64 {
        if self.stats.vertex_accesses == 0 {
            0.0
        } else {
            self.stats.dht_hops as f64 / self.stats.vertex_accesses as f64
        }
    }
}

/// True iff every bit string extending `prefix` is `< lo` — i.e. the
/// subtree's maximum (`prefix` padded with ones) is below the range.
fn upper_bound_below(prefix: &Key, lo: &Key) -> bool {
    if prefix.is_prefix_of(lo) {
        return false;
    }
    prefix < lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn small() -> PrefixHashTree {
        PrefixHashTree::new(
            PhtConfig {
                leaf_capacity: 2,
                depth_bytes: 24,
                succ_list_len: 3,
            },
            16,
            7,
        )
    }

    #[test]
    fn vertex_codec_roundtrip() {
        for v in [
            Vertex::Internal,
            Vertex::Leaf(vec![]),
            Vertex::Leaf(vec![k("DGEMM"), k("S3L_fft")]),
        ] {
            assert_eq!(Vertex::decode(&v.encode()), Some(v.clone()));
        }
        assert_eq!(Vertex::decode(&[9]), None);
        assert_eq!(Vertex::decode(&[]), None);
    }

    #[test]
    fn insert_then_lookup() {
        let mut pht = small();
        let names = ["DGEMM", "DGEMV", "DTRSM", "SGEMM", "S3L_fft", "PSGESV"];
        for n in names {
            pht.insert(&k(n));
        }
        assert_eq!(pht.key_count(), 6);
        for n in names {
            let (found, levels) = pht.lookup(&k(n));
            assert!(found, "{n}");
            assert!(levels >= 1);
        }
        assert!(!pht.lookup(&k("ZZZZ")).0);
        assert!(!pht.lookup(&k("DGEM")).0);
    }

    #[test]
    fn leaves_split_at_capacity() {
        let mut pht = small();
        // 8 keys with a long shared prefix force deep cascading splits.
        for i in 0..8 {
            pht.insert(&Key::from(format!("S3L_op_{i}")));
        }
        assert!(pht.stats.splits > 0);
        for i in 0..8 {
            assert!(pht.lookup(&Key::from(format!("S3L_op_{i}"))).0, "{i}");
        }
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut pht = small();
        pht.insert(&k("DGEMM"));
        pht.insert(&k("DGEMM"));
        assert_eq!(pht.key_count(), 1);
    }

    #[test]
    fn binary_lookup_agrees_with_linear() {
        let mut pht = small();
        let names: Vec<String> = (0..30).map(|i| format!("K{i:02}")).collect();
        for n in &names {
            pht.insert(&Key::from(n.as_str()));
        }
        for n in &names {
            let key = Key::from(n.as_str());
            assert_eq!(pht.lookup(&key).0, pht.lookup_binary(&key).0, "{n}");
        }
        assert_eq!(pht.lookup(&k("NOPE")).0, pht.lookup_binary(&k("NOPE")).0);
    }

    #[test]
    fn range_query_matches_filter() {
        let mut pht = small();
        let names = [
            "CAXPY", "DGEMM", "DGEMV", "DGETRF", "DTRSM", "PSGESV", "S3L_fft", "ZTRSM",
        ];
        for n in names {
            pht.insert(&k(n));
        }
        let got = pht.range(&k("DGEMM"), &k("PSGESV"));
        let want: Vec<Key> = names
            .iter()
            .map(|n| k(n))
            .filter(|x| x >= &k("DGEMM") && x <= &k("PSGESV"))
            .collect();
        assert_eq!(got, want);
        assert!(pht.range(&k("AA"), &k("B")).is_empty());
    }

    #[test]
    fn dht_hops_are_charged() {
        let mut pht = PrefixHashTree::new(PhtConfig::default(), 64, 11);
        for i in 0..40 {
            pht.insert(&Key::from(format!("SVC{i:02}")));
        }
        let before = pht.stats.dht_hops;
        for i in 0..40 {
            pht.lookup(&Key::from(format!("SVC{i:02}")));
        }
        assert!(pht.stats.dht_hops > before);
        assert!(pht.mean_dht_hops() > 0.5, "{}", pht.mean_dht_hops());
    }
}

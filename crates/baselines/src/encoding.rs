//! Order-preserving binary encoding of service keys.
//!
//! PHT and P-Grid are defined over fixed-depth binary key spaces,
//! while the DLPT works on raw identifier strings. To compare the
//! three on the same corpus, service names are encoded as bit strings
//! (`'0'`/`'1'` characters, so the result is again a
//! [`Key`] and all the prefix algebra applies):
//! each byte contributes its 8 bits, names are zero-padded to a fixed
//! byte depth. Zero is below every printable digit, so padding
//! preserves lexicographic order — ranges translate verbatim.

use dlpt_core::key::Key;

/// Encodes `key` into a bit string of exactly `depth_bytes * 8`
/// binary digits. Longer keys are truncated (callers pick
/// `depth_bytes` ≥ the corpus maximum to avoid collisions).
pub fn to_bits(key: &Key, depth_bytes: usize) -> Key {
    let mut out = Vec::with_capacity(depth_bytes * 8);
    for i in 0..depth_bytes {
        let byte = key.as_bytes().get(i).copied().unwrap_or(0);
        for bit in (0..8).rev() {
            out.push(if byte >> bit & 1 == 1 { b'1' } else { b'0' });
        }
    }
    Key::from_bytes(out)
}

/// Decodes a full-depth bit string back to the original key (trailing
/// zero padding stripped).
pub fn from_bits(bits: &Key) -> Key {
    let raw = bits.as_bytes();
    let mut out = Vec::with_capacity(raw.len() / 8);
    for chunk in raw.chunks_exact(8) {
        let mut byte = 0u8;
        for &c in chunk {
            byte = (byte << 1) | u8::from(c == b'1');
        }
        out.push(byte);
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    Key::from_bytes(out)
}

/// The smallest byte depth covering every key of a corpus.
pub fn required_depth<'a>(keys: impl IntoIterator<Item = &'a Key>) -> usize {
    keys.into_iter().map(|k| k.len()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    #[test]
    fn roundtrip() {
        for name in ["DGEMM", "S3L_mat_mult", "PSGESV", "", "A"] {
            let bits = to_bits(&k(name), 16);
            assert_eq!(bits.len(), 128);
            assert_eq!(from_bits(&bits), k(name), "{name}");
        }
    }

    #[test]
    fn order_is_preserved() {
        let names = ["CAXPY", "DGEMM", "DGEMV", "DGETRF", "S3L_fft", "ZTRSM"];
        let mut encoded: Vec<Key> = names.iter().map(|n| to_bits(&k(n), 16)).collect();
        let sorted = encoded.clone();
        encoded.sort();
        assert_eq!(encoded, sorted, "encoding must preserve order");
    }

    #[test]
    fn prefix_relation_survives_encoding_per_byte() {
        // A key that byte-prefixes another bit-prefixes its encoding
        // up to the shared length.
        let a = to_bits(&k("S3L"), 16);
        let b = to_bits(&k("S3L_fft"), 16);
        assert_eq!(&a.as_bytes()[..24], &b.as_bytes()[..24]);
    }

    #[test]
    fn required_depth_covers_corpus() {
        let keys = [k("DGEMM"), k("S3L_set_array_element")];
        assert_eq!(required_depth(keys.iter()), 21);
        assert_eq!(required_depth(std::iter::empty::<&Key>()), 0);
    }
}

#![warn(missing_docs)]
//! # dlpt-baselines — the trie-structured comparators of Table 2
//!
//! Section 5 of the paper positions the DLPT against its two closest
//! relatives and tabulates their complexities (Table 2):
//!
//! | Functionality | P-Grid | PHT | DLPT |
//! |---|---|---|---|
//! | Tree routing | O(log Π) | O(D·log P) | O(D) |
//! | Local state  | O(log Π) | (N/P)·A | (N/P)·A |
//!
//! where `Π` is the key-space partition count, `D` the maximal key
//! length, `A` the alphabet, `N` the tree nodes and `P` the peers.
//!
//! This crate *implements* both comparators so the table can be
//! measured rather than transcribed:
//!
//! * [`pht::PrefixHashTree`] — Ramabhadran et al.'s Prefix Hash Tree:
//!   a binary trie whose vertices are addressed by hashing their prefix
//!   label into a DHT (our `dlpt-dht` Chord); leaves hold up to `B`
//!   keys and split on overflow. Every trie-node access costs one DHT
//!   lookup, which is where the `log P` factor comes from.
//! * [`pgrid::PGrid`] — Aberer et al.'s P-Grid: every peer owns a path
//!   (a binary-string partition of the key space) and keeps, for each
//!   prefix level, references to peers on the opposite branch; prefix
//!   routing resolves a query in O(log Π) overlay hops.
//!
//! Both support exact lookup and range queries over the same key
//! corpora the DLPT experiments use (keys are mapped to fixed-length
//! bit strings by order-preserving encoding, [`encoding`]).

pub mod encoding;
pub mod pgrid;
pub mod pht;

pub use pgrid::PGrid;
pub use pht::PrefixHashTree;

//! P-Grid (Aberer et al.; the range-query variant of Datta et al.,
//! P2P 2005) — the second comparator of Table 2.
//!
//! "P-Grid builds a trie on the whole key-space, each leaf
//! corresponding to a subset of the key-space" (Section 5). Every peer
//! owns one leaf — a binary *path* — and keeps, for each level `l` of
//! its path, references to peers whose path agrees on the first `l`
//! bits and flips bit `l`. Routing resolves at least one more prefix
//! bit per hop, giving the `O(log |Π|)` of Table 2, and the local
//! state is one reference list per path bit — also `O(log |Π|)`.
//!
//! Construction here is the converged state of P-Grid's pairwise
//! exchange protocol: the key space is split recursively (largest
//! partition first) until there are as many partitions as peers, which
//! is what the bootstrap converges to under uniform exchanges.

use crate::encoding::to_bits;
use dlpt_core::key::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One peer of the P-Grid overlay.
#[derive(Debug, Clone)]
pub struct PGridPeer {
    /// The binary path (key-space partition) this peer is responsible
    /// for.
    pub path: Key,
    /// `routing[l]` — peers whose path flips bit `l` of ours (and
    /// agrees before it). P-Grid keeps a few references per level for
    /// fault tolerance.
    pub routing: Vec<Vec<usize>>,
    /// Keys whose encoding extends `path`.
    pub store: Vec<Key>,
}

impl PGridPeer {
    /// Total routing references — the "local state" row of Table 2.
    pub fn state_size(&self) -> usize {
        self.routing.iter().map(Vec::len).sum()
    }
}

/// Counters for Table 2.
#[derive(Debug, Clone, Default)]
pub struct PGridStats {
    /// Lookups routed.
    pub lookups: u64,
    /// Total overlay hops.
    pub hops: u64,
}

/// A P-Grid overlay over a fixed corpus.
#[derive(Debug)]
pub struct PGrid {
    peers: Vec<PGridPeer>,
    /// Partition path → peer indices owning it (sorted by path, which
    /// is also key order — range queries walk this).
    partitions: BTreeMap<Key, Vec<usize>>,
    depth_bytes: usize,
    rng: StdRng,
    /// Lookup counters.
    pub stats: PGridStats,
}

impl PGrid {
    /// Builds the converged overlay: `peers` peers partitioning the
    /// corpus, `refs_per_level` routing references per path bit.
    pub fn build(
        keys: &[Key],
        peers: usize,
        refs_per_level: usize,
        depth_bytes: usize,
        seed: u64,
    ) -> Self {
        assert!(peers >= 1, "need at least one peer");
        let rng = StdRng::seed_from_u64(seed);
        let encoded: Vec<(Key, Key)> = keys
            .iter()
            .map(|k| (to_bits(k, depth_bytes), k.clone()))
            .collect();

        // Recursive splitting, largest partition first, until the
        // partition count reaches the peer count (or partitions stop
        // being splittable).
        let mut parts: Vec<(Key, Vec<(Key, Key)>)> = vec![(Key::epsilon(), encoded)];
        while parts.len() < peers {
            // Find the largest splittable partition.
            let Some((idx, _)) = parts
                .iter()
                .enumerate()
                .filter(|(_, (path, ks))| ks.len() > 1 && path.len() < depth_bytes * 8)
                .max_by_key(|(_, (_, ks))| ks.len())
            else {
                break;
            };
            let (path, ks) = parts.swap_remove(idx);
            let bit = path.len();
            let (zeros, ones): (Vec<_>, Vec<_>) = ks
                .into_iter()
                .partition(|(bits, _)| bits.as_bytes()[bit] == b'0');
            // A split where one side is empty still refines the path —
            // P-Grid does the same when data is skewed.
            parts.push((path.child(b'0'), zeros));
            parts.push((path.child(b'1'), ones));
        }
        parts.sort_by(|a, b| a.0.cmp(&b.0));

        // Assign peers to partitions round-robin (replicas when there
        // are more peers than partitions).
        let mut peer_list: Vec<PGridPeer> = Vec::with_capacity(peers);
        let mut partitions: BTreeMap<Key, Vec<usize>> = BTreeMap::new();
        for i in 0..peers {
            let (path, ks) = &parts[i % parts.len()];
            partitions.entry(path.clone()).or_default().push(i);
            peer_list.push(PGridPeer {
                path: path.clone(),
                routing: Vec::new(),
                store: ks.iter().map(|(_, k)| k.clone()).collect(),
            });
        }

        // Fill routing tables: for each level, sample peers from the
        // flipped-prefix side.
        let mut grid = PGrid {
            peers: peer_list,
            partitions,
            depth_bytes,
            rng,
            stats: PGridStats::default(),
        };
        for i in 0..grid.peers.len() {
            let path = grid.peers[i].path.clone();
            let mut routing = Vec::with_capacity(path.len());
            for l in 0..path.len() {
                let mut flipped = path.truncated(l).as_bytes().to_vec();
                flipped.push(if path.as_bytes()[l] == b'0' {
                    b'1'
                } else {
                    b'0'
                });
                let flipped = Key::from_bytes(flipped);
                let candidates: Vec<usize> = grid
                    .partitions
                    .range(flipped.clone()..)
                    .take_while(|(p, _)| flipped.is_prefix_of(p))
                    .flat_map(|(_, idxs)| idxs.iter().copied())
                    .collect();
                let mut level = Vec::new();
                for _ in 0..refs_per_level
                    .min(candidates.len())
                    .max(usize::from(!candidates.is_empty()))
                {
                    level.push(candidates[grid.rng.gen_range(0..candidates.len())]);
                }
                level.sort_unstable();
                level.dedup();
                routing.push(level);
            }
            grid.peers[i].routing = routing;
        }
        grid
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Number of distinct partitions `|Π|`.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Borrow a peer.
    pub fn peer(&self, i: usize) -> &PGridPeer {
        &self.peers[i]
    }

    /// Mean local state (routing references) per peer — Table 2's
    /// `O(log |Π|)` row, measured.
    pub fn mean_state(&self) -> f64 {
        if self.peers.is_empty() {
            return 0.0;
        }
        self.peers
            .iter()
            .map(|p| p.state_size() as f64)
            .sum::<f64>()
            / self.peers.len() as f64
    }

    /// Exact lookup from a random entry peer. Returns
    /// `(found, overlay hops)`.
    pub fn lookup(&mut self, key: &Key) -> (bool, u32) {
        let entry = self.rng.gen_range(0..self.peers.len());
        self.lookup_from(entry, key)
    }

    /// Exact lookup from a chosen entry peer.
    pub fn lookup_from(&mut self, entry: usize, key: &Key) -> (bool, u32) {
        let bits = to_bits(key, self.depth_bytes);
        let mut cur = entry;
        let mut hops = 0u32;
        self.stats.lookups += 1;
        // Each hop resolves at least one more bit; the path length
        // bounds the walk.
        for _ in 0..=self.depth_bytes * 8 {
            let peer = &self.peers[cur];
            if peer.path.is_prefix_of(&bits) {
                self.stats.hops += hops as u64;
                return (peer.store.contains(key), hops);
            }
            let l = peer.path.gcp_len(&bits);
            let next = peer.routing.get(l).and_then(|refs| {
                if refs.is_empty() {
                    None
                } else {
                    Some(refs[self.rng.gen_range(0..refs.len())])
                }
            });
            match next {
                Some(n) => {
                    cur = n;
                    hops += 1;
                }
                None => {
                    // No reference (empty flipped side): the key's
                    // region holds nothing.
                    self.stats.hops += hops as u64;
                    return (false, hops);
                }
            }
        }
        self.stats.hops += hops as u64;
        (false, hops)
    }

    /// Range query `[lo, hi]`: route to `lo`'s partition, then walk
    /// partitions in key order. Returns `(keys, overlay hops)`.
    pub fn range(&mut self, lo: &Key, hi: &Key) -> (Vec<Key>, u32) {
        let lo_bits = to_bits(lo, self.depth_bytes);
        let hi_bits = to_bits(hi, self.depth_bytes);
        // Route to the partition covering lo (or the first after it).
        let entry = self.rng.gen_range(0..self.peers.len());
        let (_, mut hops) = self.lookup_from(entry, lo);
        let mut out = Vec::new();
        for (path, idxs) in self.partitions.iter() {
            // Partition covers bit strings extending `path`.
            if path > &hi_bits {
                break;
            }
            let below = path < &lo_bits && !path.is_prefix_of(&lo_bits);
            if below {
                continue;
            }
            // One hop to each subsequent partition (sibling walk).
            hops += 1;
            let owner = idxs[0];
            out.extend(
                self.peers[owner]
                    .store
                    .iter()
                    .filter(|k| *k >= lo && *k <= hi)
                    .cloned(),
            );
        }
        out.sort();
        out.dedup();
        (out, hops.saturating_sub(1))
    }

    /// Mean overlay hops per lookup so far.
    pub fn mean_hops(&self) -> f64 {
        if self.stats.lookups == 0 {
            0.0
        } else {
            self.stats.hops as f64 / self.stats.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn corpus() -> Vec<Key> {
        [
            "CAXPY", "CGEMM", "DGEMM", "DGEMV", "DGETRF", "DTRSM", "PSGESV", "PDGEMM", "S3L_fft",
            "S3L_sort", "SGEMM", "ZTRSM",
        ]
        .iter()
        .map(|s| k(s))
        .collect()
    }

    #[test]
    fn partitions_cover_all_keys_once() {
        let keys = corpus();
        let g = PGrid::build(&keys, 8, 2, 16, 1);
        assert!(g.partition_count() <= 8);
        let mut stored: Vec<Key> = Vec::new();
        let mut seen_paths = std::collections::BTreeSet::new();
        for (path, idxs) in g.partitions.iter() {
            seen_paths.insert(path.clone());
            stored.extend(g.peer(idxs[0]).store.iter().cloned());
        }
        stored.sort();
        let mut want = keys.clone();
        want.sort();
        assert_eq!(stored, want, "partitioning must cover every key once");
        // Paths must be prefix-free.
        let paths: Vec<Key> = seen_paths.into_iter().collect();
        for (i, a) in paths.iter().enumerate() {
            for b in &paths[i + 1..] {
                assert!(!a.is_prefix_of(b), "{a} prefixes {b}");
            }
        }
    }

    #[test]
    fn lookup_finds_every_key() {
        let keys = corpus();
        let mut g = PGrid::build(&keys, 8, 2, 16, 2);
        for key in &keys {
            let (found, hops) = g.lookup(key);
            assert!(found, "{key}");
            assert!(hops as usize <= 16 * 8);
        }
        assert!(!g.lookup(&k("NOPE")).0);
    }

    #[test]
    fn hops_scale_logarithmically() {
        // 256 synthetic keys, 64 peers: average hops should be near
        // log2(|Π|) ≈ 6, certainly below 12.
        let keys: Vec<Key> = (0..256).map(|i| Key::from(format!("K{i:03}"))).collect();
        let mut g = PGrid::build(&keys, 64, 2, 8, 3);
        let mut total = 0u32;
        for key in &keys {
            let (found, hops) = g.lookup(key);
            assert!(found);
            total += hops;
        }
        let mean = total as f64 / keys.len() as f64;
        assert!(mean < 12.0, "mean hops {mean}");
        assert!(g.mean_state() > 0.0);
    }

    #[test]
    fn more_peers_than_partitions_replicates() {
        let keys: Vec<Key> = vec![k("A"), k("B")];
        let mut g = PGrid::build(&keys, 10, 2, 4, 4);
        assert_eq!(g.peer_count(), 10);
        assert!(g.partition_count() <= 10);
        for key in &keys {
            assert!(g.lookup(key).0);
        }
    }

    #[test]
    fn range_query_matches_filter() {
        let keys = corpus();
        let mut g = PGrid::build(&keys, 8, 2, 16, 5);
        let (got, _) = g.range(&k("DGEMM"), &k("SGEMM"));
        let mut want: Vec<Key> = keys
            .iter()
            .filter(|x| **x >= k("DGEMM") && **x <= k("SGEMM"))
            .cloned()
            .collect();
        want.sort();
        assert_eq!(got, want);
        let (empty, _) = g.range(&k("AA"), &k("AB"));
        assert!(empty.is_empty());
    }

    #[test]
    fn state_grows_with_partitions() {
        let keys: Vec<Key> = (0..128).map(|i| Key::from(format!("K{i:03}"))).collect();
        let small = PGrid::build(&keys, 8, 1, 8, 6);
        let large = PGrid::build(&keys, 64, 1, 8, 6);
        assert!(
            large.mean_state() > small.mean_state(),
            "{} vs {}",
            large.mean_state(),
            small.mean_state()
        );
    }
}

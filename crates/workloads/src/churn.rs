//! Churn models: join/leave volumes per simulated time unit.
//!
//! Figures 4–5 run "a relatively stable network. It means that the
//! number of peers joining and leaving the system were intentionally
//! low"; Figures 6–8 run the dynamic platform where "10% of the nodes
//! are replaced at each time unit".

use rand::{Rng, RngCore};

/// Fractions of the peer population joining and leaving each unit.
///
/// `leave_fraction` models the paper's *graceful* departures (the peer
/// hands its nodes over before going); `crash_rate` is the replication
/// extension's *non-graceful* departures — the peer vanishes with its
/// state, the failure mode `protocol::repair` exists to survive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    /// Fraction of `|peers|` joining per unit.
    pub join_fraction: f64,
    /// Fraction of `|peers|` leaving gracefully per unit.
    pub leave_fraction: f64,
    /// Fraction of `|peers|` crashing (non-gracefully) per unit.
    pub crash_rate: f64,
}

impl ChurnModel {
    /// No churn at all.
    pub fn none() -> Self {
        ChurnModel {
            join_fraction: 0.0,
            leave_fraction: 0.0,
            crash_rate: 0.0,
        }
    }

    /// The paper's "relatively stable" network: intentionally low
    /// churn (2% per unit).
    pub fn stable() -> Self {
        ChurnModel {
            join_fraction: 0.02,
            leave_fraction: 0.02,
            crash_rate: 0.0,
        }
    }

    /// The paper's dynamic network: "10% of the nodes are replaced at
    /// each time unit".
    pub fn dynamic() -> Self {
        ChurnModel {
            join_fraction: 0.10,
            leave_fraction: 0.10,
            crash_rate: 0.0,
        }
    }

    /// A failure-heavy network: joins keep the population level while a
    /// visible share of departures is non-graceful (crashes), the
    /// regime the `figR` replication experiment studies.
    pub fn crashy() -> Self {
        ChurnModel {
            join_fraction: 0.07,
            leave_fraction: 0.02,
            crash_rate: 0.05,
        }
    }

    /// Copy of this model with a different crash rate (the `figR`
    /// sweep axis; also `fig5 --crash-rate`).
    pub fn with_crash_rate(mut self, rate: f64) -> Self {
        self.crash_rate = rate.max(0.0);
        self
    }

    /// Number of peers joining this unit. Fractional expectations are
    /// resolved probabilistically so low rates still churn sometimes.
    pub fn joins(&self, peer_count: usize, rng: &mut dyn RngCore) -> usize {
        resolve(self.join_fraction * peer_count as f64, rng)
    }

    /// Number of peers leaving gracefully this unit (never empties the
    /// ring).
    pub fn leaves(&self, peer_count: usize, rng: &mut dyn RngCore) -> usize {
        resolve(self.leave_fraction * peer_count as f64, rng).min(peer_count.saturating_sub(1))
    }

    /// Number of peers crashing this unit (never empties the ring).
    /// Draws no randomness at a zero rate, so pre-crash experiment
    /// streams replay byte-identically.
    pub fn crashes(&self, peer_count: usize, rng: &mut dyn RngCore) -> usize {
        resolve(self.crash_rate * peer_count as f64, rng).min(peer_count.saturating_sub(1))
    }
}

/// Integer part plus a Bernoulli trial on the remainder.
fn resolve(expected: f64, rng: &mut dyn RngCore) -> usize {
    let whole = expected.floor() as usize;
    let frac = expected - whole as f64;
    whole + usize::from(frac > 0.0 && rng.gen_bool(frac.min(1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dynamic_replaces_ten_percent() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = ChurnModel::dynamic();
        assert_eq!(m.joins(100, &mut rng), 10);
        assert_eq!(m.leaves(100, &mut rng), 10);
    }

    #[test]
    fn stable_is_low_but_nonzero_in_expectation() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = ChurnModel::stable();
        let total: usize = (0..1000).map(|_| m.joins(100, &mut rng)).sum();
        // E[total] = 1000 * 2 = 2000.
        assert!((1800..2200).contains(&total), "{total}");
    }

    #[test]
    fn fractional_rates_bernoulli() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = ChurnModel {
            join_fraction: 0.005,
            leave_fraction: 0.0,
            crash_rate: 0.0,
        };
        // 100 peers → expectation 0.5 per unit.
        let total: usize = (0..2000).map(|_| m.joins(100, &mut rng)).sum();
        assert!((850..1150).contains(&total), "{total}");
        assert_eq!(m.leaves(100, &mut rng), 0);
    }

    #[test]
    fn leaves_never_empty_the_ring() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = ChurnModel {
            join_fraction: 0.0,
            leave_fraction: 5.0,
            crash_rate: 5.0,
        };
        assert_eq!(m.leaves(3, &mut rng), 2);
        assert_eq!(m.leaves(1, &mut rng), 0);
        assert_eq!(m.leaves(0, &mut rng), 0);
        assert_eq!(m.crashes(3, &mut rng), 2);
        assert_eq!(m.crashes(1, &mut rng), 0);
    }

    #[test]
    fn none_is_silent() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = ChurnModel::none();
        for _ in 0..100 {
            assert_eq!(m.joins(100, &mut rng), 0);
            assert_eq!(m.leaves(100, &mut rng), 0);
            assert_eq!(m.crashes(100, &mut rng), 0);
        }
    }

    #[test]
    fn zero_crash_rate_consumes_no_randomness() {
        // Byte-identical replay guarantee: the paper experiments (no
        // crashes) must draw the same random stream with or without
        // the crash step in the loop.
        let mut with_step = StdRng::seed_from_u64(6);
        let mut without = StdRng::seed_from_u64(6);
        let m = ChurnModel::stable();
        for _ in 0..50 {
            assert_eq!(m.crashes(100, &mut with_step), 0);
        }
        assert_eq!(with_step.gen::<u64>(), without.gen::<u64>());
    }

    #[test]
    fn crashy_preset_mixes_graceful_and_crash_departures() {
        let m = ChurnModel::crashy();
        assert!(m.crash_rate > 0.0);
        assert!(m.leave_fraction > 0.0);
        assert!(
            (m.join_fraction - (m.leave_fraction + m.crash_rate)).abs() < 1e-12,
            "population stays level in expectation"
        );
        let mut rng = StdRng::seed_from_u64(7);
        let total: usize = (0..1000).map(|_| m.crashes(100, &mut rng)).sum();
        assert!((4200..5800).contains(&total), "{total}");
        assert_eq!(ChurnModel::stable().with_crash_rate(0.01).crash_rate, 0.01);
    }
}

//! Popularity models: how discovery requests pick their targets.
//!
//! "During first experiments, services requested were randomly picked
//! among the set of available services" (uniform). The hot-spot
//! experiment (Figure 8) switches, on a schedule, to bursts aimed at
//! lexicographically clustered families ("S3L…" then "P…"); and the
//! related-work discussion motivates skew in general — [`Zipf`] is
//! provided for the ablation benches.

use dlpt_core::key::Key;
use rand::{Rng, RngCore};

/// Picks the target of one request at simulated time `time`.
pub trait Popularity {
    /// Short name for reports.
    fn name(&self) -> &'static str;
    /// Index of the requested key within `keys`.
    fn pick(&mut self, keys: &[Key], rng: &mut dyn RngCore, time: u32) -> usize;
}

/// Uniform choice over the registered services.
#[derive(Debug, Clone, Copy, Default)]
pub struct Uniform;

impl Popularity for Uniform {
    fn name(&self) -> &'static str {
        "uniform"
    }
    fn pick(&mut self, keys: &[Key], rng: &mut dyn RngCore, _time: u32) -> usize {
        rng.gen_range(0..keys.len())
    }
}

/// Zipf-distributed choice: rank `r` (0-based) drawn with probability
/// ∝ `1/(r+1)^s`. Ranks map to key indices directly (the corpus order
/// is already arbitrary with respect to popularity).
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Skew parameter (`s = 0` degenerates to uniform).
    pub s: f64,
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf model with skew `s`.
    pub fn new(s: f64) -> Self {
        Zipf { s, cdf: Vec::new() }
    }

    fn ensure_cdf(&mut self, n: usize) {
        if self.cdf.len() == n {
            return;
        }
        let mut acc = 0.0;
        self.cdf = (0..n)
            .map(|r| {
                acc += 1.0 / ((r + 1) as f64).powf(self.s);
                acc
            })
            .collect();
        let total = acc;
        for v in &mut self.cdf {
            *v /= total;
        }
    }
}

impl Popularity for Zipf {
    fn name(&self) -> &'static str {
        "zipf"
    }
    fn pick(&mut self, keys: &[Key], rng: &mut dyn RngCore, _time: u32) -> usize {
        self.ensure_cdf(keys.len());
        let u: f64 = rng.gen();
        self.cdf.partition_point(|c| *c < u).min(keys.len() - 1)
    }
}

/// One phase of a [`HotspotSchedule`].
#[derive(Debug, Clone)]
pub struct Phase {
    /// First time unit of the phase (inclusive).
    pub from: u32,
    /// End of the phase (exclusive).
    pub to: u32,
    /// Hot prefix; `None` means uniform traffic.
    pub hot_prefix: Option<Key>,
    /// Fraction of requests aimed at the hot region (rest uniform).
    pub hot_fraction: f64,
}

impl Phase {
    /// A uniform-traffic phase.
    pub fn uniform(from: u32, to: u32) -> Self {
        Phase {
            from,
            to,
            hot_prefix: None,
            hot_fraction: 0.0,
        }
    }

    /// A burst phase: `fraction` of requests target keys extending
    /// `prefix`.
    pub fn burst(from: u32, to: u32, prefix: impl Into<Key>, fraction: f64) -> Self {
        Phase {
            from,
            to,
            hot_prefix: Some(prefix.into()),
            hot_fraction: fraction.clamp(0.0, 1.0),
        }
    }
}

/// The Figure 8 workload: a timeline of phases, each either uniform or
/// bursting onto one lexicographic region.
#[derive(Debug, Clone)]
pub struct HotspotSchedule {
    phases: Vec<Phase>,
    /// (prefix, indices) cache; corpora are immutable during a run.
    cache: Vec<(Key, Vec<usize>)>,
}

impl HotspotSchedule {
    /// Builds a schedule from phases (checked for ordering).
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "schedule needs at least one phase");
        for w in phases.windows(2) {
            assert!(
                w[0].to <= w[1].from,
                "phases must be ordered and non-overlapping"
            );
        }
        HotspotSchedule {
            phases,
            cache: Vec::new(),
        }
    }

    /// The paper's Figure 8 timeline: uniform until 40, "S3L" burst
    /// over [40, 80), ScaLAPACK "P" burst over [80, 120), uniform
    /// again for the last 40 units.
    pub fn figure8(hot_fraction: f64) -> Self {
        HotspotSchedule::new(vec![
            Phase::uniform(0, 40),
            Phase::burst(40, 80, "S3L", hot_fraction),
            Phase::burst(80, 120, "P", hot_fraction),
            Phase::uniform(120, u32::MAX),
        ])
    }

    fn phase_at(&self, time: u32) -> &Phase {
        self.phases
            .iter()
            .find(|p| time >= p.from && time < p.to)
            .unwrap_or_else(|| self.phases.last().expect("non-empty"))
    }

    fn hot_indices(&mut self, keys: &[Key], prefix: &Key) -> &[usize] {
        if let Some(pos) = self.cache.iter().position(|(p, _)| p == prefix) {
            return &self.cache[pos].1;
        }
        let idx: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|(_, k)| prefix.is_prefix_of(k))
            .map(|(i, _)| i)
            .collect();
        self.cache.push((prefix.clone(), idx));
        &self.cache.last().expect("just pushed").1
    }

    /// The phase boundaries, for chart annotations.
    pub fn boundaries(&self) -> Vec<u32> {
        self.phases.iter().map(|p| p.from).collect()
    }
}

impl Popularity for HotspotSchedule {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn pick(&mut self, keys: &[Key], rng: &mut dyn RngCore, time: u32) -> usize {
        let phase = self.phase_at(time).clone();
        if let Some(prefix) = &phase.hot_prefix {
            if rng.gen_bool(phase.hot_fraction) {
                let hot = self.hot_indices(keys, prefix);
                if !hot.is_empty() {
                    let i = rng.gen_range(0..hot.len());
                    return hot[i];
                }
            }
        }
        rng.gen_range(0..keys.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> Vec<Key> {
        Corpus::grid().keys
    }

    #[test]
    fn uniform_covers_the_corpus() {
        let ks = keys();
        let mut rng = StdRng::seed_from_u64(1);
        let mut pop = Uniform;
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..5000 {
            seen.insert(pop.pick(&ks, &mut rng, 0));
        }
        assert!(seen.len() > ks.len() / 2);
        assert!(seen.iter().all(|i| *i < ks.len()));
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let ks = keys();
        let mut rng = StdRng::seed_from_u64(2);
        let mut pop = Zipf::new(1.2);
        let mut counts = vec![0u32; ks.len()];
        for _ in 0..20_000 {
            counts[pop.pick(&ks, &mut rng, 0)] += 1;
        }
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[ks.len() - 10..].iter().sum();
        assert!(
            head > 10 * tail.max(1),
            "Zipf head {head} should dwarf tail {tail}"
        );
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let ks: Vec<Key> = (0..50).map(|i| Key::from(format!("K{i:02}"))).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let mut pop = Zipf::new(0.0);
        let mut counts = vec![0u32; ks.len()];
        for _ in 0..50_000 {
            counts[pop.pick(&ks, &mut rng, 0)] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max < 2 * min, "spread {min}..{max} too wide for s=0");
    }

    #[test]
    fn figure8_schedule_bursts_in_order() {
        let ks = keys();
        let mut rng = StdRng::seed_from_u64(4);
        let mut pop = HotspotSchedule::figure8(0.9);
        let s3l = Key::from("S3L");
        let p = Key::from("P");

        let frac_with_prefix =
            |pop: &mut HotspotSchedule, rng: &mut StdRng, time: u32, prefix: &Key| {
                let hits = (0..2000)
                    .filter(|_| prefix.is_prefix_of(&ks[pop.pick(&ks, rng, time)]))
                    .count();
                hits as f64 / 2000.0
            };

        // Uniform phase: S3L's natural share is small (~5%).
        assert!(frac_with_prefix(&mut pop, &mut rng, 10, &s3l) < 0.2);
        // S3L burst phase.
        assert!(frac_with_prefix(&mut pop, &mut rng, 60, &s3l) > 0.8);
        // ScaLAPACK burst phase.
        assert!(frac_with_prefix(&mut pop, &mut rng, 100, &p) > 0.8);
        assert!(frac_with_prefix(&mut pop, &mut rng, 100, &s3l) < 0.2);
        // Back to uniform.
        assert!(frac_with_prefix(&mut pop, &mut rng, 140, &s3l) < 0.2);
    }

    #[test]
    fn schedule_falls_back_to_last_phase() {
        let mut pop = HotspotSchedule::new(vec![Phase::uniform(0, 10)]);
        let ks = keys();
        let mut rng = StdRng::seed_from_u64(5);
        // Time beyond the last phase end: still answers.
        let i = pop.pick(&ks, &mut rng, 1000);
        assert!(i < ks.len());
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn overlapping_phases_rejected() {
        HotspotSchedule::new(vec![Phase::uniform(0, 20), Phase::uniform(10, 30)]);
    }

    #[test]
    fn burst_on_absent_prefix_degrades_to_uniform() {
        let ks: Vec<Key> = (0..20).map(|i| Key::from(format!("K{i:02}"))).collect();
        let mut pop = HotspotSchedule::new(vec![Phase::burst(0, 10, "ZZZ", 1.0)]);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let i = pop.pick(&ks, &mut rng, 5);
            assert!(i < ks.len());
        }
    }
}

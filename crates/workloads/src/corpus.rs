//! Service-name corpora.
//!
//! The paper builds its trees from "identifiers commonly encountered
//! in a grid computing context such as names of linear algebra
//! routines" and sizes the tree at "around 1000" nodes over "~100"
//! peers. The corpora here combine the genuine BLAS/LAPACK/ScaLAPACK/
//! S3L naming grids; the systematic precision × operation structure is
//! exactly what gives the trees their characteristic shared-prefix
//! shape (and what makes the `S3L`/`P` hot spots of Figure 8
//! lexicographically clustered).

use dlpt_core::key::Key;
use rand::Rng;

/// BLAS level-1/2/3 operation roots (precision-independent part).
#[rustfmt::skip]
const BLAS_ROOTS: &[&str] = &[
    // Level 1
    "AXPY", "SCAL", "COPY", "SWAP", "DOT", "NRM2", "ASUM", "ROT", "ROTG", "ROTM", "ROTMG",
    // Level 2
    "GEMV", "GBMV", "SYMV", "SBMV", "SPMV", "TRMV", "TBMV", "TPMV", "TRSV", "TBSV", "TPSV", "GER",
    "SYR", "SPR", "SYR2", "SPR2",
    // Level 3
    "GEMM", "SYMM", "SYRK", "SYR2K", "TRMM", "TRSM",
];

/// LAPACK driver/computational roots used to pad the corpus to the
/// paper's tree size with realistic names.
const LAPACK_ROOTS: &[&str] = &[
    "GESV", "GBSV", "GTSV", "POSV", "PBSV", "PTSV", "SYSV", "GELS", "GELSD", "GELSS", "GEEV",
    "GEES", "SYEV", "SYEVD", "SYEVR", "GESVD", "GESDD", "GETRF", "GETRS", "GETRI", "GEQRF",
    "GERQF", "GELQF", "GEQLF", "POTRF", "POTRS", "POTRI", "PBTRF", "PTTRF", "SYTRF", "SYTRS",
    "TRTRS", "TRTRI", "GEBRD", "GEHRD", "SYTRD", "ORGQR", "ORMQR", "GGEV", "GGES", "GGSVD",
    "GEBAL", "GEBAK", "LANGE", "LANSY", "LACPY", "LASET", "GECON", "GBCON", "POCON", "PBCON",
    "PTCON", "TRCON", "TPCON", "TBCON", "SYCON", "GERFS", "GBRFS", "PORFS", "PBRFS", "PTRFS",
    "TRRFS", "SYRFS", "GEEQU", "GBEQU", "POEQU", "PBEQU", "LANGB", "LANGT", "LANTR", "LANTP",
    "LANTB", "LANSP", "LANSB", "LANST", "LANHS", "LASWP", "LARFT", "LARFB", "LARFG", "LARF",
    "LARTG", "LASCL", "LASSQ", "LAPY2", "ORGLQ", "ORMLQ", "ORGRQ", "ORMRQ", "ORGQL", "ORMQL",
    "ORGBR", "ORMBR", "ORGTR", "ORMTR", "ORGHR", "ORMHR", "HSEQR", "HSEIN", "TREVC", "TREXC",
    "TRSEN", "TRSNA", "TRSYL", "GGBAL", "GGBAK", "GGHRD", "TGEVC", "TGEXC", "TGSEN", "TGSJA",
    "TGSNA", "TGSYL", "GELSY", "GETC2", "GESC2", "LATRS", "LATRD", "LAUUM", "LAULN", "LAHQR",
    "LAHRD", "STEQR", "STEDC", "STEIN", "STEBZ", "STERF", "PTEQR", "BDSQR", "BDSDC",
];

/// The four standard precision prefixes.
const PRECISIONS: &[&str] = &["S", "D", "C", "Z"];

/// Genuine Sun S3L routine names (the Figure 8 hot-spot family).
const S3L_NAMES: &[&str] = &[
    "S3L_mat_mult",
    "S3L_matvec_mult",
    "S3L_mat_trans",
    "S3L_mat_vec_mult",
    "S3L_inner_prod",
    "S3L_outer_prod",
    "S3L_norm",
    "S3L_axpy",
    "S3L_lu_factor",
    "S3L_lu_solve",
    "S3L_lu_invert",
    "S3L_lu_deallocate",
    "S3L_qr_factor",
    "S3L_qr_solve",
    "S3L_cholesky_factor",
    "S3L_cholesky_solve",
    "S3L_eigen",
    "S3L_eigen_vec",
    "S3L_sym_eigen",
    "S3L_gen_eigen",
    "S3L_fft",
    "S3L_ifft",
    "S3L_fft_setup",
    "S3L_fft_free",
    "S3L_rc_fft",
    "S3L_cr_fft",
    "S3L_sort",
    "S3L_sort_up",
    "S3L_sort_down",
    "S3L_sort_detailed",
    "S3L_grade_up",
    "S3L_grade_down",
    "S3L_rank",
    "S3L_gen_lsq",
    "S3L_gen_svd",
    "S3L_gen_band_factor",
    "S3L_gen_band_solve",
    "S3L_gen_trid_factor",
    "S3L_gen_trid_solve",
    "S3L_rand_fib",
    "S3L_rand_lcg",
    "S3L_declare",
    "S3L_free",
    "S3L_read_array",
    "S3L_write_array",
    "S3L_print_array",
    "S3L_copy_array",
    "S3L_set_array_element",
    "S3L_get_array_element",
    "S3L_reduce",
    "S3L_reduce_axis",
    "S3L_scan",
    "S3L_shift",
    "S3L_transpose",
    "S3L_walsh",
    "S3L_conv",
    "S3L_deconv",
    "S3L_acorr",
    "S3L_xcorr",
];

/// A named collection of service keys.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// The keys, sorted and deduplicated.
    pub keys: Vec<Key>,
}

impl Corpus {
    fn build(name: &'static str, mut raw: Vec<String>) -> Self {
        raw.sort();
        raw.dedup();
        Corpus {
            name,
            keys: raw.into_iter().map(Key::from).collect(),
        }
    }

    /// The BLAS naming grid: precision × operation (≈ 130 routines).
    pub fn blas() -> Self {
        let raw = PRECISIONS
            .iter()
            .flat_map(|p| BLAS_ROOTS.iter().map(move |r| format!("{p}{r}")))
            .collect();
        Corpus::build("BLAS", raw)
    }

    /// LAPACK drivers/computational routines, precision-expanded.
    pub fn lapack() -> Self {
        let raw = PRECISIONS
            .iter()
            .flat_map(|p| LAPACK_ROOTS.iter().map(move |r| format!("{p}{r}")))
            .collect();
        Corpus::build("LAPACK", raw)
    }

    /// ScaLAPACK: the parallel "P"-prefixed counterparts — the second
    /// hot-spot family of Figure 8 ("functions begin with P").
    pub fn scalapack() -> Self {
        let raw = PRECISIONS
            .iter()
            .flat_map(|p| {
                BLAS_ROOTS
                    .iter()
                    .chain(LAPACK_ROOTS.iter())
                    .map(move |r| format!("P{p}{r}"))
            })
            .collect();
        Corpus::build("ScaLAPACK", raw)
    }

    /// Sun S3L — the first hot-spot family of Figure 8 ("most of S3L
    /// routines are named by a string beginning by S3L").
    pub fn s3l() -> Self {
        Corpus::build("S3L", S3L_NAMES.iter().map(|s| s.to_string()).collect())
    }

    /// The full grid corpus used by the experiments: BLAS + LAPACK +
    /// ScaLAPACK + S3L (≈ 1000 keys, matching the paper's "number of
    /// nodes around 1000").
    pub fn grid() -> Self {
        let mut raw: Vec<String> = Vec::new();
        for c in [
            Corpus::blas(),
            Corpus::lapack(),
            Corpus::scalapack(),
            Corpus::s3l(),
        ] {
            raw.extend(c.keys.iter().map(|k| k.to_string()));
        }
        Corpus::build("grid", raw)
    }

    /// Random binary identifiers (Figure 1(a) style) — used by
    /// property tests and the binary-alphabet experiments.
    pub fn binary<R: Rng + ?Sized>(n: usize, len: usize, rng: &mut R) -> Self {
        let mut raw: Vec<String> = Vec::with_capacity(n);
        while raw.len() < n {
            let s: String = (0..len)
                .map(|_| if rng.gen_bool(0.5) { '1' } else { '0' })
                .collect();
            raw.push(s);
        }
        Corpus::build("binary", raw)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True iff the corpus has no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Indices of keys extending `prefix` (the hot-spot region).
    pub fn indices_with_prefix(&self, prefix: &Key) -> Vec<usize> {
        self.keys
            .iter()
            .enumerate()
            .filter(|(_, k)| prefix.is_prefix_of(k))
            .map(|(i, _)| i)
            .collect()
    }

    /// A deterministic sub-sample of `n` keys (every ⌈len/n⌉-th key),
    /// for scaled-down benches.
    pub fn take_spread(&self, n: usize) -> Vec<Key> {
        if n == 0 || self.keys.is_empty() {
            return Vec::new();
        }
        if n >= self.keys.len() {
            return self.keys.clone();
        }
        let step = self.keys.len() as f64 / n as f64;
        (0..n)
            .map(|i| self.keys[(i as f64 * step) as usize].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blas_contains_classics() {
        let c = Corpus::blas();
        for name in ["DGEMM", "SGEMV", "ZTRSM", "SAXPY", "DDOT"] {
            assert!(c.keys.contains(&Key::from(name)), "{name}");
        }
        assert!(c.len() > 100, "got {}", c.len());
    }

    #[test]
    fn scalapack_keys_start_with_p() {
        let c = Corpus::scalapack();
        assert!(c.keys.iter().all(|k| k.as_bytes()[0] == b'P'));
        assert!(c.keys.contains(&Key::from("PDGESV")));
        assert!(c.len() > 250);
    }

    #[test]
    fn s3l_keys_share_prefix() {
        let c = Corpus::s3l();
        let p = Key::from("S3L");
        assert!(c.keys.iter().all(|k| p.is_prefix_of(k)));
        assert!(c.len() >= 50);
    }

    #[test]
    fn grid_corpus_is_paper_scale() {
        let c = Corpus::grid();
        assert!(
            (800..=1400).contains(&c.len()),
            "grid corpus should be ≈1000 keys, got {}",
            c.len()
        );
        // Sorted and unique.
        let mut sorted = c.keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, c.keys);
        // All three experiment families present.
        assert!(!c.indices_with_prefix(&Key::from("S3L")).is_empty());
        assert!(!c.indices_with_prefix(&Key::from("P")).is_empty());
        assert!(!c.indices_with_prefix(&Key::from("D")).is_empty());
    }

    #[test]
    fn prefix_indices_match_manual_scan() {
        let c = Corpus::grid();
        let p = Key::from("S3L");
        let idx = c.indices_with_prefix(&p);
        assert_eq!(idx.len(), Corpus::s3l().len());
        for i in idx {
            assert!(p.is_prefix_of(&c.keys[i]));
        }
    }

    #[test]
    fn binary_corpus_deterministic() {
        let mut r1 = StdRng::seed_from_u64(4);
        let mut r2 = StdRng::seed_from_u64(4);
        let a = Corpus::binary(100, 12, &mut r1);
        let b = Corpus::binary(100, 12, &mut r2);
        assert_eq!(a.keys, b.keys);
        assert!(a.len() <= 100); // duplicates collapse
        assert!(a.len() > 80);
    }

    #[test]
    fn take_spread_bounds() {
        let c = Corpus::grid();
        assert_eq!(c.take_spread(0).len(), 0);
        assert_eq!(c.take_spread(10).len(), 10);
        assert_eq!(c.take_spread(10_000).len(), c.len());
        // Spread picks distinct keys.
        let picked = c.take_spread(50);
        let mut dedup = picked.clone();
        dedup.dedup();
        assert_eq!(picked.len(), dedup.len());
    }
}

#![warn(missing_docs)]
//! # dlpt-workloads — workload generation for the DLPT experiments
//!
//! Section 4 of the paper: "The prefix trees are built with identifiers
//! commonly encountered in a grid computing context such as names of
//! linear algebra routines." The hot-spot experiment (Figure 8) bursts
//! requests onto the Sun S3L library (names prefixed `S3L`) and then
//! onto ScaLAPACK (names prefixed `P`).
//!
//! * [`corpus`] — service-name corpora: BLAS, LAPACK, ScaLAPACK, S3L
//!   routine families plus binary-identifier sets;
//! * [`popularity`] — how requests pick targets: uniform, Zipf, and
//!   the phase-scheduled prefix bursts of Figure 8;
//! * [`churn`] — join/leave volumes per time unit (stable vs dynamic
//!   network);
//! * [`capacity`] — heterogeneous peer capacities with the paper's
//!   max/min ratio of 4.

pub mod capacity;
pub mod churn;
pub mod corpus;
pub mod popularity;

pub use capacity::CapacityModel;
pub use churn::ChurnModel;
pub use corpus::Corpus;
pub use popularity::{HotspotSchedule, Phase, Popularity, Uniform, Zipf};

//! Heterogeneous peer capacities.
//!
//! Section 4: "the capacity of a peer refers to the maximum number of
//! requests processed by it during one time unit … The ratio between
//! the most and the least powerful peers is 4." Capacities are fixed
//! for a peer's lifetime ("the peers capacity does not change over
//! time").

use rand::{Rng, RngCore};

/// Draws peer capacities uniformly from `[base, base * ratio]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityModel {
    /// Capacity of the least powerful peer.
    pub base: u32,
    /// Max/min capacity ratio (paper: 4).
    pub ratio: u32,
}

impl CapacityModel {
    /// The paper's heterogeneity: ratio 4 over the given base.
    pub fn paper(base: u32) -> Self {
        CapacityModel { base, ratio: 4 }
    }

    /// A homogeneous platform (used by the ablation benches, and the
    /// assumption the paper criticizes PHT/P-Grid for making).
    pub fn homogeneous(capacity: u32) -> Self {
        CapacityModel {
            base: capacity,
            ratio: 1,
        }
    }

    /// Draws one capacity.
    pub fn draw(&self, rng: &mut dyn RngCore) -> u32 {
        let hi = self.base.saturating_mul(self.ratio);
        if hi <= self.base {
            return self.base;
        }
        rng.gen_range(self.base..=hi)
    }

    /// Expected capacity of one peer.
    pub fn expected(&self) -> f64 {
        (self.base as f64 + (self.base * self.ratio) as f64) / 2.0
    }

    /// Expected aggregated capacity of `n` peers — the denominator of
    /// Table 1's load percentages.
    pub fn expected_aggregate(&self, n: usize) -> f64 {
        self.expected() * n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ratio_four_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = CapacityModel::paper(25);
        let draws: Vec<u32> = (0..1000).map(|_| m.draw(&mut rng)).collect();
        let min = *draws.iter().min().unwrap();
        let max = *draws.iter().max().unwrap();
        assert!(min >= 25);
        assert!(max <= 100);
        // Both ends of the range actually occur.
        assert!(min < 30, "{min}");
        assert!(max > 95, "{max}");
    }

    #[test]
    fn homogeneous_is_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = CapacityModel::homogeneous(40);
        for _ in 0..100 {
            assert_eq!(m.draw(&mut rng), 40);
        }
        assert_eq!(m.expected(), 40.0);
    }

    #[test]
    fn expected_aggregate_scales() {
        let m = CapacityModel::paper(20);
        // E = (20 + 80) / 2 = 50 per peer.
        assert_eq!(m.expected(), 50.0);
        assert_eq!(m.expected_aggregate(100), 5000.0);
    }

    #[test]
    fn draw_is_deterministic_per_seed() {
        let m = CapacityModel::paper(25);
        let a: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| m.draw(&mut rng)).collect()
        };
        let b: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| m.draw(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}

//! Property tests of the workload generators.

use dlpt_core::key::Key;
use dlpt_workloads::capacity::CapacityModel;
use dlpt_workloads::churn::ChurnModel;
use dlpt_workloads::popularity::{HotspotSchedule, Phase, Popularity, Uniform, Zipf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Capacities always honour the [base, base*ratio] bounds.
    #[test]
    fn capacity_bounds(base in 1u32..1000, ratio in 1u32..8, seed in any::<u64>()) {
        let m = CapacityModel { base, ratio };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let c = m.draw(&mut rng);
            prop_assert!(c >= base);
            prop_assert!(c <= base.saturating_mul(ratio));
        }
    }

    /// Churn leave counts never exceed peers - 1.
    #[test]
    fn churn_never_empties(frac in 0.0f64..3.0, peers in 0usize..200, seed in any::<u64>()) {
        let m = ChurnModel { join_fraction: frac, leave_fraction: frac, crash_rate: frac };
        let mut rng = StdRng::seed_from_u64(seed);
        let leaves = m.leaves(peers, &mut rng);
        prop_assert!(leaves <= peers.saturating_sub(1));
        let crashes = m.crashes(peers, &mut rng);
        prop_assert!(crashes <= peers.saturating_sub(1));
    }

    /// Every popularity model returns in-bounds indices for any corpus.
    #[test]
    fn popularity_in_bounds(
        n in 1usize..200,
        s in 0.0f64..2.5,
        frac in 0.0f64..1.0,
        time in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let keys: Vec<Key> = (0..n).map(|i| Key::from(format!("K{i:03}"))).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut models: Vec<Box<dyn Popularity>> = vec![
            Box::new(Uniform),
            Box::new(Zipf::new(s)),
            Box::new(HotspotSchedule::new(vec![Phase::burst(0, u32::MAX, "K0", frac)])),
        ];
        for m in models.iter_mut() {
            for _ in 0..10 {
                let i = m.pick(&keys, &mut rng, time);
                prop_assert!(i < keys.len(), "{} out of bounds", m.name());
            }
        }
    }

    /// Zipf with identical seeds is reproducible.
    #[test]
    fn zipf_deterministic(s in 0.1f64..2.0, seed in any::<u64>()) {
        let keys: Vec<Key> = (0..50).map(|i| Key::from(format!("K{i:02}"))).collect();
        let sample = |sd| {
            let mut rng = StdRng::seed_from_u64(sd);
            let mut z = Zipf::new(s);
            (0..20).map(|_| z.pick(&keys, &mut rng, 0)).collect::<Vec<_>>()
        };
        prop_assert_eq!(sample(seed), sample(seed));
    }
}

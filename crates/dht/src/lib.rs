#![warn(missing_docs)]
//! # dlpt-dht — a Chord distributed hash table
//!
//! The original DLPT design ([Caron, Desprez & Tedeschi, P2P 2006])
//! mapped the prefix tree onto the physical network through a DHT,
//! "using the Chord mapping technique, i.e. mapping a key on the peer
//! with the lowest identifier higher than the key" (Section 2 of the
//! 2008 paper, Figure 2). The 2008 paper's first contribution is
//! *avoiding* that DHT; this crate exists so the claim can be
//! evaluated rather than assumed:
//!
//! * [`mapping::RandomMapping`] reproduces the hash-based node→peer
//!   placement of the original design — the "random mapping" curve of
//!   Figure 9 that destroys lexicographic locality;
//! * [`chord::ChordNetwork`] is a full Chord implementation (finger
//!   tables, successor lists, join/leave/fail with stabilization,
//!   iterative lookup with hop accounting, a key-value store) used as
//!   the substrate of the PHT comparator in `dlpt-baselines`
//!   (Table 2).
//!
//! Everything is deterministic and in-process: identifiers are 64-bit
//! FNV-1a hashes ([`hash`]), the ring arithmetic lives in [`ring`].

pub mod chord;
pub mod hash;
pub mod mapping;
pub mod ring;

pub use chord::{ChordNetwork, ChordStats, LookupResult};
pub use hash::fnv1a64;
pub use mapping::RandomMapping;

//! FNV-1a 64-bit hashing.
//!
//! The DHT needs a deterministic, well-distributed hash from arbitrary
//! byte strings to the 64-bit identifier circle. FNV-1a is tiny, has no
//! dependencies, and its distribution is more than adequate for
//! simulation-scale rings (the original Chord paper uses SHA-1 for
//! adversarial robustness, which is irrelevant here — see DESIGN.md).

/// FNV-1a offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a byte string to a 64-bit ring identifier.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Hashes with an additional seed, for derived identifier families
/// (e.g. virtual nodes, multi-hash load balancing à la Byers et al.).
pub fn fnv1a64_seeded(bytes: &[u8], seed: u64) -> u64 {
    let mut h = OFFSET ^ seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    // One extra round mixes the seed through short inputs.
    h ^= seed;
    h.wrapping_mul(PRIME)
}

/// Finalizer giving full avalanche (splitmix64's mixer). Raw FNV-1a
/// diffuses trailing bytes into the *low* bits only, so similar names
/// ("S3L_routine_01", "S3L_routine_02", …) share their high bits and
/// pile into one arc of the 2^64 circle. Ring placement must mix.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The hash used for ring identifiers: FNV-1a with an avalanche
/// finalizer. Deterministic and well spread even over near-identical
/// inputs.
pub fn ring_hash(bytes: &[u8]) -> u64 {
    mix(fnv1a64(bytes))
}

/// Seeded ring hash, for derived identifier families.
pub fn ring_hash_seeded(bytes: &[u8], seed: u64) -> u64 {
    mix(fnv1a64_seeded(bytes, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn ring_hash_spreads_high_bits() {
        assert_eq!(ring_hash(b"DGEMM"), ring_hash(b"DGEMM"));
        assert_ne!(ring_hash(b"DGEMM"), ring_hash(b"DGEMV"));
        // Top-4-bit bucket spread over a realistic corpus shape —
        // exactly the property raw FNV-1a lacks.
        let mut buckets = [0u32; 16];
        for i in 0..4096 {
            let name = format!("S3L_routine_{i}");
            buckets[(ring_hash(name.as_bytes()) >> 60) as usize] += 1;
        }
        let (min, max) = (
            *buckets.iter().min().unwrap(),
            *buckets.iter().max().unwrap(),
        );
        assert!(min > 128, "bucket starvation: {buckets:?}");
        assert!(max < 512, "bucket pile-up: {buckets:?}");
    }

    #[test]
    fn raw_fnv_high_bits_really_are_poor() {
        // Documents why `ring_hash` exists: sequential names leave
        // whole top-4-bit buckets nearly empty under raw FNV-1a.
        let mut buckets = [0u32; 16];
        for i in 0..4096 {
            let name = format!("S3L_routine_{i}");
            buckets[(fnv1a64(name.as_bytes()) >> 60) as usize] += 1;
        }
        let min = *buckets.iter().min().unwrap();
        let max = *buckets.iter().max().unwrap();
        assert!(max > 2 * min, "raw FNV spread unexpectedly uniform");
    }

    #[test]
    fn seeded_variants_differ() {
        let a = fnv1a64_seeded(b"DGEMM", 1);
        let b = fnv1a64_seeded(b"DGEMM", 2);
        assert_ne!(a, b);
        assert_eq!(fnv1a64_seeded(b"DGEMM", 1), a);
        assert_ne!(ring_hash_seeded(b"DGEMM", 1), ring_hash_seeded(b"DGEMM", 2));
    }
}

//! Chord (Stoica et al., SIGCOMM 2001), simulated in-process.
//!
//! The network is a collection of nodes on the 64-bit identifier
//! circle. Each node keeps a predecessor, a successor list (fault
//! tolerance) and a finger table (`fingers[k]` ≈ the successor of
//! `id + 2^k`). Lookups are **iterative** and count hops, which is the
//! metric the DLPT paper's Table 2 and Figure 9 compare against.
//!
//! Fidelity notes:
//! * correctness rests on successor pointers; fingers only accelerate
//!   routing, and lookups remain correct with stale fingers — exactly
//!   as in the protocol paper;
//! * joins and graceful leaves eagerly fix the two neighbours (the
//!   effect the real join/leave handshakes converge to), while finger
//!   repair happens in explicit [`ChordNetwork::stabilize`] rounds the
//!   caller schedules, mirroring Chord's periodic maintenance;
//! * crashes ([`ChordNetwork::fail`]) lose the node's keys and leave
//!   dangling references that later stabilization rounds repair through
//!   successor lists.

use crate::hash::ring_hash;
use crate::ring::{finger_start, in_interval_oc, in_interval_oo};
use std::collections::BTreeMap;

/// Bits of the identifier space (and finger-table size).
pub const M: u32 = 64;

/// One Chord node.
#[derive(Debug, Clone)]
pub struct ChordNode {
    /// Identifier on the circle.
    pub id: u64,
    /// Predecessor, if known.
    pub pred: Option<u64>,
    /// `succ_list[0]` is the successor; the tail provides failover.
    pub succ_list: Vec<u64>,
    /// `fingers[k]` ≈ successor of `id + 2^k`; may be stale.
    pub fingers: Vec<u64>,
    /// Stored key/value pairs, keyed by key hash.
    pub store: BTreeMap<u64, Vec<Vec<u8>>>,
}

impl ChordNode {
    fn new(id: u64) -> Self {
        ChordNode {
            id,
            pred: None,
            succ_list: vec![id],
            fingers: vec![id; M as usize],
            store: BTreeMap::new(),
        }
    }

    /// Current successor (first live entry is maintained by the
    /// network's stabilization).
    pub fn successor(&self) -> u64 {
        self.succ_list.first().copied().unwrap_or(self.id)
    }
}

/// Counters over the network's lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChordStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Total routing hops over all lookups.
    pub total_hops: u64,
    /// Stabilization rounds executed.
    pub stabilize_rounds: u64,
    /// Keys transferred between nodes (joins/leaves).
    pub key_transfers: u64,
}

impl ChordStats {
    /// Mean hops per lookup.
    pub fn mean_hops(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.lookups as f64
        }
    }
}

/// Result of one iterative lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupResult {
    /// The node owning the target identifier.
    pub owner: u64,
    /// Routing hops taken (edges of the iterative walk).
    pub hops: u32,
    /// Node identifiers visited, starting at the entry node and ending
    /// at the owner.
    pub path: Vec<u64>,
}

/// A simulated Chord network.
#[derive(Debug, Clone, Default)]
pub struct ChordNetwork {
    nodes: BTreeMap<u64, ChordNode>,
    succ_list_len: usize,
    /// Lifetime counters.
    pub stats: ChordStats,
}

impl ChordNetwork {
    /// An empty network keeping `succ_list_len` successors per node.
    pub fn new(succ_list_len: usize) -> Self {
        ChordNetwork {
            nodes: BTreeMap::new(),
            succ_list_len: succ_list_len.max(1),
            stats: ChordStats::default(),
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff no node is live.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Live node identifiers, ascending.
    pub fn ids(&self) -> Vec<u64> {
        self.nodes.keys().copied().collect()
    }

    /// Borrows a node.
    pub fn node(&self, id: u64) -> Option<&ChordNode> {
        self.nodes.get(&id)
    }

    /// Ground truth owner of an identifier: the first live node at or
    /// after it (wrapping). Used by tests and by callers that need the
    /// converged answer without routing.
    pub fn owner_of(&self, target: u64) -> Option<u64> {
        self.nodes
            .range(target..)
            .next()
            .or_else(|| self.nodes.iter().next())
            .map(|(id, _)| *id)
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    /// Creates the first node of the ring.
    pub fn create(&mut self, id: u64) {
        assert!(self.nodes.is_empty(), "create() is for the first node");
        let mut n = ChordNode::new(id);
        n.pred = Some(id);
        self.nodes.insert(id, n);
    }

    /// Joins `id` through any live contact. Neighbour pointers are
    /// fixed eagerly (the state the join handshake converges to); the
    /// keys in `(pred, id]` move from the successor.
    pub fn join(&mut self, id: u64) -> bool {
        if self.nodes.contains_key(&id) {
            return false;
        }
        if self.nodes.is_empty() {
            self.create(id);
            return true;
        }
        let succ_id = self.owner_of(id).expect("non-empty");
        let pred_id = {
            let succ = &self.nodes[&succ_id];
            succ.pred.unwrap_or(succ_id)
        };
        // Move the new node's arc of keys out of the successor.
        let moved: Vec<(u64, Vec<Vec<u8>>)> = {
            let succ = self.nodes.get_mut(&succ_id).expect("live");
            let keys: Vec<u64> = succ
                .store
                .keys()
                .copied()
                .filter(|k| in_interval_oc(*k, pred_id, id))
                .collect();
            keys.iter()
                .map(|k| (*k, succ.store.remove(k).expect("listed")))
                .collect()
        };
        self.stats.key_transfers += moved.len() as u64;
        let mut n = ChordNode::new(id);
        n.pred = Some(pred_id);
        n.succ_list = vec![succ_id];
        n.fingers = vec![succ_id; M as usize];
        n.store.extend(moved);
        self.nodes.insert(id, n);
        self.nodes.get_mut(&succ_id).expect("live").pred = Some(id);
        let pred = self.nodes.get_mut(&pred_id).expect("live");
        pred.succ_list.insert(0, id);
        pred.succ_list.truncate(self.succ_list_len);
        true
    }

    /// Graceful departure: keys and neighbour links are handed over.
    pub fn leave(&mut self, id: u64) -> bool {
        let Some(node) = self.nodes.remove(&id) else {
            return false;
        };
        if self.nodes.is_empty() {
            return true;
        }
        let succ_id = self.owner_of(id).expect("non-empty");
        self.stats.key_transfers += node.store.len() as u64;
        let pred_id = node.pred.filter(|p| self.nodes.contains_key(p));
        {
            let succ = self.nodes.get_mut(&succ_id).expect("live");
            for (k, vs) in node.store {
                succ.store.entry(k).or_default().extend(vs);
            }
            succ.pred = pred_id;
        }
        if let Some(p) = pred_id {
            let pred = self.nodes.get_mut(&p).expect("live");
            pred.succ_list.retain(|s| *s != id);
            if pred.succ_list.is_empty() {
                pred.succ_list.push(succ_id);
            }
        }
        true
    }

    /// Crash: the node and its keys vanish; routing state of others
    /// still references it until stabilization repairs them.
    pub fn fail(&mut self, id: u64) -> bool {
        self.nodes.remove(&id).is_some()
    }

    // ------------------------------------------------------------------
    // Maintenance
    // ------------------------------------------------------------------

    /// One full stabilization pass: every node repairs its successor
    /// (first live entry of its list, or the ground-truth successor as
    /// the last resort the successor-list protocol converges to),
    /// refreshes its successor list, notifies for predecessor repair,
    /// and rebuilds its fingers.
    pub fn stabilize(&mut self) {
        self.stats.stabilize_rounds += 1;
        let ids = self.ids();
        for &id in &ids {
            // successor = first live candidate.
            let live_succ = {
                let n = &self.nodes[&id];
                n.succ_list
                    .iter()
                    .copied()
                    .find(|s| self.nodes.contains_key(s) && *s != id)
            };
            let succ = live_succ.unwrap_or_else(|| {
                self.nodes
                    .range(id.wrapping_add(1)..)
                    .next()
                    .map(|(i, _)| *i)
                    .or_else(|| self.ids().first().copied())
                    .unwrap_or(id)
            });
            // Rebuild the successor list by walking ground truth — the
            // converged effect of iterated `succ.succ_list` copying.
            let mut list = Vec::with_capacity(self.succ_list_len);
            let mut cur = succ;
            for _ in 0..self.succ_list_len {
                list.push(cur);
                let next = self
                    .nodes
                    .range(cur.wrapping_add(1)..)
                    .next()
                    .map(|(i, _)| *i)
                    .or_else(|| self.ids().first().copied())
                    .unwrap_or(cur);
                if next == succ {
                    break;
                }
                cur = next;
            }
            let n = self.nodes.get_mut(&id).expect("live");
            n.succ_list = list;
            // Fingers: successor of id + 2^k over live nodes.
            for k in 0..M {
                let start = finger_start(id, k);
                // owner_of inlined to avoid the borrow.
                let f = self
                    .nodes
                    .range(start..)
                    .next()
                    .or_else(|| self.nodes.iter().next())
                    .map(|(i, _)| *i)
                    .expect("non-empty");
                self.nodes.get_mut(&id).expect("live").fingers[k as usize] = f;
            }
            // Predecessor repair (notify): ground-truth predecessor.
            let pred = self
                .nodes
                .range(..id)
                .next_back()
                .map(|(i, _)| *i)
                .or_else(|| self.nodes.keys().next_back().copied())
                .unwrap_or(id);
            self.nodes.get_mut(&id).expect("live").pred = Some(pred);
        }
    }

    // ------------------------------------------------------------------
    // Routing
    // ------------------------------------------------------------------

    fn closest_preceding(&self, from: u64, target: u64) -> u64 {
        let n = &self.nodes[&from];
        for &f in n.fingers.iter().rev() {
            if f != from && self.nodes.contains_key(&f) && in_interval_oo(f, from, target) {
                return f;
            }
        }
        for &s in n.succ_list.iter().rev() {
            if s != from && self.nodes.contains_key(&s) && in_interval_oo(s, from, target) {
                return s;
            }
        }
        from
    }

    /// Iterative lookup of `target`'s owner starting at `from`.
    /// Counts every edge of the walk as one hop.
    pub fn find_successor(&mut self, from: u64, target: u64) -> LookupResult {
        assert!(self.nodes.contains_key(&from), "entry node must be live");
        let mut cur = from;
        let mut path = vec![from];
        let mut hops = 0u32;
        // 2·M is far beyond any legitimate walk; the fallback below
        // keeps progress even with badly stale fingers.
        for _ in 0..(2 * M as usize + self.nodes.len()) {
            let succ = {
                let n = &self.nodes[&cur];
                n.succ_list
                    .iter()
                    .copied()
                    .find(|s| self.nodes.contains_key(s))
                    .unwrap_or(cur)
            };
            if cur == succ || in_interval_oc(target, cur, succ) {
                if succ != cur {
                    hops += 1;
                    path.push(succ);
                }
                self.stats.lookups += 1;
                self.stats.total_hops += hops as u64;
                return LookupResult {
                    owner: succ,
                    hops,
                    path,
                };
            }
            let mut next = self.closest_preceding(cur, target);
            if next == cur {
                next = succ;
            }
            hops += 1;
            path.push(next);
            cur = next;
        }
        // Pathological state (mass failure without stabilize): fall
        // back to ground truth, charging the walk taken so far.
        let owner = self.owner_of(target).expect("non-empty");
        path.push(owner);
        self.stats.lookups += 1;
        self.stats.total_hops += hops as u64 + 1;
        LookupResult {
            owner,
            hops: hops + 1,
            path,
        }
    }

    // ------------------------------------------------------------------
    // Key-value store
    // ------------------------------------------------------------------

    /// Stores `value` under `key`, routing from `entry`. Returns the
    /// lookup result of the placement walk.
    pub fn put(&mut self, entry: u64, key: &[u8], value: Vec<u8>) -> LookupResult {
        let h = ring_hash(key);
        let res = self.find_successor(entry, h);
        self.nodes
            .get_mut(&res.owner)
            .expect("owner is live")
            .store
            .entry(h)
            .or_default()
            .push(value);
        res
    }

    /// Stores `value` under `key`, *replacing* any previous values —
    /// the read-modify-write primitive structured overlays built on
    /// DHTs (like PHT) rely on.
    pub fn put_replace(&mut self, entry: u64, key: &[u8], value: Vec<u8>) -> LookupResult {
        let h = ring_hash(key);
        let res = self.find_successor(entry, h);
        self.nodes
            .get_mut(&res.owner)
            .expect("owner is live")
            .store
            .insert(h, vec![value]);
        res
    }

    /// Removes every value stored under `key`.
    pub fn remove(&mut self, entry: u64, key: &[u8]) -> LookupResult {
        let h = ring_hash(key);
        let res = self.find_successor(entry, h);
        self.nodes
            .get_mut(&res.owner)
            .expect("owner is live")
            .store
            .remove(&h);
        res
    }

    /// Fetches the values stored under `key`, routing from `entry`.
    pub fn get(&mut self, entry: u64, key: &[u8]) -> (Option<Vec<Vec<u8>>>, LookupResult) {
        let h = ring_hash(key);
        let res = self.find_successor(entry, h);
        let values = self.nodes[&res.owner].store.get(&h).cloned();
        (values, res)
    }

    /// Total stored (key, value) pairs.
    pub fn stored_values(&self) -> usize {
        self.nodes
            .values()
            .map(|n| n.store.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Verifies ring consistency: every node's successor/predecessor
    /// agree with the live id order. Intended for tests.
    pub fn check_ring(&self) -> Result<(), String> {
        for (&id, node) in &self.nodes {
            let want_succ = self
                .nodes
                .range(id.wrapping_add(1)..)
                .next()
                .map(|(i, _)| *i)
                .or_else(|| self.nodes.keys().next().copied())
                .unwrap_or(id);
            if node.successor() != want_succ {
                return Err(format!(
                    "node {id:#x}: successor {:#x}, want {want_succ:#x}",
                    node.successor()
                ));
            }
            let want_pred = self
                .nodes
                .range(..id)
                .next_back()
                .map(|(i, _)| *i)
                .or_else(|| self.nodes.keys().next_back().copied())
                .unwrap_or(id);
            if node.pred != Some(want_pred) {
                return Err(format!(
                    "node {id:#x}: pred {:?}, want {want_pred:#x}",
                    node.pred
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn network(n: usize, seed: u64) -> (ChordNetwork, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = ChordNetwork::new(4);
        let mut ids = Vec::new();
        while ids.len() < n {
            let id: u64 = rng.gen();
            if net.join(id) {
                ids.push(id);
            }
        }
        net.stabilize();
        (net, ids)
    }

    #[test]
    fn joins_build_consistent_ring() {
        let (net, ids) = network(50, 1);
        assert_eq!(net.len(), 50);
        net.check_ring().unwrap();
        assert_eq!(net.ids().len(), ids.len());
    }

    #[test]
    fn lookup_agrees_with_ground_truth() {
        let (mut net, ids) = network(64, 2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let target: u64 = rng.gen();
            let entry = ids[rng.gen_range(0..ids.len())];
            let res = net.find_successor(entry, target);
            assert_eq!(Some(res.owner), net.owner_of(target));
            assert_eq!(res.path.last(), Some(&res.owner));
        }
    }

    #[test]
    fn lookup_is_logarithmic_with_fingers() {
        let (mut net, ids) = network(256, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut total = 0u32;
        let trials = 300;
        for _ in 0..trials {
            let target: u64 = rng.gen();
            let entry = ids[rng.gen_range(0..ids.len())];
            total += net.find_successor(entry, target).hops;
        }
        let mean = total as f64 / trials as f64;
        // log2(256) = 8; converged Chord averages ~½·log2(n).
        assert!(mean < 10.0, "mean hops {mean} too high for n=256");
        assert!(mean > 1.0, "mean hops {mean} suspiciously low");
    }

    #[test]
    fn put_get_roundtrip() {
        let (mut net, ids) = network(32, 6);
        let names: Vec<String> = (0..100).map(|i| format!("SVC{i:03}")).collect();
        for (i, name) in names.iter().enumerate() {
            net.put(
                ids[i % ids.len()],
                name.as_bytes(),
                name.clone().into_bytes(),
            );
        }
        assert_eq!(net.stored_values(), 100);
        for (i, name) in names.iter().enumerate() {
            let (vals, _) = net.get(ids[(i * 7) % ids.len()], name.as_bytes());
            let vals = vals.unwrap_or_else(|| panic!("{name} lost"));
            assert_eq!(vals, vec![name.clone().into_bytes()]);
        }
    }

    #[test]
    fn data_survives_joins_and_leaves() {
        let (mut net, ids) = network(24, 7);
        for i in 0..60 {
            let name = format!("KEY{i:03}");
            net.put(ids[0], name.as_bytes(), vec![i as u8]);
        }
        let mut rng = StdRng::seed_from_u64(8);
        // Interleave joins and graceful leaves.
        let mut live: Vec<u64> = ids.clone();
        for round in 0..20 {
            if round % 2 == 0 {
                let id: u64 = rng.gen();
                if net.join(id) {
                    live.push(id);
                }
            } else if live.len() > 2 {
                let idx = rng.gen_range(0..live.len());
                let victim = live.swap_remove(idx);
                net.leave(victim);
            }
            net.stabilize();
            net.check_ring().unwrap();
        }
        assert_eq!(net.stored_values(), 60, "graceful churn must not lose keys");
        for i in 0..60 {
            let name = format!("KEY{i:03}");
            let entry = net.ids()[0];
            let (vals, _) = net.get(entry, name.as_bytes());
            assert_eq!(vals.unwrap(), vec![vec![i as u8]]);
        }
    }

    #[test]
    fn crashes_heal_after_stabilization() {
        let (mut net, ids) = network(40, 9);
        let mut rng = StdRng::seed_from_u64(10);
        // Crash 25% of the ring without stabilizing in between.
        for _ in 0..10 {
            let live = net.ids();
            let victim = live[rng.gen_range(0..live.len())];
            net.fail(victim);
        }
        net.stabilize();
        net.check_ring().unwrap();
        // Lookups from any survivor still find the right owner.
        let survivors = net.ids();
        for _ in 0..100 {
            let target: u64 = rng.gen();
            let entry = survivors[rng.gen_range(0..survivors.len())];
            let res = net.find_successor(entry, target);
            assert_eq!(Some(res.owner), net.owner_of(target));
        }
        let _ = ids;
    }

    #[test]
    fn lookups_survive_unstabilized_crashes() {
        // Even before stabilize(), successor-list failover keeps
        // lookups correct (possibly slower).
        let (mut net, _) = network(40, 11);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..6 {
            let live = net.ids();
            let victim = live[rng.gen_range(0..live.len())];
            net.fail(victim);
        }
        let survivors = net.ids();
        for _ in 0..50 {
            let target: u64 = rng.gen();
            let entry = survivors[rng.gen_range(0..survivors.len())];
            let res = net.find_successor(entry, target);
            assert_eq!(Some(res.owner), net.owner_of(target));
        }
    }

    #[test]
    fn single_node_owns_everything() {
        let mut net = ChordNetwork::new(3);
        net.create(42);
        let res = net.find_successor(42, 7);
        assert_eq!(res.owner, 42);
        assert_eq!(res.hops, 0);
        net.put(42, b"x", vec![1]);
        let (vals, _) = net.get(42, b"x");
        assert_eq!(vals.unwrap(), vec![vec![1]]);
    }

    #[test]
    fn two_node_ring_links_are_mutual() {
        let mut net = ChordNetwork::new(3);
        net.join(100);
        net.join(200);
        net.stabilize();
        net.check_ring().unwrap();
        assert_eq!(net.node(100).unwrap().successor(), 200);
        assert_eq!(net.node(200).unwrap().successor(), 100);
        assert_eq!(net.node(100).unwrap().pred, Some(200));
    }

    #[test]
    fn stats_accumulate() {
        let (mut net, ids) = network(16, 13);
        for i in 0..10 {
            net.find_successor(ids[i % ids.len()], i as u64 * 1e17 as u64);
        }
        assert_eq!(net.stats.lookups, 10);
        assert!(net.stats.mean_hops() >= 0.0);
    }
}

//! The original DLPT placement: tree nodes hashed onto a Chord ring of
//! peers.
//!
//! Figure 2 of the paper shows the 2006 design: every logical tree
//! node's label is hashed and the node is "mapped on the peer with the
//! lowest identifier higher than the key" — over *hashed* identifiers,
//! which scatters lexicographic neighbours uniformly over the peers.
//! Figure 9 quantifies the cost: with this mapping nearly every tree
//! edge crosses a peer boundary, while the 2008 paper's lexicographic
//! mapping keeps subtrees co-located.
//!
//! [`RandomMapping`] reproduces that baseline placement for any peer
//! set, so the simulator can replay one logical route under both
//! mappings and count physical hops for each.

use crate::hash::ring_hash;
use dlpt_core::key::Key;
use std::collections::BTreeMap;

/// Hash-based node→peer placement over a fixed peer set.
#[derive(Debug, Clone)]
pub struct RandomMapping {
    /// Ring of (hash point, peer id), ordered by point.
    ring: BTreeMap<u64, Key>,
}

impl RandomMapping {
    /// Places each peer on the hash ring at the hash of its
    /// identifier.
    pub fn new<'a>(peers: impl IntoIterator<Item = &'a Key>) -> Self {
        let mut ring = BTreeMap::new();
        for p in peers {
            ring.insert(ring_hash(p.as_bytes()), p.clone());
        }
        RandomMapping { ring }
    }

    /// Number of distinct ring points (collisions collapse).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True iff no peer was supplied.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The peer hosting a tree node under the hashed mapping: the
    /// first peer point at or after `hash(label)`, wrapping.
    pub fn host_of(&self, label: &Key) -> Option<&Key> {
        let h = ring_hash(label.as_bytes());
        self.ring
            .range(h..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, p)| p)
    }

    /// Physical hops a logical route costs under this mapping:
    /// consecutive nodes hosted by different peers.
    pub fn physical_hops(&self, route: &[Key]) -> usize {
        route
            .windows(2)
            .filter(|w| self.host_of(&w[0]) != self.host_of(&w[1]))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn peers(names: &[&str]) -> Vec<Key> {
        names.iter().map(|s| k(s)).collect()
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let ps = peers(&["peerA", "peerB", "peerC", "peerD"]);
        let m = RandomMapping::new(&ps);
        assert_eq!(m.len(), 4);
        for label in ["", "0", "101", "DGEMM", "S3L_mat_mult"] {
            let h1 = m.host_of(&k(label)).unwrap().clone();
            let h2 = m.host_of(&k(label)).unwrap().clone();
            assert_eq!(h1, h2);
            assert!(ps.contains(&h1));
        }
    }

    #[test]
    fn scatters_lexicographic_neighbours() {
        // 26 peers; a chain of 40 sibling labels sharing a long prefix
        // should land on many distinct peers — the locality loss the
        // paper argues against.
        let ps: Vec<Key> = (0..26).map(|i| Key::from(format!("peer{i:02}"))).collect();
        let m = RandomMapping::new(&ps);
        let mut distinct = std::collections::BTreeSet::new();
        for i in 0..40 {
            let label = Key::from(format!("S3L_routine_{i:02}"));
            distinct.insert(m.host_of(&label).unwrap().clone());
        }
        assert!(
            distinct.len() >= 10,
            "hashing should scatter: only {} peers hit",
            distinct.len()
        );
    }

    #[test]
    fn physical_hops_counts_host_changes() {
        let ps = peers(&["pA", "pB", "pC", "pD", "pE", "pF", "pG", "pH"]);
        let m = RandomMapping::new(&ps);
        let route: Vec<Key> = ["", "1", "10", "101", "1010"]
            .iter()
            .map(|s| k(s))
            .collect();
        let hops = m.physical_hops(&route);
        assert!(hops <= 4);
        // Same node repeated costs nothing.
        assert_eq!(m.physical_hops(&[k("x"), k("x"), k("x")]), 0);
        assert_eq!(m.physical_hops(&[]), 0);
        assert_eq!(m.physical_hops(&[k("x")]), 0);
    }

    #[test]
    fn empty_mapping() {
        let m = RandomMapping::new(std::iter::empty::<&Key>().collect::<Vec<_>>());
        assert!(m.is_empty());
        assert_eq!(m.host_of(&k("x")), None);
    }
}

//! Arithmetic on the 64-bit identifier circle.
//!
//! Chord's correctness arguments are phrased over half-open circular
//! intervals; getting the wrap cases right once, here, keeps the
//! protocol code readable.

/// `x ∈ (a, b]` on the circle. When `a == b` the interval is the whole
/// circle (the single-node degenerate case).
pub fn in_interval_oc(x: u64, a: u64, b: u64) -> bool {
    use std::cmp::Ordering::*;
    match a.cmp(&b) {
        Less => x > a && x <= b,
        Greater => x > a || x <= b,
        Equal => true,
    }
}

/// `x ∈ (a, b)` on the circle. When `a == b` the interval is the whole
/// circle minus the point itself.
pub fn in_interval_oo(x: u64, a: u64, b: u64) -> bool {
    use std::cmp::Ordering::*;
    match a.cmp(&b) {
        Less => x > a && x < b,
        Greater => x > a || x < b,
        Equal => x != a,
    }
}

/// `a + 2^k` on the circle — the start of the `k`-th finger interval.
pub fn finger_start(a: u64, k: u32) -> u64 {
    a.wrapping_add(1u64.wrapping_shl(k))
}

/// Clockwise distance from `a` to `b`.
pub fn distance(a: u64, b: u64) -> u64 {
    b.wrapping_sub(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oc_linear_and_wrap() {
        assert!(in_interval_oc(5, 1, 10));
        assert!(in_interval_oc(10, 1, 10));
        assert!(!in_interval_oc(1, 1, 10));
        assert!(!in_interval_oc(11, 1, 10));
        // Wrap: (u64::MAX - 1, 5]
        assert!(in_interval_oc(0, u64::MAX - 1, 5));
        assert!(in_interval_oc(u64::MAX, u64::MAX - 1, 5));
        assert!(in_interval_oc(5, u64::MAX - 1, 5));
        assert!(!in_interval_oc(6, u64::MAX - 1, 5));
        assert!(!in_interval_oc(u64::MAX - 1, u64::MAX - 1, 5));
    }

    #[test]
    fn oo_excludes_endpoints() {
        assert!(in_interval_oo(5, 1, 10));
        assert!(!in_interval_oo(10, 1, 10));
        assert!(!in_interval_oo(1, 1, 10));
        assert!(in_interval_oo(0, 10, 1));
        assert!(!in_interval_oo(1, 10, 1));
    }

    #[test]
    fn degenerate_intervals() {
        assert!(in_interval_oc(123, 7, 7), "(a,a] is the full circle");
        assert!(in_interval_oc(7, 7, 7));
        assert!(in_interval_oo(123, 7, 7));
        assert!(!in_interval_oo(7, 7, 7), "(a,a) excludes a itself");
    }

    #[test]
    fn finger_starts_wrap() {
        assert_eq!(finger_start(0, 0), 1);
        assert_eq!(finger_start(0, 63), 1 << 63);
        assert_eq!(finger_start(u64::MAX, 0), 0);
        assert_eq!(finger_start(u64::MAX - 1, 1), 0);
    }

    #[test]
    fn distances() {
        assert_eq!(distance(1, 10), 9);
        assert_eq!(distance(10, 1), u64::MAX - 8);
        assert_eq!(distance(5, 5), 0);
    }
}

//! Property tests of the Chord substrate: routing always agrees with
//! the ground-truth owner, under arbitrary memberships and churn.

use dlpt_core::key::Key;
use dlpt_dht::{ChordNetwork, RandomMapping};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// From any entry node, iterative lookup lands on the true owner.
    #[test]
    fn lookup_agrees_with_owner(
        ids in proptest::collection::btree_set(any::<u64>(), 2..40),
        targets in proptest::collection::vec(any::<u64>(), 1..20),
        entry_pick in any::<u32>(),
    ) {
        let mut net = ChordNetwork::new(3);
        for id in &ids {
            net.join(*id);
        }
        net.stabilize();
        net.check_ring().unwrap();
        let live = net.ids();
        let entry = live[entry_pick as usize % live.len()];
        for t in targets {
            let res = net.find_successor(entry, t);
            prop_assert_eq!(Some(res.owner), net.owner_of(t));
        }
    }

    /// Graceful churn never loses stored keys.
    #[test]
    fn graceful_churn_preserves_data(
        ids in proptest::collection::btree_set(any::<u64>(), 4..20),
        extra in proptest::collection::btree_set(any::<u64>(), 1..8),
        n_keys in 1usize..30,
    ) {
        let mut net = ChordNetwork::new(4);
        for id in &ids {
            net.join(*id);
        }
        net.stabilize();
        let entry = net.ids()[0];
        for i in 0..n_keys {
            net.put(entry, format!("K{i}").as_bytes(), vec![i as u8]);
        }
        // Join the extras, then remove the originals one by one.
        for id in &extra {
            net.join(*id);
            net.stabilize();
        }
        for id in &ids {
            if net.len() > 1 {
                net.leave(*id);
                net.stabilize();
            }
        }
        prop_assert_eq!(net.stored_values(), n_keys);
        let entry = net.ids()[0];
        for i in 0..n_keys {
            let (vals, _) = net.get(entry, format!("K{i}").as_bytes());
            prop_assert_eq!(vals, Some(vec![vec![i as u8]]));
        }
    }

    /// The hash placement is total and stable: every label maps to a
    /// peer of the set, independent of query order.
    #[test]
    fn random_mapping_total_and_stable(
        peers in proptest::collection::btree_set("[a-z]{1,6}", 1..20),
        labels in proptest::collection::vec("[A-Z0-9_]{0,8}", 1..20),
    ) {
        let peer_keys: Vec<Key> = peers.iter().map(|p| Key::from(p.as_str())).collect();
        let m = RandomMapping::new(&peer_keys);
        for l in &labels {
            let k = Key::from(l.as_str());
            let h1 = m.host_of(&k).cloned();
            let h2 = m.host_of(&k).cloned();
            prop_assert_eq!(h1.clone(), h2);
            prop_assert!(peer_keys.contains(&h1.unwrap()));
        }
    }
}

//! Identifiers over a digit alphabet and their prefix algebra.
//!
//! Section 2 of the paper ("Greatest Common Prefix Tree") defines the
//! identifier space `I`: finite sequences of digits of an alphabet `A`,
//! ordered lexicographically, with the empty identifier `ε`. Both
//! *peers* (physical machines) and *nodes* (logical tree vertices) draw
//! their identifiers from `I`, which is what lets one structure serve
//! as both the tree and its mapping onto the ring.
//!
//! The two basic functions assumed by the protocol are implemented
//! here:
//!
//! * [`Key::proper_prefixes`] — the paper's `Prefixes(k)`, every proper
//!   prefix of `k` including `ε`;
//! * [`Key::gcp`] — the paper's `GCP(k1, k2)`, the greatest common
//!   prefix of two identifiers.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Digits that fit in a `Key` without touching the heap. Sized so the
/// whole `Key` is 32 bytes and every identifier the workloads generate
/// — service names of the grid corpus (≤ 21 digits) and peer ids (the
/// default `peer_id_len` is 16) — stays inline.
pub const KEY_INLINE_CAP: usize = 23;

/// Storage behind a [`Key`]: inline digits for the common short case,
/// shared heap spill beyond [`KEY_INLINE_CAP`]. `Arc` (not `Box`) for
/// the spill so cloning a long key is a reference-count bump, never a
/// byte copy.
#[derive(Clone)]
enum Repr {
    Inline { len: u8, buf: [u8; KEY_INLINE_CAP] },
    Spill(Arc<[u8]>),
}

/// An identifier: a finite (possibly empty) sequence of digits.
///
/// `Key` is an immutable byte string with lexicographic `Ord`.
/// Identifiers up to [`KEY_INLINE_CAP`] digits — every service name and
/// peer id in the shipped workloads — are stored inline, so cloning
/// them (the routing hot path does it constantly) is a 32-byte memcpy
/// with no allocation; longer keys spill to a shared heap buffer whose
/// clone is a reference-count bump. All comparisons, hashing and
/// formatting are defined over the digit string alone, so the two
/// representations are observationally identical.
#[derive(Clone)]
pub struct Key(Repr);

impl Key {
    /// The empty identifier `ε` (`|ε| = 0`), neutral for concatenation.
    pub fn epsilon() -> Self {
        Key(Repr::Inline {
            len: 0,
            buf: [0; KEY_INLINE_CAP],
        })
    }

    /// Builds a key from raw digit bytes.
    pub fn from_bytes(bytes: impl AsRef<[u8]>) -> Self {
        Key::from_slice(bytes.as_ref())
    }

    /// Builds a key by copying a digit slice — inline (no allocation)
    /// whenever the digits fit in [`KEY_INLINE_CAP`].
    #[inline]
    pub fn from_slice(b: &[u8]) -> Self {
        if b.len() <= KEY_INLINE_CAP {
            let mut buf = [0u8; KEY_INLINE_CAP];
            buf[..b.len()].copy_from_slice(b);
            Key(Repr::Inline {
                len: b.len() as u8,
                buf,
            })
        } else {
            Key(Repr::Spill(Arc::from(b)))
        }
    }

    /// Builds an inline key whose digits are the first `len` bytes of a
    /// full-width window. The fixed-size copy compiles to a pair of
    /// vector moves instead of a variable-length `memcpy` call — the
    /// wire decoder's hot path. Bytes past `len` are carried as
    /// unspecified padding; every observable operation (`as_bytes`,
    /// `Eq`, `Ord`, `Hash`, `Display`) reads only the first `len`
    /// digits.
    ///
    /// # Panics
    /// Panics (debug) when `len > KEY_INLINE_CAP`.
    #[inline]
    pub fn from_inline_window(window: &[u8; KEY_INLINE_CAP], len: usize) -> Key {
        debug_assert!(len <= KEY_INLINE_CAP);
        Key(Repr::Inline {
            len: len as u8,
            buf: *window,
        })
    }

    /// True iff the digits are stored inline (no heap involvement).
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }

    /// The underlying digits.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Spill(a) => a,
        }
    }

    /// Length `|w|`: the number of digits (0 for `ε`).
    #[inline]
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Spill(a) => a.len(),
        }
    }

    /// True iff this is `ε`.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Concatenation `uv` of two identifiers.
    pub fn concat(&self, other: &Key) -> Key {
        let (a, b) = (self.as_bytes(), other.as_bytes());
        if a.len() + b.len() <= KEY_INLINE_CAP {
            let mut buf = [0u8; KEY_INLINE_CAP];
            buf[..a.len()].copy_from_slice(a);
            buf[a.len()..a.len() + b.len()].copy_from_slice(b);
            return Key(Repr::Inline {
                len: (a.len() + b.len()) as u8,
                buf,
            });
        }
        let mut v = Vec::with_capacity(a.len() + b.len());
        v.extend_from_slice(a);
        v.extend_from_slice(b);
        Key(Repr::Spill(v.into()))
    }

    /// The key extended by one digit.
    pub fn child(&self, digit: u8) -> Key {
        self.concat(&Key::from_slice(&[digit]))
    }

    /// The first `n` digits as a new key (`n` capped at `len`).
    pub fn truncated(&self, n: usize) -> Key {
        let b = self.as_bytes();
        Key::from_slice(&b[..n.min(b.len())])
    }

    /// True iff `self` is a prefix of `other` (possibly equal).
    pub fn is_prefix_of(&self, other: &Key) -> bool {
        other.as_bytes().starts_with(self.as_bytes())
    }

    /// True iff `self` is a *proper* prefix of `other`
    /// (prefix and `self != other`).
    pub fn is_proper_prefix_of(&self, other: &Key) -> bool {
        self.len() < other.len() && self.is_prefix_of(other)
    }

    /// The paper's `Prefixes(k)`: all proper prefixes of `k`, from `ε`
    /// up to `k` minus its last digit.
    ///
    /// `Prefixes(10101) = {ε, 1, 10, 101, 1010}`.
    pub fn proper_prefixes(&self) -> impl Iterator<Item = Key> + '_ {
        (0..self.len()).map(move |n| self.truncated(n))
    }

    /// The paper's `GCP(k1, k2)`: longest common prefix of the two keys.
    ///
    /// `GCP(101, 100) = 10`.
    pub fn gcp(&self, other: &Key) -> Key {
        self.truncated(self.gcp_len(other))
    }

    /// Length of the greatest common prefix, `|GCP(self, other)|`,
    /// without allocating. Compares in 8-byte chunks — `XOR` plus
    /// `trailing_zeros` locates the first differing digit — so the
    /// routing hot path (which calls this per child scan) doesn't pay
    /// a per-byte loop.
    pub fn gcp_len(&self, other: &Key) -> usize {
        let a = self.as_bytes();
        let b = other.as_bytes();
        let n = a.len().min(b.len());
        let mut i = 0;
        while i + 8 <= n {
            let x = u64::from_le_bytes(a[i..i + 8].try_into().expect("8-byte window"))
                ^ u64::from_le_bytes(b[i..i + 8].try_into().expect("8-byte window"));
            if x != 0 {
                return i + (x.trailing_zeros() / 8) as usize;
            }
            i += 8;
        }
        while i < n && a[i] == b[i] {
            i += 1;
        }
        i
    }

    /// Greatest common prefix of a whole collection (`GCP(w1, w2, …)`).
    /// Returns `None` for an empty collection.
    pub fn gcp_all<I, K>(keys: I) -> Option<Key>
    where
        I: IntoIterator<Item = K>,
        K: Borrow<Key>,
    {
        let mut iter = keys.into_iter();
        let first = iter.next()?.borrow().clone();
        let mut len = first.len();
        for k in iter {
            len = len.min(first.gcp_len(k.borrow()));
            if len == 0 {
                break;
            }
        }
        Some(first.truncated(len))
    }

    /// The digit of `self` at position `|prefix|`, i.e. the digit that
    /// distinguishes this key within the subtree rooted at `prefix`.
    /// `None` if `self` is not longer than the prefix.
    pub fn digit_after(&self, prefix: &Key) -> Option<u8> {
        self.as_bytes().get(prefix.len()).copied()
    }

    /// Renders the key for display; `ε` shows as `"ε"`.
    pub fn display(&self) -> String {
        self.to_string()
    }
}

impl Default for Key {
    fn default() -> Self {
        Key::epsilon()
    }
}

impl PartialEq for Key {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_bytes().cmp(other.as_bytes())
    }
}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash exactly like `&[u8]` (and like the previous
        // `Box<[u8]>`-backed Key), so inline and spilled keys with the
        // same digits collide as required by `Eq`.
        self.as_bytes().hash(state)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "ε");
        }
        match std::str::from_utf8(self.as_bytes()) {
            Ok(s) => f.write_str(s),
            Err(_) => {
                for b in self.as_bytes() {
                    write!(f, "\\x{b:02x}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({self})")
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::from_slice(s.as_bytes())
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key::from_slice(s.as_bytes())
    }
}

impl From<&[u8]> for Key {
    fn from(b: &[u8]) -> Self {
        Key::from_slice(b)
    }
}

impl AsRef<[u8]> for Key {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

/// Circular-interval membership on the identifier ring.
///
/// The ring closes the total lexicographic order: the successor of the
/// greatest identifier wraps to the least. `in_ring_interval(x, a, b)`
/// is true iff walking clockwise (ascending) from just above `a` one
/// meets `x` no later than `b` — i.e. `x ∈ (a, b]` circularly. When
/// `a == b` the interval is the whole ring (every `x` qualifies),
/// matching the one-peer case where that peer owns everything.
pub fn in_ring_interval(x: &Key, a: &Key, b: &Key) -> bool {
    use std::cmp::Ordering::*;
    match a.cmp(b) {
        Less => x > a && x <= b,
        Greater => x > a || x <= b,
        Equal => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    #[test]
    fn epsilon_is_neutral_for_concat() {
        let w = k("10101");
        assert_eq!(Key::epsilon().concat(&w), w);
        assert_eq!(w.concat(&Key::epsilon()), w);
        assert_eq!(Key::epsilon().len(), 0);
        assert!(Key::epsilon().is_empty());
    }

    #[test]
    fn prefixes_matches_paper_example() {
        // Prefixes(10101) = {ε, 1, 10, 101, 1010}
        let got: Vec<Key> = k("10101").proper_prefixes().collect();
        let want = vec![Key::epsilon(), k("1"), k("10"), k("101"), k("1010")];
        assert_eq!(got, want);
    }

    #[test]
    fn gcp_matches_paper_example() {
        // GCP(101, 100) = 10
        assert_eq!(k("101").gcp(&k("100")), k("10"));
        assert_eq!(k("101").gcp_len(&k("100")), 2);
    }

    #[test]
    fn gcp_is_commutative_and_idempotent() {
        let a = k("10111");
        let b = k("101");
        assert_eq!(a.gcp(&b), b.gcp(&a));
        assert_eq!(a.gcp(&a), a);
        assert_eq!(a.gcp(&Key::epsilon()), Key::epsilon());
    }

    #[test]
    fn gcp_all_over_collection() {
        let keys = [k("10101"), k("10111"), k("101111")];
        assert_eq!(Key::gcp_all(keys.iter()), Some(k("101")));
        assert_eq!(Key::gcp_all(std::iter::empty::<Key>()), None);
        assert_eq!(Key::gcp_all([k("01"), k("10101")]), Some(Key::epsilon()));
        assert_eq!(Key::gcp_all([k("abc")]), Some(k("abc")));
    }

    #[test]
    fn prefix_predicates() {
        assert!(k("10").is_prefix_of(&k("10")));
        assert!(!k("10").is_proper_prefix_of(&k("10")));
        assert!(k("10").is_proper_prefix_of(&k("101")));
        assert!(Key::epsilon().is_prefix_of(&k("0")));
        assert!(!k("11").is_prefix_of(&k("10")));
    }

    #[test]
    fn lexicographic_order_includes_prefix_rule() {
        // A proper prefix sorts strictly before its extensions.
        assert!(k("10") < k("101"));
        assert!(k("101") < k("11"));
        assert!(Key::epsilon() < k("0"));
        assert!(k("DGEMM") < k("DTRSM"));
    }

    #[test]
    fn digit_after_prefix() {
        assert_eq!(k("10101").digit_after(&k("10")), Some(b'1'));
        assert_eq!(k("10").digit_after(&k("10")), None);
        assert_eq!(k("0").digit_after(&Key::epsilon()), Some(b'0'));
    }

    #[test]
    fn truncated_and_child() {
        assert_eq!(k("10101").truncated(3), k("101"));
        assert_eq!(k("10101").truncated(99), k("10101"));
        assert_eq!(k("10").child(b'1'), k("101"));
    }

    #[test]
    fn display_shows_epsilon() {
        assert_eq!(Key::epsilon().to_string(), "ε");
        assert_eq!(k("DGEMM").to_string(), "DGEMM");
        assert_eq!(format!("{:?}", k("01")), "Key(01)");
    }

    #[test]
    fn ring_interval_linear_case() {
        let (a, b) = (k("B"), k("M"));
        assert!(in_ring_interval(&k("C"), &a, &b));
        assert!(in_ring_interval(&k("M"), &a, &b)); // right-closed
        assert!(!in_ring_interval(&k("B"), &a, &b)); // left-open
        assert!(!in_ring_interval(&k("Z"), &a, &b));
    }

    #[test]
    fn ring_interval_wrapping_case() {
        let (a, b) = (k("M"), k("B")); // wraps through the maximum
        assert!(in_ring_interval(&k("Z"), &a, &b));
        assert!(in_ring_interval(&k("A"), &a, &b));
        assert!(in_ring_interval(&k("B"), &a, &b));
        assert!(!in_ring_interval(&k("C"), &a, &b));
        assert!(!in_ring_interval(&k("M"), &a, &b));
    }

    #[test]
    fn key_is_small_and_short_keys_stay_inline() {
        assert_eq!(std::mem::size_of::<Key>(), 32);
        assert!(Key::epsilon().is_inline());
        assert!(Key::from_bytes(vec![b'x'; KEY_INLINE_CAP]).is_inline());
        assert!(!Key::from_bytes(vec![b'x'; KEY_INLINE_CAP + 1]).is_inline());
        assert!(k("S3L_set_array_element").is_inline(), "longest corpus key");
    }

    #[test]
    fn inline_and_spilled_keys_are_observationally_identical() {
        let long = "X".repeat(KEY_INLINE_CAP + 9);
        let spilled = Key::from(long.as_str());
        assert_eq!(spilled.len(), KEY_INLINE_CAP + 9);
        assert_eq!(spilled.to_string(), long);
        // Operations crossing the boundary land in the right repr.
        let head = spilled.truncated(KEY_INLINE_CAP);
        assert!(head.is_inline());
        assert!(head.is_proper_prefix_of(&spilled));
        assert_eq!(head.concat(&spilled.truncated(9)), {
            let mut v = "X".repeat(KEY_INLINE_CAP);
            v.push_str(&"X".repeat(9));
            Key::from(v)
        });
        assert_eq!(spilled.gcp(&head), head);
        // Equality and ordering ignore the representation.
        let rebuilt = Key::from_slice(spilled.as_bytes());
        assert_eq!(spilled, rebuilt);
        assert_eq!(spilled.cmp(&rebuilt), std::cmp::Ordering::Equal);
    }

    #[test]
    fn inline_boundary_ordering_matches_byte_order() {
        let a = Key::from_bytes(vec![b'a'; KEY_INLINE_CAP]); // inline
        let b = Key::from_bytes(vec![b'a'; KEY_INLINE_CAP + 1]); // spill
        assert!(a < b, "prefix sorts before its extension across reprs");
        assert!(a.is_prefix_of(&b));
        assert_eq!(a.gcp_len(&b), KEY_INLINE_CAP);
    }

    #[test]
    fn ring_interval_degenerate_is_full_ring() {
        let a = k("Q");
        assert!(in_ring_interval(&k("A"), &a, &a));
        assert!(in_ring_interval(&k("Q"), &a, &a));
        assert!(in_ring_interval(&k("Z"), &a, &a));
    }
}

//! Identifiers over a digit alphabet and their prefix algebra.
//!
//! Section 2 of the paper ("Greatest Common Prefix Tree") defines the
//! identifier space `I`: finite sequences of digits of an alphabet `A`,
//! ordered lexicographically, with the empty identifier `ε`. Both
//! *peers* (physical machines) and *nodes* (logical tree vertices) draw
//! their identifiers from `I`, which is what lets one structure serve
//! as both the tree and its mapping onto the ring.
//!
//! The two basic functions assumed by the protocol are implemented
//! here:
//!
//! * [`Key::proper_prefixes`] — the paper's `Prefixes(k)`, every proper
//!   prefix of `k` including `ε`;
//! * [`Key::gcp`] — the paper's `GCP(k1, k2)`, the greatest common
//!   prefix of two identifiers.

use std::borrow::Borrow;
use std::fmt;

/// An identifier: a finite (possibly empty) sequence of digits.
///
/// `Key` is an immutable byte string with lexicographic `Ord`. Cloning
/// is a heap copy; keys in this system are short (service-name length),
/// so this is cheap in practice.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(Box<[u8]>);

impl Key {
    /// The empty identifier `ε` (`|ε| = 0`), neutral for concatenation.
    pub fn epsilon() -> Self {
        Key(Box::default())
    }

    /// Builds a key from raw digit bytes.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        Key(bytes.into().into_boxed_slice())
    }

    /// The underlying digits.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length `|w|`: the number of digits (0 for `ε`).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff this is `ε`.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Concatenation `uv` of two identifiers.
    pub fn concat(&self, other: &Key) -> Key {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Key::from_bytes(v)
    }

    /// The key extended by one digit.
    pub fn child(&self, digit: u8) -> Key {
        let mut v = Vec::with_capacity(self.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(digit);
        Key::from_bytes(v)
    }

    /// The first `n` digits as a new key (`n` capped at `len`).
    pub fn truncated(&self, n: usize) -> Key {
        Key::from_bytes(&self.0[..n.min(self.len())])
    }

    /// True iff `self` is a prefix of `other` (possibly equal).
    pub fn is_prefix_of(&self, other: &Key) -> bool {
        other.0.starts_with(&self.0)
    }

    /// True iff `self` is a *proper* prefix of `other`
    /// (prefix and `self != other`).
    pub fn is_proper_prefix_of(&self, other: &Key) -> bool {
        self.len() < other.len() && self.is_prefix_of(other)
    }

    /// The paper's `Prefixes(k)`: all proper prefixes of `k`, from `ε`
    /// up to `k` minus its last digit.
    ///
    /// `Prefixes(10101) = {ε, 1, 10, 101, 1010}`.
    pub fn proper_prefixes(&self) -> impl Iterator<Item = Key> + '_ {
        (0..self.len()).map(move |n| self.truncated(n))
    }

    /// The paper's `GCP(k1, k2)`: longest common prefix of the two keys.
    ///
    /// `GCP(101, 100) = 10`.
    pub fn gcp(&self, other: &Key) -> Key {
        self.truncated(self.gcp_len(other))
    }

    /// Length of the greatest common prefix, `|GCP(self, other)|`,
    /// without allocating.
    pub fn gcp_len(&self, other: &Key) -> usize {
        self.0
            .iter()
            .zip(other.0.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Greatest common prefix of a whole collection (`GCP(w1, w2, …)`).
    /// Returns `None` for an empty collection.
    pub fn gcp_all<I, K>(keys: I) -> Option<Key>
    where
        I: IntoIterator<Item = K>,
        K: Borrow<Key>,
    {
        let mut iter = keys.into_iter();
        let first = iter.next()?.borrow().clone();
        let mut len = first.len();
        for k in iter {
            len = len.min(first.gcp_len(k.borrow()));
            if len == 0 {
                break;
            }
        }
        Some(first.truncated(len))
    }

    /// The digit of `self` at position `|prefix|`, i.e. the digit that
    /// distinguishes this key within the subtree rooted at `prefix`.
    /// `None` if `self` is not longer than the prefix.
    pub fn digit_after(&self, prefix: &Key) -> Option<u8> {
        self.0.get(prefix.len()).copied()
    }

    /// Renders the key for display; `ε` shows as `"ε"`.
    pub fn display(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "ε");
        }
        match std::str::from_utf8(&self.0) {
            Ok(s) => f.write_str(s),
            Err(_) => {
                for b in self.0.iter() {
                    write!(f, "\\x{b:02x}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({self})")
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::from_bytes(s.as_bytes().to_vec())
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key::from_bytes(s.into_bytes())
    }
}

impl From<&[u8]> for Key {
    fn from(b: &[u8]) -> Self {
        Key::from_bytes(b.to_vec())
    }
}

impl AsRef<[u8]> for Key {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Circular-interval membership on the identifier ring.
///
/// The ring closes the total lexicographic order: the successor of the
/// greatest identifier wraps to the least. `in_ring_interval(x, a, b)`
/// is true iff walking clockwise (ascending) from just above `a` one
/// meets `x` no later than `b` — i.e. `x ∈ (a, b]` circularly. When
/// `a == b` the interval is the whole ring (every `x` qualifies),
/// matching the one-peer case where that peer owns everything.
pub fn in_ring_interval(x: &Key, a: &Key, b: &Key) -> bool {
    use std::cmp::Ordering::*;
    match a.cmp(b) {
        Less => x > a && x <= b,
        Greater => x > a || x <= b,
        Equal => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    #[test]
    fn epsilon_is_neutral_for_concat() {
        let w = k("10101");
        assert_eq!(Key::epsilon().concat(&w), w);
        assert_eq!(w.concat(&Key::epsilon()), w);
        assert_eq!(Key::epsilon().len(), 0);
        assert!(Key::epsilon().is_empty());
    }

    #[test]
    fn prefixes_matches_paper_example() {
        // Prefixes(10101) = {ε, 1, 10, 101, 1010}
        let got: Vec<Key> = k("10101").proper_prefixes().collect();
        let want = vec![Key::epsilon(), k("1"), k("10"), k("101"), k("1010")];
        assert_eq!(got, want);
    }

    #[test]
    fn gcp_matches_paper_example() {
        // GCP(101, 100) = 10
        assert_eq!(k("101").gcp(&k("100")), k("10"));
        assert_eq!(k("101").gcp_len(&k("100")), 2);
    }

    #[test]
    fn gcp_is_commutative_and_idempotent() {
        let a = k("10111");
        let b = k("101");
        assert_eq!(a.gcp(&b), b.gcp(&a));
        assert_eq!(a.gcp(&a), a);
        assert_eq!(a.gcp(&Key::epsilon()), Key::epsilon());
    }

    #[test]
    fn gcp_all_over_collection() {
        let keys = [k("10101"), k("10111"), k("101111")];
        assert_eq!(Key::gcp_all(keys.iter()), Some(k("101")));
        assert_eq!(Key::gcp_all(std::iter::empty::<Key>()), None);
        assert_eq!(Key::gcp_all([k("01"), k("10101")]), Some(Key::epsilon()));
        assert_eq!(Key::gcp_all([k("abc")]), Some(k("abc")));
    }

    #[test]
    fn prefix_predicates() {
        assert!(k("10").is_prefix_of(&k("10")));
        assert!(!k("10").is_proper_prefix_of(&k("10")));
        assert!(k("10").is_proper_prefix_of(&k("101")));
        assert!(Key::epsilon().is_prefix_of(&k("0")));
        assert!(!k("11").is_prefix_of(&k("10")));
    }

    #[test]
    fn lexicographic_order_includes_prefix_rule() {
        // A proper prefix sorts strictly before its extensions.
        assert!(k("10") < k("101"));
        assert!(k("101") < k("11"));
        assert!(Key::epsilon() < k("0"));
        assert!(k("DGEMM") < k("DTRSM"));
    }

    #[test]
    fn digit_after_prefix() {
        assert_eq!(k("10101").digit_after(&k("10")), Some(b'1'));
        assert_eq!(k("10").digit_after(&k("10")), None);
        assert_eq!(k("0").digit_after(&Key::epsilon()), Some(b'0'));
    }

    #[test]
    fn truncated_and_child() {
        assert_eq!(k("10101").truncated(3), k("101"));
        assert_eq!(k("10101").truncated(99), k("10101"));
        assert_eq!(k("10").child(b'1'), k("101"));
    }

    #[test]
    fn display_shows_epsilon() {
        assert_eq!(Key::epsilon().to_string(), "ε");
        assert_eq!(k("DGEMM").to_string(), "DGEMM");
        assert_eq!(format!("{:?}", k("01")), "Key(01)");
    }

    #[test]
    fn ring_interval_linear_case() {
        let (a, b) = (k("B"), k("M"));
        assert!(in_ring_interval(&k("C"), &a, &b));
        assert!(in_ring_interval(&k("M"), &a, &b)); // right-closed
        assert!(!in_ring_interval(&k("B"), &a, &b)); // left-open
        assert!(!in_ring_interval(&k("Z"), &a, &b));
    }

    #[test]
    fn ring_interval_wrapping_case() {
        let (a, b) = (k("M"), k("B")); // wraps through the maximum
        assert!(in_ring_interval(&k("Z"), &a, &b));
        assert!(in_ring_interval(&k("A"), &a, &b));
        assert!(in_ring_interval(&k("B"), &a, &b));
        assert!(!in_ring_interval(&k("C"), &a, &b));
        assert!(!in_ring_interval(&k("M"), &a, &b));
    }

    #[test]
    fn ring_interval_degenerate_is_full_ring() {
        let a = k("Q");
        assert!(in_ring_interval(&k("A"), &a, &a));
        assert!(in_ring_interval(&k("Q"), &a, &a));
        assert!(in_ring_interval(&k("Z"), &a, &a));
    }
}

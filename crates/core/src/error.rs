//! Error type shared by the DLPT crates.

use std::fmt;

/// Errors surfaced by the DLPT overlay operations.
///
/// The protocol itself is self-healing and most runtime conditions
/// (key absent, request dropped by an exhausted peer) are expressed in
/// result types rather than errors; `DlptError` covers misuse of the
/// API and impossible states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DlptError {
    /// An identifier contained a byte outside the configured alphabet.
    InvalidDigit {
        /// The offending byte.
        byte: u8,
        /// Position of the byte within the identifier.
        position: usize,
    },
    /// The operation requires at least one peer in the ring.
    EmptyRing,
    /// The operation requires a non-empty tree.
    EmptyTree,
    /// A peer with this identifier is already part of the ring.
    DuplicatePeer(String),
    /// No peer with this identifier is part of the ring.
    UnknownPeer(String),
    /// No logical node with this label exists.
    UnknownNode(String),
    /// A message was addressed to an entity that does not exist.
    Undeliverable(String),
    /// The message pump exceeded its hop budget — indicates a routing
    /// loop, which the protocol is supposed to make impossible.
    HopBudgetExhausted {
        /// Budget that was exceeded.
        budget: usize,
    },
    /// A parallel-pump worker died mid-round; the batch was abandoned
    /// cleanly (surviving shards reassembled, in-flight requests
    /// purged) instead of aborting the process.
    WorkerFailed {
        /// Requests of the batch that had already resolved when the
        /// pump collapsed.
        completed: usize,
    },
}

impl fmt::Display for DlptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlptError::InvalidDigit { byte, position } => write!(
                f,
                "byte 0x{byte:02x} at position {position} is outside the alphabet"
            ),
            DlptError::EmptyRing => write!(f, "operation requires at least one peer"),
            DlptError::EmptyTree => write!(f, "operation requires a non-empty tree"),
            DlptError::DuplicatePeer(id) => write!(f, "peer {id:?} already exists"),
            DlptError::UnknownPeer(id) => write!(f, "peer {id:?} does not exist"),
            DlptError::UnknownNode(id) => write!(f, "node {id:?} does not exist"),
            DlptError::Undeliverable(to) => write!(f, "message to {to:?} is undeliverable"),
            DlptError::HopBudgetExhausted { budget } => {
                write!(f, "hop budget of {budget} exhausted (routing loop?)")
            }
            DlptError::WorkerFailed { completed } => write!(
                f,
                "parallel-pump worker died mid-round; batch abandoned \
                 ({completed} requests had already resolved)"
            ),
        }
    }
}

impl std::error::Error for DlptError {}

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, DlptError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = DlptError::InvalidDigit {
            byte: 0x7f,
            position: 3,
        };
        assert!(e.to_string().contains("0x7f"));
        assert!(e.to_string().contains("position 3"));
        let e = DlptError::HopBudgetExhausted { budget: 64 };
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DlptError::EmptyRing);
    }
}

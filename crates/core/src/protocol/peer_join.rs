//! Peer insertion — Algorithms 1 and 2 of the paper.
//!
//! A joining peer `P` sends `<PeerJoin, P, 0>` to a random node. The
//! request climbs the tree (phase 0) until it reaches a node covering
//! `P`'s region (or the root), then descends (phase 1) to the node `t`
//! with the highest identifier `<= P`, which delegates to the peer
//! layer (`<NewPredecessor, P>` to its host, Algorithm 1 line 1.16).
//! The peer layer walks the ring until the peer `Q` whose arc
//! `(pred_Q, Q]` contains `P` is found; `Q` then hands over
//! `ν_P = {n ∈ ν_Q : n <= P}` and splices `P` between `pred_Q` and
//! itself (Algorithm 2).
//!
//! ## Two deliberate deviations from the pseudo-code
//!
//! * Line 1.04 tests `P ∉ Prefixes(p)`; the accompanying prose says the
//!   climb stops at "a node that is either a prefix of `P` or the
//!   root". We implement the prose (`p` prefixes `P`), which is the
//!   variant under which the descent argument of Section 3.1 holds.
//! * Line 2.03 forwards while `Q < P`, which livelocks when `P` is
//!   greater than every peer (the wrap case the mapping rule handles
//!   with `P_min`). We use the circular-interval test
//!   `P ∈ (pred_Q, Q]`, which coincides with the paper's test in the
//!   linear case and terminates in the wrap case.

use crate::key::{in_ring_interval, Key};
use crate::messages::{Envelope, JoinPhase, NodeMsg, PeerMsg};
use crate::node::NodeState;
use crate::peer::PeerShard;
use crate::protocol::Effects;

/// Algorithm 1: `<PeerJoin, P, s>` on node `p`.
pub fn on_peer_join(
    shard: &mut PeerShard,
    node_label: &Key,
    joining: Key,
    phase: JoinPhase,
    fx: &mut Effects,
) {
    // Phase transitions are processed in place rather than by a
    // self-send (the paper's `send(<PeerJoin, P, 1>, p)` to itself) so
    // one visit costs one message in the accounting.
    let (label, father, max_child) = {
        let node = shard.nodes.get(node_label).expect("routed to hosted node");
        (
            node.label.clone(),
            node.father.clone(),
            node.max_child_le(&joining).cloned(),
        )
    };
    match phase {
        JoinPhase::Up => {
            // Lines 1.03–1.10: climb until this node covers P's region
            // or is the root, then switch to the descent.
            match father {
                Some(f) if !label.is_prefix_of(&joining) => {
                    fx.send(Envelope::to_node(
                        f,
                        NodeMsg::PeerJoin {
                            joining,
                            phase: JoinPhase::Up,
                        },
                    ));
                }
                _ => descend(shard, &label, joining, max_child, fx),
            }
        }
        JoinPhase::Down => descend(shard, &label, joining, max_child, fx),
    }
}

/// Lines 1.11–1.16: move to `Max({q ∈ C_p : q <= P})`, or hand over to
/// the peer layer when no child qualifies (this node is then the
/// highest tree node `<= P` reachable in its subtree).
fn descend(
    shard: &mut PeerShard,
    _label: &Key,
    joining: Key,
    max_child: Option<Key>,
    fx: &mut Effects,
) {
    match max_child {
        Some(q) => fx.send(Envelope::to_node(
            q,
            NodeMsg::PeerJoin {
                joining,
                phase: JoinPhase::Down,
            },
        )),
        None => fx.send(Envelope::to_peer(
            shard.peer.id.clone(),
            PeerMsg::NewPredecessor { joining },
        )),
    }
}

/// Algorithm 2: `<NewPredecessor, P>` on peer `Q`.
pub fn on_new_predecessor(shard: &mut PeerShard, joining: Key, fx: &mut Effects) {
    let q_id = shard.peer.id.clone();
    if joining == q_id {
        return; // duplicate identifier; the system layer rejects these
    }
    let pred = shard.peer.pred.clone();
    if !in_ring_interval(&joining, &pred, &q_id) {
        // Line 2.03–2.04 generalized: P is not in our arc; keep walking.
        fx.send(Envelope::to_peer(
            shard.peer.succ.clone(),
            PeerMsg::NewPredecessor { joining },
        ));
        return;
    }
    // Lines 2.05–2.10: P becomes our predecessor. Hand over every node
    // in the arc (pred_Q, P] — exactly `ν_P = {n ∈ ν_Q : n <= P}` of
    // line 2.06, phrased circularly.
    let handed_labels: Vec<Key> = shard
        .nodes
        .keys()
        .filter(|n| in_ring_interval(n, &pred, &joining))
        .cloned()
        .collect();
    let mut handed: Vec<NodeState> = Vec::with_capacity(handed_labels.len());
    for l in &handed_labels {
        let node = shard.evict(l).expect("label was just listed");
        fx.relocated.push((l.clone(), joining.clone()));
        handed.push(node);
    }
    // When we were alone, pred == q_id and both of P's links point at
    // us — the same expression covers both cases.
    fx.send(Envelope::to_peer(
        joining.clone(),
        PeerMsg::YourInformation {
            pred: pred.clone(),
            succ: q_id.clone(),
            nodes: handed,
        },
    ));
    // Line 2.09: tell pred_Q its successor changed. When we are alone
    // the message loops back to ourselves and sets succ = P.
    fx.send(Envelope::to_peer(
        pred,
        PeerMsg::UpdateSuccessor {
            succ: joining.clone(),
        },
    ));
    shard.peer.pred = joining; // line 2.10
}

/// `<YourInformation, (pred, succ, ν)>` on the joining peer.
pub fn on_your_information(
    shard: &mut PeerShard,
    pred: Key,
    succ: Key,
    nodes: Vec<NodeState>,
    _fx: &mut Effects,
) {
    shard.peer.pred = pred;
    shard.peer.succ = succ;
    for n in nodes {
        shard.install(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Address;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn shard_with_nodes(peer: &str, labels: &[&str]) -> PeerShard {
        let mut s = PeerShard::new(k(peer), 100);
        for l in labels {
            s.install(NodeState::new(k(l)));
        }
        s
    }

    #[test]
    fn up_phase_climbs_to_father() {
        let mut s = shard_with_nodes("Z", &["1010"]);
        s.nodes.get_mut(&k("1010")).unwrap().father = Some(k("10"));
        let mut fx = Effects::default();
        on_peer_join(&mut s, &k("1010"), k("0XYZ"), JoinPhase::Up, &mut fx);
        assert_eq!(fx.out.len(), 1);
        assert_eq!(fx.out[0].to, Address::Node(k("10")));
    }

    #[test]
    fn up_phase_switches_to_descent_when_covering() {
        // Node "0" prefixes the joining id "0XYZ": descend from here.
        let mut s = shard_with_nodes("Z", &["0"]);
        {
            let n = s.nodes.get_mut(&k("0")).unwrap();
            n.father = Some(Key::epsilon());
            n.children.insert(k("00"));
            n.children.insert(k("0X"));
        }
        let mut fx = Effects::default();
        on_peer_join(&mut s, &k("0"), k("0XYZ"), JoinPhase::Up, &mut fx);
        assert_eq!(fx.out.len(), 1);
        // Max child <= "0XYZ" is "0X".
        assert_eq!(fx.out[0].to, Address::Node(k("0X")));
    }

    #[test]
    fn descent_hands_over_to_peer_layer_at_bottom() {
        let mut s = shard_with_nodes("Z", &["0X"]);
        s.nodes.get_mut(&k("0X")).unwrap().father = Some(k("0"));
        let mut fx = Effects::default();
        on_peer_join(&mut s, &k("0X"), k("0XYZ"), JoinPhase::Down, &mut fx);
        assert_eq!(fx.out.len(), 1);
        assert_eq!(fx.out[0].to, Address::Peer(k("Z")));
        assert!(matches!(
            fx.out[0].msg,
            crate::messages::Message::Peer(PeerMsg::NewPredecessor { .. })
        ));
    }

    #[test]
    fn root_switches_phase_even_without_prefix() {
        let mut s = shard_with_nodes("Z", &["1"]);
        let mut fx = Effects::default();
        // Root "1" does not prefix "0XYZ" but has no father.
        on_peer_join(&mut s, &k("1"), k("0XYZ"), JoinPhase::Up, &mut fx);
        // No child <= joining → peer layer.
        assert_eq!(fx.out[0].to, Address::Peer(k("Z")));
    }

    #[test]
    fn new_predecessor_splits_nodes_at_joining_id() {
        // Ring: D → M → T (→ D). M hosts nodes E, G, K, M.
        let mut s = shard_with_nodes("M", &["E", "G", "K", "M"]);
        s.peer.pred = k("D");
        s.peer.succ = k("T");
        let mut fx = Effects::default();
        on_new_predecessor(&mut s, k("H"), &mut fx);
        // H takes (D, H] = {E, G}; M keeps {K, M}.
        assert_eq!(s.peer.pred, k("H"));
        assert_eq!(s.node_count(), 2);
        assert!(s.nodes.contains_key(&k("K")));
        let your_info = fx
            .out
            .iter()
            .find_map(|e| match (&e.to, &e.msg) {
                (
                    Address::Peer(p),
                    crate::messages::Message::Peer(PeerMsg::YourInformation { pred, succ, nodes }),
                ) if p == &k("H") => Some((pred.clone(), succ.clone(), nodes.len())),
                _ => None,
            })
            .expect("YourInformation sent to H");
        assert_eq!(your_info, (k("D"), k("M"), 2));
        // pred D told its successor is now H.
        assert!(fx.out.iter().any(|e| e.to == Address::Peer(k("D"))
            && matches!(
                &e.msg,
                crate::messages::Message::Peer(PeerMsg::UpdateSuccessor { succ }) if succ == &k("H")
            )));
        // Relocations recorded for the directory.
        assert_eq!(fx.relocated.len(), 2);
    }

    #[test]
    fn new_predecessor_forwards_when_not_in_arc() {
        let mut s = shard_with_nodes("M", &[]);
        s.peer.pred = k("D");
        s.peer.succ = k("T");
        let mut fx = Effects::default();
        on_new_predecessor(&mut s, k("R"), &mut fx);
        assert_eq!(s.peer.pred, k("D"), "unchanged");
        assert_eq!(fx.out.len(), 1);
        assert_eq!(fx.out[0].to, Address::Peer(k("T")));
    }

    #[test]
    fn second_peer_forms_two_ring() {
        // Single peer M (pred = succ = M) hosting everything; D joins.
        let mut s = shard_with_nodes("M", &["A", "K", "Z"]);
        let mut fx = Effects::default();
        on_new_predecessor(&mut s, k("D"), &mut fx);
        assert_eq!(s.peer.pred, k("D"));
        // D takes (M, D] wrapping: {Z, A}; M keeps {K}.
        assert_eq!(s.node_count(), 1);
        assert!(s.nodes.contains_key(&k("K")));
        let (pred, succ, n) = fx
            .out
            .iter()
            .find_map(|e| match &e.msg {
                crate::messages::Message::Peer(PeerMsg::YourInformation { pred, succ, nodes }) => {
                    Some((pred.clone(), succ.clone(), nodes.len()))
                }
                _ => None,
            })
            .unwrap();
        assert_eq!((pred, succ, n), (k("M"), k("M"), 2));
    }

    #[test]
    fn wrap_case_terminates_instead_of_livelocking() {
        // P greater than every peer: must be accepted by P_min's arc
        // owner. Ring D → M (→ D); arcs: (M, D] owns wrap, (D, M].
        let mut s = shard_with_nodes("D", &[]);
        s.peer.pred = k("M");
        s.peer.succ = k("M");
        let mut fx = Effects::default();
        // "Z" ∈ (M, D] circularly → accepted at D.
        on_new_predecessor(&mut s, k("Z"), &mut fx);
        assert_eq!(s.peer.pred, k("Z"));
    }

    #[test]
    fn your_information_bootstraps_joining_peer() {
        let mut s = PeerShard::new(k("H"), 50);
        let mut fx = Effects::default();
        on_your_information(
            &mut s,
            k("D"),
            k("M"),
            vec![NodeState::new(k("E")), NodeState::new(k("G"))],
            &mut fx,
        );
        assert_eq!(s.peer.pred, k("D"));
        assert_eq!(s.peer.succ, k("M"));
        assert_eq!(s.node_count(), 2);
        assert!(fx.out.is_empty());
    }
}

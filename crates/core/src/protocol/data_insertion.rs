//! Data insertion — Algorithm 3 of the paper.
//!
//! To declare a service with key `k`, a server sends
//! `<DataInsertion, k>` to a random node. The request is routed to the
//! node labeled `k`, creating it (and, for a sibling split, the common
//! parent labeled `GCP(p, k)`) if it does not exist. A freshly created
//! node travels as a `<SearchingHost, (l, f, C, δ)>` message that
//! descends to the highest existing node below `l` and is then handed
//! to the peer layer as `<Host, …>` (lines 3.32–3.37).
//!
//! ## Deliberate deviations from the pseudo-code
//!
//! * **Line 3.15** tests `|GCP(k, f_p)| = |p|`, which is unsatisfiable
//!   (both `k` and `f_p` are proper prefixes of `p`, so the GCP is
//!   shorter than `p`). The intended test — route up when the sought
//!   node is *above* the father — is `k` properly prefixes `f_p`,
//!   which is what we implement.
//! * **Line 3.30** seeds the new sibling node `k` with father `p`; the
//!   father must be the freshly created common parent `GCP(p, k)`
//!   (cf. line 3.26 which gives that parent children `{p, k}`).
//! * **Line 3.33** picks `Max{f ∈ C_p : f <= l}`. The seeded parent of
//!   a new node can already list `l` among its children (line 3.26),
//!   so `<=` would forward the search to the very node being created;
//!   we use strictly `<`.
//! * **Line 3.37** delivers `<Host>` to the peer running the search's
//!   last node, but that peer does not always satisfy the mapping rule
//!   (its identifier may lie below `l`). [`on_host`] re-forwards along
//!   the ring until the label falls inside the receiving peer's arc,
//!   making `host(n) = min {P : P >= n}` an invariant rather than an
//!   assumption.

use crate::key::{in_ring_interval, Key};
use crate::messages::{Envelope, NodeMsg, NodeSeed, PeerMsg};
use crate::peer::PeerShard;
use crate::protocol::Effects;

/// Algorithm 3, lines 3.02–3.31: `<DataInsertion, k>` on node `p`.
pub fn on_data_insertion(shard: &mut PeerShard, node_label: &Key, key: Key, fx: &mut Effects) {
    let p = shard
        .nodes
        .get_mut(node_label)
        .expect("routed to hosted node");
    let p_label = p.label.clone();

    // Case 1 (line 3.03): this is the node; register the datum.
    if p_label == key {
        p.data.insert(key);
        return;
    }

    // Case 2 (lines 3.04–3.09): the key belongs in our subtree.
    if p_label.is_proper_prefix_of(&key) {
        if let Some(q) = p.child_extending(&key).cloned() {
            // Line 3.06: a child covers the key more precisely.
            fx.send(Envelope::to_node(q, NodeMsg::DataInsertion { key }));
        } else {
            // Lines 3.08–3.09: create the node as our child and start
            // the host search from ourselves.
            let seed = NodeSeed {
                label: key.clone(),
                father: Some(p_label.clone()),
                children: Vec::new(),
                data: vec![key.clone()],
            };
            p.children.insert(key);
            fx.send(Envelope::to_node(p_label, NodeMsg::SearchingHost { seed }));
        }
        return;
    }

    // Case 3 (lines 3.10–3.20): the sought node is an ancestor.
    if key.is_proper_prefix_of(&p_label) {
        match p.father.clone() {
            None => {
                // Lines 3.11–3.13: we are the root; the key becomes the
                // new root with us as its only child.
                let seed = NodeSeed {
                    label: key.clone(),
                    father: None,
                    children: vec![p_label.clone()],
                    data: vec![key.clone()],
                };
                p.father = Some(key);
                fx.send(Envelope::to_node(p_label, NodeMsg::SearchingHost { seed }));
            }
            Some(f) => {
                if key.is_prefix_of(&f) {
                    // Line 3.16 (test corrected, see module docs): the
                    // node belongs at or above our father. The equal
                    // case happens when the key's node already exists
                    // and the request entered the tree below it — the
                    // father *is* the destination (case 1 there).
                    fx.send(Envelope::to_node(f, NodeMsg::DataInsertion { key }));
                } else {
                    // Lines 3.18–3.20: splice the new node between our
                    // father and us.
                    debug_assert!(f.is_proper_prefix_of(&key));
                    let seed = NodeSeed {
                        label: key.clone(),
                        father: Some(f.clone()),
                        children: vec![p_label.clone()],
                        data: vec![key.clone()],
                    };
                    p.father = Some(key.clone());
                    fx.send(Envelope::to_node(
                        f.clone(),
                        NodeMsg::SearchingHost { seed },
                    ));
                    fx.send(Envelope::to_node(
                        f,
                        NodeMsg::UpdateChild {
                            old: p_label,
                            new: key,
                        },
                    ));
                }
            }
        }
        return;
    }

    // Case 4 (lines 3.21–3.31): the key diverges from us.
    let g = p_label.gcp(&key);
    let father = p.father.clone();
    if let Some(f) = father.as_ref() {
        if g.len() <= f.len() {
            // Line 3.23: our father shares at least as much with the
            // key as we do — the divergence point is above us.
            fx.send(Envelope::to_node(f.clone(), NodeMsg::DataInsertion { key }));
            return;
        }
    }
    // Lines 3.24–3.31: create the common parent `g = GCP(p, k)` with
    // children {p, k}, and the node k itself (father corrected to g,
    // see module docs).
    let parent_seed = NodeSeed {
        label: g.clone(),
        father: father.clone(),
        children: vec![p_label.clone(), key.clone()],
        data: Vec::new(),
    };
    let key_seed = NodeSeed {
        label: key.clone(),
        father: Some(g.clone()),
        children: Vec::new(),
        data: vec![key.clone()],
    };
    p.father = Some(g.clone());
    match father {
        None => {
            // Lines 3.25–3.26: we are the root; searches start at us.
            fx.send(Envelope::to_node(
                p_label.clone(),
                NodeMsg::SearchingHost { seed: parent_seed },
            ));
            fx.send(Envelope::to_node(
                p_label,
                NodeMsg::SearchingHost { seed: key_seed },
            ));
        }
        Some(f) => {
            // Lines 3.27–3.30.
            fx.send(Envelope::to_node(
                f.clone(),
                NodeMsg::SearchingHost { seed: parent_seed },
            ));
            fx.send(Envelope::to_node(
                f.clone(),
                NodeMsg::UpdateChild {
                    old: p_label,
                    new: g,
                },
            ));
            fx.send(Envelope::to_node(
                f,
                NodeMsg::SearchingHost { seed: key_seed },
            ));
        }
    }
}

/// Algorithm 3, lines 3.32–3.37: `<SearchingHost, (l, f, C, δ)>` on
/// node `p` — descend toward the highest node strictly below `l`, then
/// hand the seed to the peer layer.
pub fn on_searching_host(
    shard: &mut PeerShard,
    node_label: &Key,
    seed: NodeSeed,
    fx: &mut Effects,
) {
    let p = shard.nodes.get(node_label).expect("routed to hosted node");
    // Strictly below `l` (see module docs on line 3.33).
    let next = p
        .children
        .range::<Key, _>(..&seed.label)
        .next_back()
        .cloned();
    match next {
        Some(q) => fx.send(Envelope::to_node(q, NodeMsg::SearchingHost { seed })),
        None => fx.send(Envelope::to_peer(
            shard.peer.id.clone(),
            PeerMsg::Host { seed },
        )),
    }
}

/// Line 3.37 endpoint with the ring-forwarding guard: install the node
/// if its label falls in this peer's arc `(pred, id]`, otherwise pass
/// the seed along the ring toward its true host.
pub fn on_host(shard: &mut PeerShard, seed: NodeSeed, fx: &mut Effects) {
    let me = shard.peer.id.clone();
    if in_ring_interval(&seed.label, &shard.peer.pred, &me) {
        fx.relocated.push((seed.label.clone(), me));
        shard.install(seed.into_state());
        return;
    }
    // Walk toward the owner. Linear comparison picks the short
    // direction; the wrap arc is owned by P_min whose interval test
    // catches both sides.
    let towards = if seed.label > me {
        shard.peer.succ.clone()
    } else {
        shard.peer.pred.clone()
    };
    fx.send(Envelope::to_peer(towards, PeerMsg::Host { seed }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{Address, Message};
    use crate::node::NodeState;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn seed(label: &str) -> NodeSeed {
        NodeSeed {
            label: k(label),
            father: None,
            children: Vec::new(),
            data: Vec::new(),
        }
    }

    fn shard(peer: &str) -> PeerShard {
        PeerShard::new(k(peer), 100)
    }

    fn sent_to_node<'a>(fx: &'a Effects, label: &str) -> Vec<&'a NodeMsg> {
        fx.out
            .iter()
            .filter_map(|e| match (&e.to, &e.msg) {
                (Address::Node(n), Message::Node(m)) if n == &k(label) => Some(m),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn case1_registers_datum_in_place() {
        let mut s = shard("Z");
        s.install(NodeState::new(k("DGEMM")));
        let mut fx = Effects::default();
        on_data_insertion(&mut s, &k("DGEMM"), k("DGEMM"), &mut fx);
        assert!(fx.out.is_empty());
        assert!(s.nodes[&k("DGEMM")].data.contains(&k("DGEMM")));
    }

    #[test]
    fn case2_forwards_to_extending_child() {
        let mut s = shard("Z");
        let mut n = NodeState::new(k("10"));
        n.children.insert(k("10101"));
        n.children.insert(k("10111"));
        s.install(n);
        let mut fx = Effects::default();
        on_data_insertion(&mut s, &k("10"), k("101011"), &mut fx);
        let msgs = sent_to_node(&fx, "10101");
        assert_eq!(msgs.len(), 1);
        assert!(matches!(msgs[0], NodeMsg::DataInsertion { key } if key == &k("101011")));
    }

    #[test]
    fn case2_creates_child_and_searches_host() {
        let mut s = shard("Z");
        s.install(NodeState::new(k("10")));
        let mut fx = Effects::default();
        on_data_insertion(&mut s, &k("10"), k("1011"), &mut fx);
        // Child registered immediately (line 3.09).
        assert!(s.nodes[&k("10")].children.contains(&k("1011")));
        let msgs = sent_to_node(&fx, "10");
        assert_eq!(msgs.len(), 1);
        match msgs[0] {
            NodeMsg::SearchingHost { seed } => {
                assert_eq!(seed.label, k("1011"));
                assert_eq!(seed.father, Some(k("10")));
                assert!(seed.children.is_empty());
                assert_eq!(seed.data, vec![k("1011")]);
            }
            other => panic!("expected SearchingHost, got {other:?}"),
        }
    }

    #[test]
    fn case3_new_root_above_current() {
        let mut s = shard("Z");
        s.install(NodeState::new(k("10101")));
        let mut fx = Effects::default();
        on_data_insertion(&mut s, &k("10101"), k("10"), &mut fx);
        assert_eq!(s.nodes[&k("10101")].father, Some(k("10")));
        let msgs = sent_to_node(&fx, "10101");
        assert_eq!(msgs.len(), 1);
        match msgs[0] {
            NodeMsg::SearchingHost { seed } => {
                assert_eq!(seed.label, k("10"));
                assert_eq!(seed.father, None);
                assert_eq!(seed.children, vec![k("10101")]);
            }
            other => panic!("expected SearchingHost, got {other:?}"),
        }
    }

    #[test]
    fn case3_routes_up_when_father_is_the_key() {
        // Regression: the key's node already exists and the request
        // entered below it. Forward up — never create a duplicate
        // (a duplicate seed would carry father == label and loop).
        let mut s = shard("Z");
        let mut n = NodeState::new(k("PDGELSD"));
        n.father = Some(k("PDGELS"));
        s.install(n);
        let mut fx = Effects::default();
        on_data_insertion(&mut s, &k("PDGELSD"), k("PDGELS"), &mut fx);
        let msgs = sent_to_node(&fx, "PDGELS");
        assert_eq!(msgs.len(), 1);
        assert!(matches!(msgs[0], NodeMsg::DataInsertion { key } if key == &k("PDGELS")));
        assert_eq!(
            s.nodes[&k("PDGELSD")].father,
            Some(k("PDGELS")),
            "father untouched"
        );
    }

    #[test]
    fn case3_routes_up_when_key_prefixes_father() {
        let mut s = shard("Z");
        let mut n = NodeState::new(k("10101"));
        n.father = Some(k("1010"));
        s.install(n);
        let mut fx = Effects::default();
        on_data_insertion(&mut s, &k("10101"), k("10"), &mut fx);
        let msgs = sent_to_node(&fx, "1010");
        assert_eq!(msgs.len(), 1);
        assert!(matches!(msgs[0], NodeMsg::DataInsertion { key } if key == &k("10")));
    }

    #[test]
    fn case3_splices_between_father_and_node() {
        let mut s = shard("Z");
        let mut n = NodeState::new(k("10101"));
        n.father = Some(k("1"));
        s.install(n);
        let mut fx = Effects::default();
        on_data_insertion(&mut s, &k("10101"), k("101"), &mut fx);
        assert_eq!(s.nodes[&k("10101")].father, Some(k("101")));
        let msgs = sent_to_node(&fx, "1");
        assert_eq!(msgs.len(), 2);
        match msgs[0] {
            NodeMsg::SearchingHost { seed } => {
                assert_eq!(seed.label, k("101"));
                assert_eq!(seed.father, Some(k("1")));
                assert_eq!(seed.children, vec![k("10101")]);
            }
            other => panic!("expected SearchingHost, got {other:?}"),
        }
        assert!(matches!(
            msgs[1],
            NodeMsg::UpdateChild { old, new } if old == &k("10101") && new == &k("101")
        ));
    }

    #[test]
    fn case4_sibling_split_at_root() {
        let mut s = shard("Z");
        s.install(NodeState::new(k("01")));
        let mut fx = Effects::default();
        on_data_insertion(&mut s, &k("01"), k("10101"), &mut fx);
        // Common parent ε with children {01, 10101}; new father set.
        assert_eq!(s.nodes[&k("01")].father, Some(Key::epsilon()));
        let msgs = sent_to_node(&fx, "01");
        assert_eq!(msgs.len(), 2);
        match (&msgs[0], &msgs[1]) {
            (NodeMsg::SearchingHost { seed: parent }, NodeMsg::SearchingHost { seed: leaf }) => {
                assert_eq!(parent.label, Key::epsilon());
                assert_eq!(parent.father, None);
                assert_eq!(parent.children, vec![k("01"), k("10101")]);
                assert!(parent.data.is_empty());
                assert_eq!(leaf.label, k("10101"));
                assert_eq!(leaf.father, Some(Key::epsilon()));
                assert_eq!(leaf.data, vec![k("10101")]);
            }
            other => panic!("expected two SearchingHost, got {other:?}"),
        }
    }

    #[test]
    fn case4_routes_up_when_divergence_is_above_father() {
        let mut s = shard("Z");
        let mut n = NodeState::new(k("1010"));
        n.father = Some(k("10"));
        s.install(n);
        let mut fx = Effects::default();
        // GCP(1010, 11) = 1, shorter than father 10 → go up.
        on_data_insertion(&mut s, &k("1010"), k("11"), &mut fx);
        let msgs = sent_to_node(&fx, "10");
        assert_eq!(msgs.len(), 1);
        assert!(matches!(msgs[0], NodeMsg::DataInsertion { key } if key == &k("11")));
    }

    #[test]
    fn case4_sibling_split_below_father() {
        let mut s = shard("Z");
        let mut n = NodeState::new(k("10101"));
        n.father = Some(k("1"));
        s.install(n);
        let mut fx = Effects::default();
        // GCP(10101, 10111) = 101, longer than father 1 → split here.
        on_data_insertion(&mut s, &k("10101"), k("10111"), &mut fx);
        assert_eq!(s.nodes[&k("10101")].father, Some(k("101")));
        let msgs = sent_to_node(&fx, "1");
        assert_eq!(msgs.len(), 3);
        match msgs[0] {
            NodeMsg::SearchingHost { seed } => {
                assert_eq!(seed.label, k("101"));
                assert_eq!(seed.father, Some(k("1")));
                assert_eq!(seed.children, vec![k("10101"), k("10111")]);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            msgs[1],
            NodeMsg::UpdateChild { old, new } if old == &k("10101") && new == &k("101")
        ));
        match msgs[2] {
            NodeMsg::SearchingHost { seed } => {
                assert_eq!(seed.label, k("10111"));
                assert_eq!(seed.father, Some(k("101")), "father is the new GCP node");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn searching_host_descends_strictly_below_label() {
        let mut s = shard("Z");
        let mut n = NodeState::new(k("101"));
        // Children include the label being created ("10111") — the
        // strict `<` must skip it (deviation for line 3.33).
        n.children.insert(k("10101"));
        n.children.insert(k("10111"));
        s.install(n);
        let mut fx = Effects::default();
        on_searching_host(&mut s, &k("101"), seed("10111"), &mut fx);
        let msgs = sent_to_node(&fx, "10101");
        assert_eq!(msgs.len(), 1, "must descend to 10101, not 10111");
    }

    #[test]
    fn searching_host_hands_to_peer_when_no_lower_child() {
        let mut s = shard("Z");
        s.install(NodeState::new(k("101")));
        let mut fx = Effects::default();
        on_searching_host(&mut s, &k("101"), seed("10111"), &mut fx);
        assert_eq!(fx.out.len(), 1);
        assert_eq!(fx.out[0].to, Address::Peer(k("Z")));
    }

    #[test]
    fn host_installs_when_label_in_arc() {
        let mut s = shard("M");
        s.peer.pred = k("D");
        s.peer.succ = k("T");
        let mut fx = Effects::default();
        on_host(&mut s, seed("G"), &mut fx);
        assert!(s.nodes.contains_key(&k("G")));
        assert_eq!(fx.relocated, vec![(k("G"), k("M"))]);
        assert!(fx.out.is_empty());
    }

    #[test]
    fn host_forwards_toward_owner() {
        let mut s = shard("M");
        s.peer.pred = k("D");
        s.peer.succ = k("T");
        let mut fx = Effects::default();
        // "R" > "M": forward to successor.
        on_host(&mut s, seed("R"), &mut fx);
        assert_eq!(fx.out[0].to, Address::Peer(k("T")));
        // "B" < pred "D": forward to predecessor.
        let mut fx = Effects::default();
        on_host(&mut s, seed("B"), &mut fx);
        assert_eq!(fx.out[0].to, Address::Peer(k("D")));
        assert!(!s.nodes.contains_key(&k("R")));
    }

    #[test]
    fn host_on_minimum_peer_accepts_wrap_labels() {
        // D is P_min: its arc (T, D] owns labels above T and below D.
        let mut s = shard("D");
        s.peer.pred = k("T");
        s.peer.succ = k("M");
        let mut fx = Effects::default();
        on_host(&mut s, seed("Z"), &mut fx);
        assert!(
            s.nodes.contains_key(&k("Z")),
            "wrap label installs on P_min"
        );
    }
}

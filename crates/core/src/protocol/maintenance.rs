//! Ring maintenance: graceful departure and its hand-off.
//!
//! The paper's evaluation churns peers ("a fixed fraction of peers
//! leaves the system") without spelling out the departure protocol; the
//! natural one under the successor mapping rule is implemented here: a
//! leaving peer `L` transfers every node it runs to its successor
//! (which is exactly where `host(n) = min {P : P >= n}` points once `L`
//! is gone) and splices itself out of the ring. Non-graceful departure
//! (crash) is a runtime-level operation with tree repair — see
//! `DlptSystem::{crash_peer, repair_tree}`.

use crate::key::Key;
use crate::messages::{Envelope, PeerMsg};
use crate::node::NodeState;
use crate::peer::PeerShard;
use crate::protocol::Effects;

/// Emits the departure messages for the peer owning `shard` and drains
/// its nodes. After this the runtime must drop the shard.
///
/// * `<TakeOver, (pred_L, ν_L)>` → successor;
/// * `<UpdateSuccessor, succ_L>` → predecessor.
pub fn leave(shard: &mut PeerShard, fx: &mut Effects) {
    let id = shard.peer.id.clone();
    let succ = shard.peer.succ.clone();
    let pred = shard.peer.pred.clone();
    if succ == id {
        // Last peer of the system: nothing to hand over to.
        return;
    }
    let labels: Vec<Key> = shard.nodes.keys().cloned().collect();
    let mut nodes = Vec::with_capacity(labels.len());
    for l in &labels {
        fx.relocated.push((l.clone(), succ.clone()));
        nodes.push(shard.evict(l).expect("listed"));
    }
    fx.send(Envelope::to_peer(
        succ.clone(),
        PeerMsg::TakeOver {
            pred: pred.clone(),
            nodes,
        },
    ));
    fx.send(Envelope::to_peer(pred, PeerMsg::UpdateSuccessor { succ }));
}

/// `<TakeOver, (pred, ν)>` on the successor of a leaving peer.
pub fn on_take_over(shard: &mut PeerShard, pred: Key, nodes: Vec<NodeState>, _fx: &mut Effects) {
    if pred == shard.peer.id {
        // The leaver was the only other peer: both links collapse to
        // ourselves.
        let me = shard.peer.id.clone();
        shard.peer.pred = me.clone();
        shard.peer.succ = me;
    } else {
        shard.peer.pred = pred;
    }
    for n in nodes {
        shard.install(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{Address, Message};

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    #[test]
    fn leave_hands_nodes_to_successor() {
        let mut s = PeerShard::new(k("M"), 10);
        s.peer.pred = k("D");
        s.peer.succ = k("T");
        s.install(NodeState::new(k("E")));
        s.install(NodeState::new(k("K")));
        let mut fx = Effects::default();
        leave(&mut s, &mut fx);
        assert_eq!(s.node_count(), 0);
        assert_eq!(fx.relocated.len(), 2);
        assert!(fx.relocated.iter().all(|(_, host)| host == &k("T")));
        let take = fx
            .out
            .iter()
            .find(|e| e.to == Address::Peer(k("T")))
            .unwrap();
        match &take.msg {
            Message::Peer(PeerMsg::TakeOver { pred, nodes }) => {
                assert_eq!(pred, &k("D"));
                assert_eq!(nodes.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(fx.out.iter().any(|e| e.to == Address::Peer(k("D"))
            && matches!(
                &e.msg,
                Message::Peer(PeerMsg::UpdateSuccessor { succ }) if succ == &k("T")
            )));
    }

    #[test]
    fn last_peer_leave_is_noop() {
        let mut s = PeerShard::new(k("M"), 10);
        s.install(NodeState::new(k("E")));
        let mut fx = Effects::default();
        leave(&mut s, &mut fx);
        assert!(fx.out.is_empty());
        assert_eq!(s.node_count(), 1, "nothing to hand over to");
    }

    #[test]
    fn take_over_installs_and_relinks() {
        let mut s = PeerShard::new(k("T"), 10);
        s.peer.pred = k("M");
        s.peer.succ = k("D");
        let mut fx = Effects::default();
        on_take_over(
            &mut s,
            k("D"),
            vec![NodeState::new(k("E")), NodeState::new(k("K"))],
            &mut fx,
        );
        assert_eq!(s.peer.pred, k("D"));
        assert_eq!(s.node_count(), 2);
    }

    #[test]
    fn take_over_collapses_two_peer_ring() {
        // Ring T ↔ M; M leaves; T becomes solitary.
        let mut s = PeerShard::new(k("T"), 10);
        s.peer.pred = k("M");
        s.peer.succ = k("M");
        let mut fx = Effects::default();
        on_take_over(&mut s, k("T"), vec![NodeState::new(k("E"))], &mut fx);
        assert_eq!(s.peer.pred, k("T"));
        assert_eq!(s.peer.succ, k("T"));
        assert_eq!(s.node_count(), 1);
    }
}

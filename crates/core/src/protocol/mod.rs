//! The DLPT protocol: message handlers over peer shards.
//!
//! Every handler receives **exactly one** `&mut PeerShard` — the shard
//! of the peer that physically received the message — plus the message
//! payload, and communicates only by pushing [`Envelope`]s into
//! [`Effects`]. The signature makes reaching across the network a type
//! error, so the same handlers are valid under the synchronous pump
//! ([`crate::system::DlptSystem`]), the discrete-event simulator and
//! the threaded live runtime in `dlpt-net`.
//!
//! | Paper | Module |
//! |---|---|
//! | Algorithm 1 (`PeerJoin`, on node `p`) | [`peer_join`] |
//! | Algorithm 2 (`NewPredecessor`, on peer `Q`) | [`peer_join`] |
//! | Algorithm 3 (`DataInsertion` / `SearchingHost`, on node `p`) | [`data_insertion`] |
//! | Section 2 discovery routing (exact / range / completion) | [`discovery`] |
//! | Graceful departure hand-off (not spelled out in the paper) | [`maintenance`] |
//! | k-replica placement + anti-entropy (extension, DESIGN.md) | [`repair`] |

pub mod data_insertion;
pub mod data_removal;
pub mod discovery;
pub mod maintenance;
pub mod peer_join;
pub mod repair;

use crate::key::Key;
use crate::messages::{Envelope, Message, NodeMsg, PeerMsg};
use crate::peer::PeerShard;

/// Side effects of one handler invocation.
///
/// Besides outgoing messages, handlers report node relocations so the
/// runtime can keep its delivery directory consistent (in a deployment
/// the directory is implicit: links carry host addresses and relocations
/// piggyback on the hand-off messages themselves).
#[derive(Debug, Default)]
pub struct Effects {
    /// Messages to send.
    pub out: Vec<Envelope>,
    /// `(node label, new hosting peer)` — the node is now (or will,
    /// once its hand-off message arrives, be) hosted there.
    pub relocated: Vec<(Key, Key)>,
    /// Nodes that dissolved (removal protocol): the runtime must drop
    /// them from its delivery directory.
    pub removed: Vec<Key>,
}

impl Effects {
    /// Shorthand used by handlers.
    pub fn send(&mut self, envelope: Envelope) {
        self.out.push(envelope);
    }
}

/// Dispatches a message addressed to logical node `node_label`, which
/// must be hosted on `shard`.
///
/// # Panics
/// Panics if the node is not on the shard — runtimes must route
/// correctly (and requeue while a node is in flight between shards).
pub fn handle_node_msg(shard: &mut PeerShard, node_label: &Key, msg: NodeMsg, fx: &mut Effects) {
    debug_assert!(
        shard.nodes.contains_key(node_label),
        "node {node_label} not hosted on peer {}",
        shard.peer.id
    );
    match msg {
        NodeMsg::PeerJoin { joining, phase } => {
            peer_join::on_peer_join(shard, node_label, joining, phase, fx)
        }
        NodeMsg::DataInsertion { key } => {
            data_insertion::on_data_insertion(shard, node_label, key, fx)
        }
        NodeMsg::SearchingHost { seed } => {
            data_insertion::on_searching_host(shard, node_label, seed, fx)
        }
        NodeMsg::UpdateChild { old, new } => {
            let node = shard
                .nodes
                .get_mut(node_label)
                .expect("checked by debug_assert");
            node.replace_child(&old, new);
        }
        NodeMsg::DataRemoval { key } => data_removal::on_data_removal(shard, node_label, key, fx),
        NodeMsg::RemoveChild { child } => {
            data_removal::on_remove_child(shard, node_label, child, fx)
        }
        NodeMsg::SetFather { father } => {
            let node = shard
                .nodes
                .get_mut(node_label)
                .expect("checked by debug_assert");
            node.father = father;
        }
        NodeMsg::Discovery(msg) => discovery::on_discovery(shard, node_label, msg, fx),
    }
}

/// Dispatches a message addressed to the peer owning `shard`.
pub fn handle_peer_msg(shard: &mut PeerShard, msg: PeerMsg, fx: &mut Effects) {
    match msg {
        PeerMsg::NewPredecessor { joining } => peer_join::on_new_predecessor(shard, joining, fx),
        PeerMsg::YourInformation { pred, succ, nodes } => {
            peer_join::on_your_information(shard, pred, succ, nodes, fx)
        }
        PeerMsg::UpdateSuccessor { succ } => shard.peer.succ = succ,
        PeerMsg::UpdatePredecessor { pred } => shard.peer.pred = pred,
        PeerMsg::Host { seed } => data_insertion::on_host(shard, seed, fx),
        PeerMsg::TakeOver { pred, nodes } => maintenance::on_take_over(shard, pred, nodes, fx),
        PeerMsg::SyncReplicas { k } => repair::on_sync_replicas(shard, k, fx),
        PeerMsg::Replicate { primary, ttl, seed } => {
            repair::on_replicate(shard, primary, ttl, seed, fx)
        }
        PeerMsg::DropReplica { label } => repair::on_drop_replica(shard, &label),
        PeerMsg::PromoteReplica { label } => repair::on_promote_replica(shard, &label, fx),
        PeerMsg::InvalidateCached { .. } => {
            // Route-cache invalidation terminates at the engine, which
            // owns every per-peer cache (`crate::engine`) and applies
            // the epoch guard there; a shard has nothing to invalidate.
        }
    }
}

/// Convenience dispatcher over a full [`Message`]. Client responses are
/// runtime-level and must not reach this function.
pub fn handle(shard: &mut PeerShard, to_node: Option<&Key>, msg: Message, fx: &mut Effects) {
    match msg {
        Message::Node(m) => {
            let label = to_node.expect("node message requires a node address");
            handle_node_msg(shard, label, m, fx);
        }
        Message::Peer(m) => handle_peer_msg(shard, m, fx),
        Message::ClientResponse(_) => {
            unreachable!("client responses are consumed by the runtime")
        }
    }
}

//! Data removal — an extension over the paper (which only ever adds).
//!
//! `<DataRemoval, k>` routes exactly like `<DataInsertion, k>` (the
//! four cases of Algorithm 3 minus all creation): up while the key is
//! a prefix of the father or shares no more with us than with the
//! father, down along the child extending the key. At the owning node
//! the datum is dropped; a node left *redundant* — no data and fewer
//! than two children, so Definition 1 no longer needs it — dissolves:
//!
//! * a childless node asks its father to `RemoveChild` it;
//! * a one-child node lifts the child (`SetFather` to the child,
//!   `UpdateChild` to the father) and vanishes.
//!
//! `RemoveChild` can leave the *father* redundant in turn; the cascade
//! is at most one level deep (lifting keeps the grandfather's child
//! count unchanged), mirroring `PgcpTrie::remove`'s cleanup, which is
//! the oracle these semantics are property-tested against.

use crate::key::Key;
use crate::messages::{Envelope, NodeMsg};
use crate::peer::PeerShard;
use crate::protocol::Effects;

/// `<DataRemoval, k>` on node `p`.
pub fn on_data_removal(shard: &mut PeerShard, node_label: &Key, key: Key, fx: &mut Effects) {
    let p = shard
        .nodes
        .get_mut(node_label)
        .expect("routed to hosted node");
    let p_label = p.label.clone();

    if p_label == key {
        p.data.remove(&key);
        dissolve_if_redundant(shard, &p_label, fx);
        return;
    }
    if p_label.is_proper_prefix_of(&key) {
        if let Some(q) = p.child_extending(&key).cloned() {
            fx.send(Envelope::to_node(q, NodeMsg::DataRemoval { key }));
        }
        // No extending child: the key is not registered; nothing to do.
        return;
    }
    // The owner is not below us: climb. (Both the `key prefixes us`
    // and the divergence case end up at an ancestor; if the key is
    // absent the walk stops harmlessly at the root region.)
    let father = p.father.clone();
    if let Some(f) = father {
        let own = p_label.gcp_len(&key);
        if key.is_prefix_of(&f) || own <= f.len() {
            fx.send(Envelope::to_node(f, NodeMsg::DataRemoval { key }));
        }
        // Divergence below the father with no matching sibling: the
        // key is not registered.
    }
}

/// `<RemoveChild, c>` on node `p`: a child dissolved; `p` may now be
/// redundant itself.
pub fn on_remove_child(shard: &mut PeerShard, node_label: &Key, child: Key, fx: &mut Effects) {
    let p = shard
        .nodes
        .get_mut(node_label)
        .expect("routed to hosted node");
    p.children.remove(&child);
    let label = p.label.clone();
    dissolve_if_redundant(shard, &label, fx);
}

/// Dissolves `label` if it holds no data and fewer than two children
/// (Definition 1 only requires nodes that separate at least two
/// children or carry data).
fn dissolve_if_redundant(shard: &mut PeerShard, label: &Key, fx: &mut Effects) {
    let node = shard.nodes.get(label).expect("present");
    if !node.data.is_empty() || node.children.len() >= 2 {
        return;
    }
    let father = node.father.clone();
    let only_child = node.children.iter().next().cloned();
    match (father, only_child) {
        (father, Some(c)) => {
            // Lift the only child into our place.
            fx.send(Envelope::to_node(
                c.clone(),
                NodeMsg::SetFather {
                    father: father.clone(),
                },
            ));
            if let Some(f) = father {
                fx.send(Envelope::to_node(
                    f,
                    NodeMsg::UpdateChild {
                        old: label.clone(),
                        new: c,
                    },
                ));
            }
        }
        (Some(f), None) => {
            fx.send(Envelope::to_node(
                f,
                NodeMsg::RemoveChild {
                    child: label.clone(),
                },
            ));
        }
        (None, None) => {
            // Last node of the tree.
        }
    }
    shard.evict(label);
    fx.removed.push(label.clone());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{Address, Message};
    use crate::node::NodeState;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn shard_with(nodes: &[(&str, Option<&str>, &[&str], bool)]) -> PeerShard {
        let mut s = PeerShard::new(k("ZZZZ"), 1000);
        for (label, father, children, data) in nodes {
            let mut n = NodeState::new(k(label));
            n.father = father.map(k);
            for c in *children {
                n.children.insert(k(c));
            }
            if *data {
                n.data.insert(k(label));
            }
            s.install(n);
        }
        s
    }

    fn sent<'a>(fx: &'a Effects, label: &str) -> Vec<&'a NodeMsg> {
        fx.out
            .iter()
            .filter_map(|e| match (&e.to, &e.msg) {
                (Address::Node(n), Message::Node(m)) if n == &k(label) => Some(m),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn removal_with_siblings_keeps_the_structure() {
        // 101 has two data children; removing one leaves a still-valid
        // pair? No — one child of a structural node remains: dissolve.
        let mut s = shard_with(&[("10101", Some("101"), &[], true)]);
        let mut fx = Effects::default();
        on_data_removal(&mut s, &k("10101"), k("10101"), &mut fx);
        assert!(!s.nodes.contains_key(&k("10101")), "leaf dissolves");
        assert_eq!(fx.removed, vec![k("10101")]);
        let msgs = sent(&fx, "101");
        assert!(matches!(msgs[0], NodeMsg::RemoveChild { child } if child == &k("10101")));
    }

    #[test]
    fn node_with_two_children_stays_as_structural() {
        let mut s = shard_with(&[("101", Some(""), &["10101", "10111"], true)]);
        let mut fx = Effects::default();
        on_data_removal(&mut s, &k("101"), k("101"), &mut fx);
        let n = &s.nodes[&k("101")];
        assert!(n.data.is_empty());
        assert!(fx.removed.is_empty(), "still separates two children");
        assert!(fx.out.is_empty());
    }

    #[test]
    fn one_child_node_lifts_the_child() {
        let mut s = shard_with(&[("10111", Some("101"), &["101111"], true)]);
        let mut fx = Effects::default();
        on_data_removal(&mut s, &k("10111"), k("10111"), &mut fx);
        assert!(!s.nodes.contains_key(&k("10111")));
        let to_child = sent(&fx, "101111");
        assert!(matches!(to_child[0], NodeMsg::SetFather { father: Some(f) } if f == &k("101")));
        let to_father = sent(&fx, "101");
        assert!(matches!(
            to_father[0],
            NodeMsg::UpdateChild { old, new } if old == &k("10111") && new == &k("101111")
        ));
    }

    #[test]
    fn root_with_one_child_hands_over_the_root() {
        let mut s = shard_with(&[("1", None, &["10101"], true)]);
        let mut fx = Effects::default();
        on_data_removal(&mut s, &k("1"), k("1"), &mut fx);
        assert!(!s.nodes.contains_key(&k("1")));
        let msgs = sent(&fx, "10101");
        assert!(matches!(msgs[0], NodeMsg::SetFather { father: None }));
    }

    #[test]
    fn remove_child_cascades_one_level() {
        // Structural node left with one child after RemoveChild: lift.
        let mut s = shard_with(&[("101", Some(""), &["10101", "10111"], false)]);
        let mut fx = Effects::default();
        on_remove_child(&mut s, &k("101"), k("10101"), &mut fx);
        assert!(
            !s.nodes.contains_key(&k("101")),
            "structural node lifts away"
        );
        assert!(matches!(
            sent(&fx, "10111")[0],
            NodeMsg::SetFather { father: Some(f) } if f == &Key::epsilon()
        ));
        assert!(matches!(
            sent(&fx, "")[0],
            NodeMsg::UpdateChild { old, new } if old == &k("101") && new == &k("10111")
        ));
    }

    #[test]
    fn removal_of_absent_key_is_a_noop() {
        let mut s = shard_with(&[("101", Some(""), &["10101", "10111"], true)]);
        let mut fx = Effects::default();
        // "10199" diverges from both children below 101.
        on_data_removal(&mut s, &k("101"), k("10199"), &mut fx);
        assert!(fx.out.is_empty());
        assert!(fx.removed.is_empty());
        assert!(s.nodes[&k("101")].data.contains(&k("101")));
    }

    #[test]
    fn removal_routes_up_from_unrelated_entry() {
        let mut s = shard_with(&[("10101", Some("101"), &[], true)]);
        let mut fx = Effects::default();
        on_data_removal(&mut s, &k("10101"), k("01"), &mut fx);
        let msgs = sent(&fx, "101");
        assert_eq!(msgs.len(), 1);
        assert!(matches!(msgs[0], NodeMsg::DataRemoval { key } if key == &k("01")));
    }
}

//! Service discovery routing (Section 2 of the paper).
//!
//! "When a discovery request sent by a client enters the tree, on a
//! random node, the request moves upward until reaching a node whose
//! subtree contains the requested node and then moves \[downward\] to
//! this node. The DLPT system supports range queries and automatic
//! completion of partial search strings."
//!
//! Exact queries terminate at the node owning the key. Range and
//! completion queries route to the node *covering* the query's target
//! region (the GCP of the range bounds, resp. the partial string) and
//! then scatter over the covered subtree; every visited node reports
//! its matches directly to the client together with the number of
//! children it forwarded to, and the runtime aggregates until the
//! counter drains.
//!
//! Hop accounting: a node appends its label to the request's path
//! exactly once per visit; phase transitions are processed in place so
//! a visit costs one message. The hosting peer's capacity is charged by
//! the runtime at delivery (Section 4's model: requests arriving at an
//! exhausted peer are ignored).

use crate::key::Key;
use crate::messages::{DiscoveryMsg, DiscoveryOutcome, Envelope, NodeMsg, QueryKind, RoutePhase};
use crate::node::NodeState;
use crate::peer::PeerShard;
use crate::protocol::Effects;

/// Handles one visit of a discovery request at node `node_label`.
pub fn on_discovery(shard: &mut PeerShard, node_label: &Key, msg: DiscoveryMsg, fx: &mut Effects) {
    let node = shard.nodes.get(node_label).expect("routed to hosted node");
    on_discovery_at(node, msg, fx);
}

/// The routing core, over a borrowed node state. Split out of
/// [`on_discovery`] so the capacity-failover path can serve the same
/// visit from a follower replica copy (`protocol::repair`): routing
/// only ever *reads* the node, so any up-to-date copy answers alike.
pub fn on_discovery_at(node: &NodeState, mut msg: DiscoveryMsg, fx: &mut Effects) {
    // One label per visit, for hop accounting. Gather-phase branch
    // visits skip it: their envelopes deliberately carry an empty path
    // (the aggregator counts each partial as one visit via
    // `len().max(1)`, and a one-label branch path can never beat the
    // root report's routed path for `best_path`), so pushing into that
    // empty vector would be the fan-out's only allocation.
    if !matches!(msg.phase, RoutePhase::Gather) {
        msg.path.push(node.label.clone());
    }
    match msg.phase {
        RoutePhase::Up => {
            // One target computation serves the whole visit (the
            // descent reuses it instead of re-deriving it).
            let target = msg.query.target();
            match &node.father {
                // Only the father link of an upward forward is cloned
                // (inline: a memcpy).
                Some(f) if !node.label.is_prefix_of(&target) => {
                    fx.send(Envelope::to_node(f.clone(), NodeMsg::Discovery(msg)));
                }
                _ => {
                    // This node covers the target's region (or is the
                    // root): switch to the descent.
                    msg.phase = RoutePhase::Down;
                    descend(node, msg, target, fx);
                }
            }
        }
        RoutePhase::Down => {
            let target = msg.query.target();
            descend(node, msg, target, fx)
        }
        RoutePhase::Gather => gather(node, msg, fx),
    }
}

/// Downward phase: walk toward the node covering the query target
/// (`target` is the caller's already-computed [`QueryKind::target`]).
fn descend(node: &NodeState, mut msg: DiscoveryMsg, target: Key, fx: &mut Effects) {
    // The node is only inspected; the single clone below is the child
    // label a forwarded envelope must own.
    if node.label == target {
        at_covering_node(node, msg, fx);
        return;
    }
    if node.label.is_proper_prefix_of(&target) {
        match node.child_extending(&target).cloned() {
            Some(q) if q.is_prefix_of(&target) => {
                // Stay on the target's path.
                msg.phase = RoutePhase::Down;
                fx.send(Envelope::to_node(q, NodeMsg::Discovery(msg)));
            }
            Some(q) if target.is_proper_prefix_of(&q) => {
                // The target's node does not exist but q's whole
                // subtree extends the target region.
                match msg.query {
                    QueryKind::Exact(_) => finish_exact(msg, false, fx),
                    _ => {
                        msg.phase = RoutePhase::Gather;
                        // The down-phase walk is complete; report it so
                        // the aggregator owns the full route, and treat
                        // the forward as one outstanding branch.
                        let report = DiscoveryOutcome {
                            request_id: msg.request_id,
                            satisfied: true,
                            dropped: false,
                            results: Vec::new(),
                            path: std::mem::take(&mut msg.path),
                            pending_children: 1,
                        };
                        fx.send(Envelope::to_client(report.request_id, report));
                        fx.send(Envelope::to_node(q, NodeMsg::Discovery(msg)));
                    }
                }
            }
            Some(_) | None => {
                // Either a child shares a longer prefix but diverges
                // before the target, or nothing extends it: the target
                // region is empty.
                match msg.query {
                    QueryKind::Exact(_) => finish_exact(msg, false, fx),
                    _ => finish_empty_region(msg, fx),
                }
            }
        }
        return;
    }
    if target.is_proper_prefix_of(&node.label) {
        // Only reachable at the root: the covering region starts above
        // the whole tree, so the root's subtree is the covered region.
        match msg.query {
            QueryKind::Exact(_) => finish_exact(msg, false, fx),
            _ => at_covering_node(node, msg, fx),
        }
        return;
    }
    // Divergence (root case): the target region is disjoint from every
    // registered key.
    match msg.query {
        QueryKind::Exact(_) => finish_exact(msg, false, fx),
        _ => finish_empty_region(msg, fx),
    }
}

/// The request reached the node covering its target region.
fn at_covering_node(node: &NodeState, mut msg: DiscoveryMsg, fx: &mut Effects) {
    match &msg.query {
        QueryKind::Exact(k) => {
            let found = node.data.contains(k);
            finish_exact(msg, found, fx);
        }
        _ => {
            // Start the scatter here; this visit is already paid for,
            // so run the gather step inline.
            msg.phase = RoutePhase::Gather;
            gather(node, msg, fx);
        }
    }
}

/// Terminal report for an exact query.
fn finish_exact(msg: DiscoveryMsg, found: bool, fx: &mut Effects) {
    let key = match &msg.query {
        QueryKind::Exact(k) => k.clone(),
        _ => unreachable!("finish_exact on non-exact query"),
    };
    let outcome = DiscoveryOutcome {
        request_id: msg.request_id,
        satisfied: found,
        dropped: false,
        results: if found { vec![key] } else { Vec::new() },
        path: msg.path,
        pending_children: 0,
    };
    fx.send(Envelope::to_client(outcome.request_id, outcome));
}

/// Terminal report for a range/completion query whose target region is
/// provably empty. The walk still "reached its final destination" in
/// the paper's sense — there was nothing to find.
fn finish_empty_region(msg: DiscoveryMsg, fx: &mut Effects) {
    let outcome = DiscoveryOutcome {
        request_id: msg.request_id,
        satisfied: true,
        dropped: false,
        results: Vec::new(),
        path: msg.path,
        pending_children: 0,
    };
    fx.send(Envelope::to_client(outcome.request_id, outcome));
}

/// Scatter phase of range/completion queries: report local matches and
/// fan out to the children whose subtrees can intersect the query.
///
/// The node is only inspected; branch envelopes are emitted directly
/// from the borrowed child set (no staging `Vec`, one extra counting
/// pass over the few children instead), and the visit path is moved —
/// not cloned — into the partial report. The report MUST precede the
/// branch forwards: the aggregator finalizes eagerly when its
/// outstanding counter drains, so a branch whose visit is refused
/// synchronously (capacity drop) would otherwise finalize the request
/// before this node's `pending_children` raise the counter, discarding
/// every surviving result as stale.
fn gather(node: &NodeState, mut msg: DiscoveryMsg, fx: &mut Effects) {
    let results: Vec<Key> = node
        .data
        .iter()
        .filter(|k| msg.query.matches(k))
        .cloned()
        .collect();
    // Single pass over the children: emit the branch envelopes, then
    // splice the report in *front* of them (the aggregator must see
    // `pending_children` before any branch outcome, see above). The
    // splice shifts at most fan-out envelopes — cheaper than running
    // the prune predicate twice.
    let mark = fx.out.len();
    for c in node.children.iter() {
        if !subtree_may_match(&msg.query, c) {
            continue;
        }
        let branch = DiscoveryMsg {
            request_id: msg.request_id,
            query: msg.query.clone(),
            phase: RoutePhase::Gather,
            path: Vec::new(), // branch visits are counted via partials
        };
        fx.send(Envelope::to_node(c.clone(), NodeMsg::Discovery(branch)));
    }
    let pending_children = (fx.out.len() - mark) as u32;
    let outcome = DiscoveryOutcome {
        request_id: msg.request_id,
        satisfied: true,
        dropped: false,
        results,
        path: std::mem::take(&mut msg.path),
        pending_children,
    };
    fx.out
        .insert(mark, Envelope::to_client(outcome.request_id, outcome));
}

/// Conservative pruning: can the subtree rooted at `child` contain a
/// key matching the query? Subtree keys all have `child` as prefix.
fn subtree_may_match(query: &QueryKind, child: &Key) -> bool {
    match query {
        QueryKind::Exact(k) => child.is_prefix_of(k),
        QueryKind::Range(lo, hi) => {
            // All subtree keys are >= child and start with child.
            if child > hi {
                return false;
            }
            // If child < lo, only keys extending toward lo can reach
            // the range; that requires child to prefix lo.
            child >= lo || child.is_prefix_of(lo)
        }
        QueryKind::Complete(p) => {
            // Subtree keys extend `child`; they can extend `p` iff the
            // two are prefix-comparable.
            p.is_prefix_of(child) || child.is_prefix_of(p)
        }
    }
}

/// Builds the entry envelope for a fresh discovery request; used by
/// runtimes.
pub fn entry_envelope(entry_node: Key, request_id: u64, query: QueryKind) -> Envelope {
    Envelope::to_node(
        entry_node,
        NodeMsg::Discovery(DiscoveryMsg {
            request_id,
            query,
            phase: RoutePhase::Up,
            // Pre-sized for the up/down route of a corpus-scale tree:
            // one allocation per request, regardless of hop count.
            path: Vec::with_capacity(16),
        }),
    )
}

/// Result of charging one discovery visit at delivery time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargeOutcome {
    /// The node is not hosted on this shard (in flight between peers);
    /// nothing was charged — the runtime should retry later.
    Missing,
    /// The visit was accepted and charged.
    Accepted,
    /// The peer's capacity is exhausted; the offered load was still
    /// recorded (`l_n` counts demand, per Section 4) but the request
    /// must be ignored — the runtime synthesizes a dropped outcome.
    Dropped,
}

/// Charge-and-count at delivery: one map probe doubles as the
/// existence check, increments the node's offered-load counter (`l_n`)
/// and consumes one unit of the peer's capacity. This is the single
/// home of the capacity model's charging rule — runtimes must route
/// every discovery delivery through it.
pub fn charge_visit(shard: &mut PeerShard, node_label: &Key) -> ChargeOutcome {
    let Some(node) = shard.nodes.get_mut(node_label) else {
        return ChargeOutcome::Missing;
    };
    node.load += 1;
    if shard.peer.try_accept() {
        ChargeOutcome::Accepted
    } else {
        ChargeOutcome::Dropped
    }
}

/// Result of [`deliver_visit`]: refusals hand the message back intact
/// so the runtime can requeue or synthesize a dropped outcome.
pub enum VisitGate {
    /// The node is not hosted here (hand-off in flight): retry later.
    Missing(DiscoveryMsg),
    /// Charged (when requested) and routed.
    Delivered,
    /// The peer's capacity is exhausted; offered load was recorded but
    /// the request must be ignored (Section 4's model).
    Dropped(DiscoveryMsg),
}

/// One-probe delivery for the runtime hot path: a single `nodes` probe
/// serves the existence check, the capacity charge (when `charge` is
/// set — same rule as [`charge_visit`]) and the routing visit itself,
/// instead of a charge probe followed by a second lookup in
/// [`on_discovery`].
#[inline]
pub fn deliver_visit(
    shard: &mut PeerShard,
    node_label: &Key,
    msg: DiscoveryMsg,
    charge: bool,
    fx: &mut Effects,
) -> VisitGate {
    let Some(node) = shard.nodes.get_mut(node_label) else {
        return VisitGate::Missing(msg);
    };
    if charge {
        node.load += 1;
        if !shard.peer.try_accept() {
            return VisitGate::Dropped(msg);
        }
    }
    on_discovery_at(node, msg, fx);
    VisitGate::Delivered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{Address, Message};
    use crate::node::NodeState;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    /// Builds the Figure-1(a) tree on a single shard.
    fn paper_shard() -> PeerShard {
        let mut s = PeerShard::new(k("zz"), 1000);
        let spec: &[(&str, Option<&str>, &[&str], bool)] = &[
            ("", None, &["01", "101"], false),
            ("01", Some(""), &[], true),
            ("101", Some(""), &["10101", "10111"], false),
            ("10101", Some("101"), &[], true),
            ("10111", Some("101"), &["101111"], true),
            ("101111", Some("10111"), &[], true),
        ];
        for (label, father, children, has_data) in spec {
            let mut n = NodeState::new(k(label));
            n.father = father.map(k);
            for c in *children {
                n.children.insert(k(c));
            }
            if *has_data {
                n.data.insert(k(label));
            }
            s.install(n);
        }
        s
    }

    fn msg(query: QueryKind, phase: RoutePhase) -> DiscoveryMsg {
        DiscoveryMsg {
            request_id: 7,
            query,
            phase,
            path: Vec::new(),
        }
    }

    fn client_outcomes(fx: &Effects) -> Vec<&DiscoveryOutcome> {
        fx.out
            .iter()
            .filter_map(|e| match &e.msg {
                Message::ClientResponse(o) => Some(o),
                _ => None,
            })
            .collect()
    }

    /// Drives a request to completion on a single shard, aggregating
    /// like the runtime does. Returns (satisfied, results, down-path,
    /// total visits).
    fn run_to_completion(
        s: &mut PeerShard,
        entry: &str,
        query: QueryKind,
    ) -> (bool, Vec<Key>, Vec<Key>, usize) {
        let mut queue = vec![(k(entry), msg(query, RoutePhase::Up))];
        let mut results = Vec::new();
        let mut down_path = Vec::new();
        let mut visits = 0usize;
        let mut outstanding = 1i64;
        let mut satisfied = true;
        while let Some((label, m)) = queue.pop() {
            let mut fx = Effects::default();
            on_discovery(s, &label, m, &mut fx);
            for e in fx.out {
                match e.msg {
                    Message::ClientResponse(o) => {
                        outstanding += o.pending_children as i64 - 1;
                        satisfied &= o.satisfied;
                        results.extend(o.results);
                        visits += o.path.len().max(1);
                        if o.path.len() > down_path.len() {
                            down_path = o.path;
                        }
                    }
                    Message::Node(NodeMsg::Discovery(m2)) => {
                        if let Address::Node(l) = e.to {
                            queue.push((l, m2));
                        }
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(outstanding, 0, "aggregation must drain");
        results.sort();
        (satisfied, results, down_path, visits)
    }

    #[test]
    fn exact_lookup_up_then_down() {
        let mut s = paper_shard();
        let (sat, results, path, _) =
            run_to_completion(&mut s, "01", QueryKind::Exact(k("101111")));
        assert!(sat);
        assert_eq!(results, vec![k("101111")]);
        assert_eq!(
            path,
            vec![k("01"), Key::epsilon(), k("101"), k("10111"), k("101111")]
        );
    }

    #[test]
    fn exact_lookup_of_structural_label_is_unsatisfied() {
        let mut s = paper_shard();
        let (sat, results, _, _) = run_to_completion(&mut s, "01", QueryKind::Exact(k("101")));
        assert!(!sat, "structural node holds no data");
        assert!(results.is_empty());
    }

    #[test]
    fn exact_lookup_missing_key() {
        let mut s = paper_shard();
        let (sat, results, _, _) = run_to_completion(&mut s, "10101", QueryKind::Exact(k("111")));
        assert!(!sat);
        assert!(results.is_empty());
    }

    #[test]
    fn completion_gathers_subtree() {
        let mut s = paper_shard();
        let (sat, results, _, _) = run_to_completion(&mut s, "01", QueryKind::Complete(k("101")));
        assert!(sat);
        assert_eq!(results, vec![k("10101"), k("10111"), k("101111")]);
    }

    #[test]
    fn completion_with_target_between_nodes() {
        // "1011" has no node; covering child 10111 extends it.
        let mut s = paper_shard();
        let (sat, results, _, _) = run_to_completion(&mut s, "01", QueryKind::Complete(k("1011")));
        assert!(sat);
        assert_eq!(results, vec![k("10111"), k("101111")]);
    }

    #[test]
    fn completion_of_absent_prefix_is_empty() {
        let mut s = paper_shard();
        let (sat, results, _, _) = run_to_completion(&mut s, "10101", QueryKind::Complete(k("11")));
        assert!(sat, "reached the region; provably empty");
        assert!(results.is_empty());
    }

    #[test]
    fn range_query_collects_interval() {
        let mut s = paper_shard();
        let (sat, results, _, _) =
            run_to_completion(&mut s, "01", QueryKind::Range(k("10"), k("10111")));
        assert!(sat);
        assert_eq!(results, vec![k("10101"), k("10111")]);
    }

    #[test]
    fn range_query_covering_everything() {
        let mut s = paper_shard();
        let (sat, results, _, _) =
            run_to_completion(&mut s, "10111", QueryKind::Range(k("0"), k("2")));
        assert!(sat);
        assert_eq!(results, vec![k("01"), k("10101"), k("10111"), k("101111")]);
    }

    #[test]
    fn gather_reports_pending_children() {
        let mut s = paper_shard();
        let mut fx = Effects::default();
        on_discovery(
            &mut s,
            &k("101"),
            msg(QueryKind::Complete(k("101")), RoutePhase::Gather),
            &mut fx,
        );
        let outs = client_outcomes(&fx);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].pending_children, 2, "forwards to 10101 and 10111");
    }

    #[test]
    fn charge_visit_counts_demand_even_when_dropped() {
        let mut s = paper_shard();
        s.peer.capacity = 1;
        assert_eq!(charge_visit(&mut s, &k("101")), ChargeOutcome::Accepted);
        assert_eq!(
            charge_visit(&mut s, &k("101")),
            ChargeOutcome::Dropped,
            "capacity exhausted"
        );
        assert_eq!(s.nodes[&k("101")].load, 2, "offered load counts drops");
        assert_eq!(s.peer.dropped_this_unit, 1);
        // An absent node charges nothing, not even the peer.
        assert_eq!(charge_visit(&mut s, &k("zzz")), ChargeOutcome::Missing);
        assert_eq!(s.peer.dropped_this_unit, 1);
    }

    #[test]
    fn subtree_pruning() {
        assert!(subtree_may_match(&QueryKind::Complete(k("10")), &k("101")));
        assert!(subtree_may_match(
            &QueryKind::Complete(k("1011")),
            &k("101")
        ));
        assert!(!subtree_may_match(&QueryKind::Complete(k("11")), &k("101")));
        assert!(subtree_may_match(
            &QueryKind::Range(k("10"), k("11")),
            &k("101")
        ));
        assert!(!subtree_may_match(
            &QueryKind::Range(k("102"), k("11")),
            &k("101")
        ));
        assert!(subtree_may_match(
            &QueryKind::Range(k("1010"), k("1011")),
            &k("101")
        ));
    }
}

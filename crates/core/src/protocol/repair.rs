//! Replication and self-healing anti-entropy (extension over the
//! paper).
//!
//! The source paper's DLPT keeps exactly one copy of every tree node,
//! so a non-graceful departure destroys the nodes its peer ran. The
//! self-stabilizing follow-up work (Caron et al., "Optimization in a
//! Self-Stabilizing Service Discovery Framework for Large Scale
//! Systems") makes the overlay survive such faults by keeping
//! redundant state and repairing it continuously. This module is that
//! loop for the DLPT:
//!
//! * **Placement.** The authoritative copy of node `n` stays where the
//!   mapping rule puts it (`min {P : P >= n}`); `k - 1` *follower*
//!   copies live on the primary's next ring successors. The placement
//!   needs only local knowledge: a [`PeerMsg::Replicate`] walk hops
//!   from successor to successor, storing a copy at each stop, until
//!   its `ttl` drains or it wraps back to the primary.
//! * **Failover.** When the primary crashes, the first live follower
//!   is — by the mapping rule — exactly the peer that should now host
//!   the node, so promotion ([`PeerMsg::PromoteReplica`]) restores
//!   both the data and the mapping invariant in one step. Exhausted
//!   primaries can likewise serve reads from a follower copy (the
//!   runtime charges the follower's capacity instead of dropping).
//! * **Anti-entropy.** Each time unit the runtime kicks every peer
//!   with [`PeerMsg::SyncReplicas`]; the peer re-clones every node it
//!   runs onto its successors. Crashed followers, stale copies and
//!   replica sets displaced by joins all converge back to the
//!   invariant *"every node has `min(k, |P|)` distinct live replica
//!   hosts"* within one pass.
//!
//! Handlers follow the crate's rule: one `&mut PeerShard`, effects out.

use crate::directory::Directory;
use crate::key::Key;
use crate::messages::{Envelope, NodeSeed, PeerMsg};
use crate::peer::PeerShard;
use crate::protocol::Effects;

/// `<SyncReplicas, k>`: re-clone every hosted node onto the ring
/// successors (anti-entropy kick, typically once per time unit).
pub fn on_sync_replicas(shard: &mut PeerShard, k: u32, fx: &mut Effects) {
    if k < 2 {
        return;
    }
    let succ = shard.peer.succ.clone();
    if succ == shard.peer.id {
        return; // solitary peer: nobody to replicate to
    }
    let primary = shard.peer.id.clone();
    for node in shard.nodes.values() {
        fx.send(Envelope::to_peer(
            succ.clone(),
            PeerMsg::Replicate {
                primary: primary.clone(),
                ttl: k - 1,
                seed: NodeSeed::of(node),
            },
        ));
    }
}

/// `<Replicate, (primary, ttl, seed)>`: store a follower copy and
/// forward the walk along the ring while the ttl lasts.
pub fn on_replicate(
    shard: &mut PeerShard,
    primary: Key,
    ttl: u32,
    seed: NodeSeed,
    fx: &mut Effects,
) {
    if shard.peer.id == primary {
        return; // wrapped around a ring smaller than k: stop
    }
    if ttl > 1 && shard.peer.succ != primary && shard.peer.succ != shard.peer.id {
        fx.send(Envelope::to_peer(
            shard.peer.succ.clone(),
            PeerMsg::Replicate {
                primary,
                ttl: ttl - 1,
                seed: seed.clone(),
            },
        ));
    }
    shard.replicas.insert(seed.label.clone(), seed.into_state());
}

/// `<DropReplica, label>`: discard a follower copy (no-op if absent).
pub fn on_drop_replica(shard: &mut PeerShard, label: &Key) {
    shard.replicas.remove(label);
}

/// `<PromoteReplica, label>`: the primary crashed — promote the local
/// follower copy to an authoritative hosted node and report the
/// relocation so the runtime's directory follows. No-op without a copy.
pub fn on_promote_replica(shard: &mut PeerShard, label: &Key, fx: &mut Effects) {
    if let Some(node) = shard.replicas.remove(label) {
        fx.relocated.push((label.clone(), shard.peer.id.clone()));
        shard.install(node);
    }
}

/// Recomputes and records the follower set of every live label over
/// the current ring — the planning half of an anti-entropy pass,
/// shared by all three runtimes so follower placement cannot drift
/// between them. The transport kick (`SyncReplicas` to every peer) is
/// runtime-specific. `peers` must be sorted ascending.
pub fn refresh_follower_records(directory: &mut Directory, peers: &[Key], k: usize) {
    let plans: Vec<(Key, Vec<Key>)> = directory
        .iter()
        .map(|(label, primary)| {
            (
                label.clone(),
                successors_of(peers, primary, k.saturating_sub(1)),
            )
        })
        .collect();
    for (label, targets) in &plans {
        directory.set_followers(label, targets);
    }
}

/// The `count` ring successors of `primary` over `peers` (ascending,
/// deduplicated, wrapping, `primary` excluded) — the follower set the
/// [`PeerMsg::Replicate`] walk materializes. `peers` must be sorted
/// ascending; `primary` need not be present (it may just have crashed).
pub fn successors_of(peers: &[Key], primary: &Key, count: usize) -> Vec<Key> {
    if peers.is_empty() || count == 0 {
        return Vec::new();
    }
    let start = match peers.binary_search(primary) {
        Ok(i) => i + 1,
        Err(i) => i,
    };
    let mut out = Vec::with_capacity(count.min(peers.len()));
    for off in 0..peers.len() {
        let p = &peers[(start + off) % peers.len()];
        if p == primary {
            continue;
        }
        out.push(p.clone());
        if out.len() == count {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{Address, Message};
    use crate::node::NodeState;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn shard_with_ring(id: &str, pred: &str, succ: &str) -> PeerShard {
        let mut s = PeerShard::new(k(id), 100);
        s.peer.pred = k(pred);
        s.peer.succ = k(succ);
        s
    }

    #[test]
    fn sync_replicas_emits_one_walk_per_node() {
        let mut s = shard_with_ring("M", "D", "T");
        s.install(NodeState::new(k("E")));
        s.install(NodeState::new(k("K")));
        let mut fx = Effects::default();
        on_sync_replicas(&mut s, 3, &mut fx);
        assert_eq!(fx.out.len(), 2);
        for e in &fx.out {
            assert_eq!(e.to, Address::Peer(k("T")));
            match &e.msg {
                Message::Peer(PeerMsg::Replicate { primary, ttl, .. }) => {
                    assert_eq!(primary, &k("M"));
                    assert_eq!(*ttl, 2);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn sync_replicas_noop_for_k1_and_solitary() {
        let mut s = shard_with_ring("M", "D", "T");
        s.install(NodeState::new(k("E")));
        let mut fx = Effects::default();
        on_sync_replicas(&mut s, 1, &mut fx);
        assert!(fx.out.is_empty());
        let mut solo = shard_with_ring("M", "M", "M");
        solo.install(NodeState::new(k("E")));
        on_sync_replicas(&mut solo, 2, &mut fx);
        assert!(fx.out.is_empty());
    }

    #[test]
    fn replicate_stores_and_forwards_until_ttl_drains() {
        let mut s = shard_with_ring("T", "M", "Z");
        let mut fx = Effects::default();
        let seed = NodeSeed {
            label: k("E"),
            father: None,
            children: vec![],
            data: vec![k("E")],
        };
        on_replicate(&mut s, k("M"), 2, seed.clone(), &mut fx);
        assert!(s.replicas.contains_key(&k("E")));
        assert_eq!(fx.out.len(), 1, "ttl 2 forwards once more");
        let mut fx2 = Effects::default();
        on_replicate(&mut s, k("M"), 1, seed, &mut fx2);
        assert!(fx2.out.is_empty(), "ttl 1 is the last stop");
    }

    #[test]
    fn replicate_walk_stops_at_wraparound() {
        // Ring of two: M -> T -> M. A walk with a large ttl must not
        // bounce forever.
        let mut s = shard_with_ring("T", "M", "M");
        let mut fx = Effects::default();
        let seed = NodeSeed {
            label: k("E"),
            father: None,
            children: vec![],
            data: vec![],
        };
        on_replicate(&mut s, k("M"), 5, seed.clone(), &mut fx);
        assert!(s.replicas.contains_key(&k("E")));
        assert!(fx.out.is_empty(), "successor is the primary: stop");
        // And the primary itself silently drops a fully wrapped walk.
        let mut p = shard_with_ring("M", "T", "T");
        on_replicate(&mut p, k("M"), 5, seed, &mut fx);
        assert!(p.replicas.is_empty());
    }

    #[test]
    fn drop_and_promote_replica() {
        let mut s = shard_with_ring("T", "M", "Z");
        let mut node = NodeState::new(k("E"));
        node.data.insert(k("E"));
        s.replicas.insert(k("E"), node);
        let mut fx = Effects::default();
        on_promote_replica(&mut s, &k("E"), &mut fx);
        assert!(s.nodes.contains_key(&k("E")), "promoted to hosted");
        assert!(s.replicas.is_empty());
        assert_eq!(fx.relocated, vec![(k("E"), k("T"))]);
        // Promote without a copy: silent no-op.
        let mut fx2 = Effects::default();
        on_promote_replica(&mut s, &k("ZZ"), &mut fx2);
        assert!(fx2.relocated.is_empty());
        // Drop removes a copy and tolerates absence.
        s.replicas.insert(k("F"), NodeState::new(k("F")));
        on_drop_replica(&mut s, &k("F"));
        on_drop_replica(&mut s, &k("F"));
        assert!(s.replicas.is_empty());
    }

    #[test]
    fn successors_wrap_dedup_and_exclude_primary() {
        let peers: Vec<Key> = ["A", "D", "M", "T"].iter().map(|s| k(s)).collect();
        assert_eq!(successors_of(&peers, &k("M"), 2), vec![k("T"), k("A")]);
        assert_eq!(
            successors_of(&peers, &k("T"), 5),
            vec![k("A"), k("D"), k("M")],
            "capped at the other live peers"
        );
        // Primary absent (just crashed): successors from its old slot.
        assert_eq!(successors_of(&peers, &k("F"), 2), vec![k("M"), k("T")]);
        assert!(successors_of(&peers, &k("M"), 0).is_empty());
        assert!(successors_of(&[], &k("M"), 2).is_empty());
        let one = vec![k("A")];
        assert!(successors_of(&one, &k("A"), 3).is_empty());
    }
}

//! State of one peer and the shard of tree nodes it runs.
//!
//! Section 2 (System Model): peers have distinct identifiers, exchange
//! messages, and each runs one or more logical nodes (`ν_P`). Section 3
//! arranges the peers in a bidirectional ring ordered by identifier:
//! every peer knows its immediate predecessor and successor.
//!
//! [`PeerShard`] bundles a peer's control state with the node states it
//! hosts. Protocol handlers receive exactly one `&mut PeerShard` —
//! the type system thus guarantees a handler never reaches across the
//! network, which is what makes the same handlers valid under the
//! synchronous pump, the discrete-event simulator and the threaded
//! runtime.

use crate::key::Key;
use crate::node::NodeState;
use std::collections::BTreeMap;

/// Control state of one peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerState {
    /// The peer's identifier in the space `I`.
    pub id: Key,
    /// Immediate predecessor on the ring (self when alone).
    pub pred: Key,
    /// Immediate successor on the ring (self when alone).
    pub succ: Key,
    /// Capacity `C`: requests this peer can process per time unit
    /// (Section 4: fixed over time; max/min ratio 4 across the
    /// platform).
    pub capacity: u32,
    /// Requests accepted during the current time unit.
    pub used: u32,
    /// Requests ignored during the current time unit because capacity
    /// was exhausted.
    pub dropped_this_unit: u64,
}

impl PeerState {
    /// A solitary peer: its own predecessor and successor.
    pub fn solitary(id: Key, capacity: u32) -> Self {
        PeerState {
            pred: id.clone(),
            succ: id.clone(),
            id,
            capacity,
            used: 0,
            dropped_this_unit: 0,
        }
    }

    /// True iff the peer can accept one more request this unit.
    pub fn has_capacity(&self) -> bool {
        self.used < self.capacity
    }

    /// Accounts one accepted request. Returns false (and counts a
    /// drop) when the capacity is exhausted — the request must then be
    /// ignored, per Section 4.
    pub fn try_accept(&mut self) -> bool {
        if self.used < self.capacity {
            self.used += 1;
            true
        } else {
            self.dropped_this_unit += 1;
            false
        }
    }

    /// Closes the current time unit.
    pub fn roll_unit(&mut self) {
        self.used = 0;
        self.dropped_this_unit = 0;
    }
}

/// A peer plus the logical nodes it currently runs (`ν_P`).
#[derive(Debug, Clone)]
pub struct PeerShard {
    /// Control state.
    pub peer: PeerState,
    /// Hosted nodes, keyed (and ordered) by label. Ring-segment
    /// reasoning (load balancing, hand-offs) relies on this ordering.
    pub nodes: BTreeMap<Key, NodeState>,
    /// Follower copies of nodes whose primary is another peer
    /// (replication extension, `protocol::repair`). Kept apart from
    /// `nodes` so every single-copy invariant — mapping, tree links,
    /// registered-key enumeration — is untouched by replication.
    ///
    /// Routing-shortcut caches are *not* shard state: the engine owns
    /// them per peer (`crate::engine`), because a peer's shard may run
    /// on another thread while its entry-point cache must stay with
    /// whoever admits requests.
    pub replicas: BTreeMap<Key, NodeState>,
}

impl PeerShard {
    /// A fresh shard for a solitary peer.
    pub fn new(id: Key, capacity: u32) -> Self {
        PeerShard {
            peer: PeerState::solitary(id, capacity),
            nodes: BTreeMap::new(),
            replicas: BTreeMap::new(),
        }
    }

    /// Installs a node on this shard.
    pub fn install(&mut self, node: NodeState) {
        self.nodes.insert(node.label.clone(), node);
    }

    /// Removes and returns a node.
    pub fn evict(&mut self, label: &Key) -> Option<NodeState> {
        self.nodes.remove(label)
    }

    /// The load `L` of the peer over the last completed unit:
    /// `Σ prev_load` over hosted nodes (Section 3.3).
    pub fn last_unit_load(&self) -> u64 {
        self.nodes.values().map(|n| n.prev_load).sum()
    }

    /// Number of hosted nodes `|ν_P|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of follower copies this peer keeps for other primaries.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    #[test]
    fn solitary_peer_loops_to_itself() {
        let p = PeerState::solitary(k("M"), 10);
        assert_eq!(p.pred, k("M"));
        assert_eq!(p.succ, k("M"));
    }

    #[test]
    fn capacity_accounting() {
        let mut p = PeerState::solitary(k("M"), 2);
        assert!(p.try_accept());
        assert!(p.try_accept());
        assert!(!p.try_accept());
        assert!(!p.has_capacity());
        assert_eq!(p.used, 2);
        assert_eq!(p.dropped_this_unit, 1);
        p.roll_unit();
        assert_eq!(p.used, 0);
        assert_eq!(p.dropped_this_unit, 0);
        assert!(p.has_capacity());
    }

    #[test]
    fn shard_install_evict_and_load() {
        let mut s = PeerShard::new(k("M"), 10);
        let mut n1 = NodeState::new(k("A"));
        n1.prev_load = 5;
        let mut n2 = NodeState::new(k("B"));
        n2.prev_load = 7;
        s.install(n1);
        s.install(n2);
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.last_unit_load(), 12);
        let got = s.evict(&k("A")).unwrap();
        assert_eq!(got.label, k("A"));
        assert_eq!(s.node_count(), 1);
        assert!(s.evict(&k("A")).is_none());
    }

    #[test]
    fn shard_nodes_are_ordered_by_label() {
        let mut s = PeerShard::new(k("Z"), 1);
        for l in ["C", "A", "B"] {
            s.install(NodeState::new(k(l)));
        }
        let labels: Vec<&Key> = s.nodes.keys().collect();
        assert_eq!(labels, vec![&k("A"), &k("B"), &k("C")]);
    }
}

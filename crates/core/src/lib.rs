#![warn(missing_docs)]
//! # dlpt-core — the Distributed Lexicographic Placement Table
//!
//! This crate implements the primary contribution of Caron, Desprez &
//! Tedeschi, *"Efficiency of Tree-Structured Peer-to-Peer Service
//! Discovery Systems"* (INRIA RR-6557, 2008):
//!
//! * a **Proper Greatest Common Prefix (PGCP) tree** over service
//!   identifiers (Definition 1 of the paper), both as a sequential
//!   in-memory structure ([`trie::PgcpTrie`], used as a correctness
//!   oracle and local engine) and as a **distributed overlay**
//!   ([`system::DlptSystem`]) whose logical nodes are spread over a
//!   bidirectional ring of peers;
//! * the **self-contained mapping** that replaces the original DHT
//!   layer: a logical node `n` is always hosted by the lowest peer whose
//!   identifier is `>= n` ([`mapping`]), and peer joins are routed
//!   through the tree itself (Algorithms 1 and 2 of the paper,
//!   [`protocol::peer_join`]);
//! * **data insertion** that grows the tree while preserving the PGCP
//!   invariant (Algorithm 3, [`protocol::data_insertion`]);
//! * **service discovery** with exact lookup, range queries and
//!   automatic completion of partial search strings
//!   ([`protocol::discovery`]);
//! * the **MLT (Max Local Throughput)** load-balancing heuristic of
//!   Section 3.3 and the adapted **k-choices** (KC) join heuristic
//!   ([`balance`]).
//!
//! The protocol is written as message handlers over explicit state
//! ([`messages`], [`node`], [`peer`]) so that the same code drives the
//! synchronous in-process runtime used by the simulator and the
//! threaded live runtime in `dlpt-net`.

pub mod alphabet;
pub mod balance;
pub mod cache;
pub mod directory;
pub mod engine;
pub mod error;
pub mod key;
pub mod mapping;
pub mod messages;
pub mod metrics;
pub mod node;
pub mod obs;
pub mod peer;
pub mod protocol;
pub mod replication;
pub mod system;
pub mod transport;
pub mod trie;

pub use alphabet::Alphabet;
pub use balance::{KChoices, LoadBalancer, MaxLocalThroughput, NoBalancing};
pub use cache::{CacheStats, RouteCache, Shortcut};
pub use engine::{parallel::ParallelPump, Engine, EngineConfig, FifoTransport, Step, Transport};
pub use error::{DlptError, Result};
pub use key::Key;
pub use messages::{Address, Envelope, Message, NodeMsg, PeerMsg, QueryKind};
pub use node::NodeState;
pub use obs::health::{
    AuditCheck, HealthMonitor, HealthSnapshot, MemoryFootprint, PeerHealth, Violation,
};
pub use obs::{EventKind, Histogram, MetricsRegistry, TraceEvent, TraceRing, Tracer};
pub use peer::PeerState;
pub use replication::{AntiEntropyReport, ReplicationStats};
pub use system::{DlptSystem, LookupOutcome, SystemBuilder, SystemConfig};
pub use transport::{FaultPlan, FaultStats, Faults, FaultyTransport};
pub use trie::PgcpTrie;

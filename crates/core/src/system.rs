//! The synchronous DLPT runtime: a thin facade over the unified
//! [`crate::engine`] with an immediate-FIFO transport.
//!
//! [`DlptSystem`] owns an [`Engine`] (per-peer shards, delivery
//! directory, route caches, replication bookkeeping — see the engine
//! docs) plus the pieces that make the runtime *synchronous*: one
//! seeded RNG, a strict FIFO queue ([`FifoTransport`]) and a drain
//! loop that runs every operation to quiescence before returning.
//! Protocol logic lives entirely in [`crate::protocol`]; envelope
//! dispatch, capacity charging (Section 4's model) and scatter/gather
//! aggregation live in the engine, shared with the asynchronous
//! runtimes in `dlpt-net`. Processing is strictly FIFO and all
//! randomness comes from one seeded generator, so every run is a pure
//! function of (operations, seed) — the property the experiment
//! harness relies on for its 30/50/100-run averages.

use crate::alphabet::Alphabet;
use crate::engine::{
    empty_outcome, parallel::ParallelPump, Engine, EngineConfig, FifoTransport, Step,
};
use crate::error::{DlptError, Result};
use crate::key::Key;
use crate::messages::{Address, Envelope, NodeMsg, QueryKind};
use crate::node::NodeState;
use crate::replication::AntiEntropyReport;
use crate::transport::{FaultPlan, FaultStats, Faults, FaultyTransport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, VecDeque};

pub use crate::engine::LookupOutcome;

/// Tunables of the runtime.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Digit alphabet shared by peers, nodes and service keys.
    pub alphabet: Alphabet,
    /// Length of randomly drawn peer identifiers.
    pub peer_id_len: usize,
    /// Capacity assigned to peers created without an explicit one.
    /// The default is effectively unbounded so functional use is never
    /// throttled; experiments set real capacities.
    pub default_capacity: u32,
    /// Upper bound on envelopes processed by one drain — a tripwire
    /// for routing loops, which the protocol makes impossible.
    pub drain_budget: usize,
    /// How many times one envelope may be requeued while its
    /// destination is still in flight. The effective budget is floored
    /// at twice the ring membership: a freshly seeded node walks the
    /// ring one hop per queue cycle before it lands, so dependent
    /// envelopes need O(ring) retries on large rings.
    pub requeue_budget: u32,
    /// Replication factor `k`: each tree node lives on its primary
    /// (mapping-rule) host plus `k - 1` ring-successor followers
    /// (`protocol::repair`). The default `1` disables replication
    /// entirely — the runtime is then byte-identical to the
    /// pre-replication system.
    pub replication: usize,
    /// Per-peer routing-shortcut cache capacity (`crate::cache`): hot
    /// query targets learned from completed discoveries route in one
    /// directory hop instead of the O(depth) up/down climb, validated
    /// by per-label epochs. The default `0` disables caching entirely —
    /// the runtime is then byte-identical to the pre-cache system.
    pub cache_capacity: usize,
    /// How many times one discovery request may be re-issued after
    /// fault-induced loss left a branch outstanding at quiescence.
    /// Only consulted when a [`FaultPlan`] is active; at exhaustion
    /// the request fails explicitly (never hangs).
    pub request_retry_budget: u32,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            alphabet: Alphabet::grid(),
            peer_id_len: 16,
            default_capacity: u32::MAX >> 1,
            drain_budget: 4_000_000,
            requeue_budget: 256,
            replication: 1,
            cache_capacity: 0,
            request_retry_budget: 4,
        }
    }
}

/// Builder for [`DlptSystem`].
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    config: SystemConfig,
    seed: u64,
    bootstrap_peers: usize,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder {
            config: SystemConfig::default(),
            seed: 0xD1_97,
            bootstrap_peers: 0,
        }
    }
}

impl SystemBuilder {
    /// Sets the digit alphabet (default: [`Alphabet::grid`]).
    pub fn alphabet(mut self, a: Alphabet) -> Self {
        self.config.alphabet = a;
        self
    }
    /// Seeds the system RNG (entry-node choice, identifier drawing).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
    /// Length of randomly drawn peer identifiers.
    pub fn peer_id_len(mut self, len: usize) -> Self {
        self.config.peer_id_len = len;
        self
    }
    /// Capacity for peers added without an explicit one.
    pub fn default_capacity(mut self, c: u32) -> Self {
        self.config.default_capacity = c;
        self
    }
    /// Replication factor `k` (primary + `k - 1` followers; default 1 =
    /// replication off).
    pub fn replication(mut self, k: usize) -> Self {
        self.config.replication = k.max(1);
        self
    }
    /// Per-peer routing-shortcut cache capacity (default 0 = caching
    /// off).
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.config.cache_capacity = n;
        self
    }
    /// Joins `n` peers with random identifiers during `build`.
    pub fn bootstrap_peers(mut self, n: usize) -> Self {
        self.bootstrap_peers = n;
        self
    }
    /// Overrides the whole configuration.
    pub fn config(mut self, c: SystemConfig) -> Self {
        self.config = c;
        self
    }

    /// Builds the system (and bootstraps peers if requested).
    pub fn build(self) -> DlptSystem {
        let mut sys = DlptSystem::new(self.config, self.seed);
        for _ in 0..self.bootstrap_peers {
            let cap = sys.config.default_capacity;
            sys.add_peer(cap).expect("bootstrap join cannot fail");
        }
        sys
    }
}

/// A report of what [`DlptSystem::repair_tree`] did after crashes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Dangling child links removed.
    pub pruned_links: usize,
    /// Orphaned subtree roots re-attached.
    pub reattached: usize,
    /// Structural nodes created while re-attaching.
    pub created_nodes: usize,
}

/// The whole overlay in one process. See the module docs.
///
/// Dereferences to the underlying [`Engine`], so introspection
/// (`peer_count`, `node_labels`, `host_of`, …), the invariant checks
/// and the `stats` / `repl_stats` / `cache_stats` counters are the
/// engine's — shared verbatim with the asynchronous runtimes.
#[derive(Debug)]
pub struct DlptSystem {
    config: SystemConfig,
    rng: StdRng,
    engine: Engine,
    /// The immediate-FIFO queue this runtime drains to quiescence.
    pump: FifoTransport,
    /// Fault-injection state ([`crate::transport`]); inert by default.
    faults: Faults,
    debug_drain: bool,
}

impl std::ops::Deref for DlptSystem {
    type Target = Engine;
    fn deref(&self) -> &Engine {
        &self.engine
    }
}

impl std::ops::DerefMut for DlptSystem {
    fn deref_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }
}

impl DlptSystem {
    /// Creates an empty system.
    pub fn new(config: SystemConfig, seed: u64) -> Self {
        let engine = Engine::new(EngineConfig {
            replication: config.replication,
            cache_capacity: config.cache_capacity,
            charge_capacity: true,
            judge_at_quiescence: false,
            eager_replication: true,
        });
        DlptSystem {
            rng: StdRng::seed_from_u64(seed),
            engine,
            pump: FifoTransport::default(),
            faults: Faults::new(FaultPlan::default()),
            debug_drain: std::env::var_os("DLPT_DEBUG_DRAIN").is_some(),
            config,
        }
    }

    /// Starts a builder.
    pub fn builder() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// The runtime configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Test-only view of the underlying engine, for slab/directory
    /// invariant checks that need more than the public facade.
    #[cfg(test)]
    pub(crate) fn engine_ref(&self) -> &Engine {
        &self.engine
    }

    /// Reconfigures the replication factor `k` (clamped to ≥ 1),
    /// keeping [`SystemConfig`] and the engine in sync. Shadows the
    /// engine's setter so `config()` never reports a stale knob.
    pub fn set_replication(&mut self, k: usize) {
        self.config.replication = k.max(1);
        self.engine.set_replication(k);
    }

    /// Reconfigures the per-peer routing-shortcut cache capacity
    /// (0 = off) for existing peers and every peer joining later,
    /// keeping [`SystemConfig`] and the engine in sync.
    pub fn set_cache_capacity(&mut self, n: usize) {
        self.config.cache_capacity = n;
        self.engine.set_cache_capacity(n);
    }

    /// Installs a fault plan ([`crate::transport`]), resetting the
    /// fault RNG, counters and partition. The default plan is fully
    /// inert: the drain path is byte-identical to a system that never
    /// called this.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        // Reordering breaks the FIFO parent-before-child response
        // order the pump's eager judging relies on; finalize at
        // quiescence instead while such a plan is installed.
        self.engine.set_judge_at_quiescence(plan.reorder_rate > 0.0);
        self.faults = Faults::new(plan);
        self.engine.set_fault_recovery(self.faults.is_active());
    }

    /// Severs the lexicographic key range `[lo, hi)` for faultable
    /// traffic until [`DlptSystem::heal_partition`].
    pub fn partition(&mut self, lo: Key, hi: Key) {
        self.faults.partition(lo, hi);
        self.engine.set_fault_recovery(true);
    }

    /// Heals a partition installed by [`DlptSystem::partition`].
    pub fn heal_partition(&mut self) {
        self.faults.heal();
        self.engine.set_fault_recovery(self.faults.is_active());
    }

    /// Combined fault counters: transport-level draws plus the
    /// engine's suppressed duplicates.
    pub fn fault_stats(&self) -> FaultStats {
        let mut s = self.faults.stats;
        s.duplicates_suppressed += self.engine.duplicates_suppressed;
        s
    }

    /// A uniformly random node label (the "random node of the tree"
    /// every request and registration enters through). O(1) over the
    /// directory's sorted table — no cache to rebuild.
    pub fn random_node(&mut self) -> Option<Key> {
        self.engine.random_node(&mut self.rng)
    }

    /// Draws a fresh peer identifier not colliding with existing ones.
    pub fn draw_peer_id(&mut self) -> Key {
        loop {
            let id = self
                .config
                .alphabet
                .random_id(&mut self.rng, self.config.peer_id_len);
            if !self.engine.contains_peer(&id) {
                return id;
            }
        }
    }

    /// Access to the system RNG (experiments thread all randomness
    /// through the system for reproducibility).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    // ------------------------------------------------------------------
    // Peer membership
    // ------------------------------------------------------------------

    /// Joins a peer under a freshly drawn random identifier.
    pub fn add_peer(&mut self, capacity: u32) -> Result<Key> {
        let id = self.draw_peer_id();
        self.add_peer_with_id(id.clone(), capacity)?;
        Ok(id)
    }

    /// Joins a peer under the given identifier, routing the join
    /// through the tree (Algorithms 1 and 2) when the overlay is
    /// already populated.
    pub fn add_peer_with_id(&mut self, id: Key, capacity: u32) -> Result<()> {
        self.config.alphabet.validate(&id)?;
        if self.engine.contains_peer(&id) {
            return Err(DlptError::DuplicatePeer(id.to_string()));
        }
        self.engine.add_local_shard(id.clone(), capacity);
        if self.engine.peer_count() == 1 {
            return Ok(());
        }
        let env = self.engine.join_envelope(&id, &mut self.rng);
        self.enqueue(env);
        self.drain()?;
        self.flush_replication()
    }

    /// Graceful departure: the peer hands its nodes to its successor
    /// and splices itself out (Section 4's churn model).
    pub fn leave_peer(&mut self, id: &Key) -> Result<()> {
        self.engine.leave_shard(id, &mut self.pump)?;
        self.drain()?;
        self.flush_replication()
    }

    /// Non-graceful departure: the peer vanishes and the ring heals
    /// around it. Without replication (`k = 1`) every node the peer ran
    /// — and its registered data — is lost. With `k > 1` each lost node
    /// fails over to a surviving follower copy (`protocol::repair`);
    /// only nodes with no live replica are lost. Returns the labels of
    /// the *lost* nodes. Call [`DlptSystem::repair_tree`] afterwards to
    /// re-attach any orphaned subtrees.
    pub fn crash_peer(&mut self, id: &Key) -> Result<Vec<Key>> {
        self.engine.crash_shard(id)
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Registers a service key, entering the tree at a random node
    /// (Algorithm 3).
    pub fn insert_data(&mut self, key: impl Into<Key>) -> Result<()> {
        let key = key.into();
        match self.random_node() {
            Some(entry) => self.insert_data_at(&entry, key),
            None => self.insert_first(key),
        }
    }

    /// Registers a service key entering at a chosen node.
    pub fn insert_data_at(&mut self, entry: &Key, key: impl Into<Key>) -> Result<()> {
        let key = key.into();
        self.config.alphabet.validate(&key)?;
        if self.engine.peer_count() == 0 {
            return Err(DlptError::EmptyRing);
        }
        if !self.engine.directory.contains(entry) {
            return Err(DlptError::UnknownNode(entry.to_string()));
        }
        self.enqueue(Envelope::to_node(
            entry.clone(),
            NodeMsg::DataInsertion { key },
        ));
        self.drain()?;
        self.flush_replication()
    }

    /// First registration: creates the root node directly on the peer
    /// the mapping rule designates (there is no tree to route through
    /// yet).
    fn insert_first(&mut self, key: Key) -> Result<()> {
        self.config.alphabet.validate(&key)?;
        if self.engine.peer_count() == 0 {
            return Err(DlptError::EmptyRing);
        }
        let host = self.engine.host_peer(&key).expect("non-empty ring").clone();
        let mut node = NodeState::new(key.clone());
        node.data.insert(key.clone());
        self.engine
            .shard_mut(&host)
            .expect("host exists")
            .install(node);
        self.engine.directory.insert(key.clone(), host);
        self.engine.mark_touched(&key);
        self.engine.root = Some(key);
        self.flush_replication()
    }

    /// Deregisters a service key (extension over the paper — see
    /// `protocol::data_removal`). Nodes left redundant dissolve, so
    /// the overlay keeps converging to the sequential oracle of the
    /// remaining keys. No-op if the key is absent.
    pub fn remove_data(&mut self, key: &Key) -> Result<()> {
        if self.engine.peer_count() == 0 {
            return Err(DlptError::EmptyRing);
        }
        let Some(entry) = self.random_node() else {
            return Ok(()); // empty tree: nothing registered
        };
        self.enqueue(Envelope::to_node(
            entry,
            NodeMsg::DataRemoval { key: key.clone() },
        ));
        self.drain()?;
        self.flush_replication()?;
        if self.engine.root().is_none() {
            self.recompute_root();
        }
        Ok(())
    }

    /// Issues a discovery request from a random entry node and runs it
    /// to completion.
    pub fn request(&mut self, query: QueryKind) -> Result<LookupOutcome> {
        let entry = self.random_node().ok_or(DlptError::EmptyTree)?;
        self.request_from(&entry, query)
    }

    /// Issues a discovery request from a chosen entry node.
    ///
    /// Cache consultation, shortcut learning and scatter/gather
    /// aggregation are the engine's — see
    /// [`Engine::begin_request`] for the route-cache flow.
    pub fn request_from(&mut self, entry: &Key, query: QueryKind) -> Result<LookupOutcome> {
        let (id, env) = self.engine.begin_request(entry, query)?;
        if !self.faults.is_active() {
            self.enqueue(env);
            self.drain()?;
            return self
                .engine
                .take_finished(id)
                .ok_or(DlptError::Undeliverable(format!("request {id}")));
        }
        // Fault-tolerant path: a lost response leaves a branch
        // outstanding at quiescence; re-issue the engine's retry
        // snapshot of the original envelope up to the retry budget,
        // then fail explicitly — a request never hangs and never
        // silently vanishes.
        self.enqueue(env);
        self.drain()?;
        let mut attempts = 0u32;
        loop {
            if let Some(out) = self.engine.take_finished(id) {
                return Ok(out);
            }
            if !self.engine.retry_pending(id) || attempts >= self.config.request_retry_budget {
                break;
            }
            attempts += 1;
            self.faults.stats.retries += 1;
            let origin = self
                .engine
                .retry_envelope(id)
                .expect("fault recovery keeps the origin snapshot");
            self.engine.reset_request_for_retry(id);
            self.enqueue(origin);
            self.drain()?;
        }
        if self.engine.retry_pending(id) {
            // Budget exhausted with a branch still stranded: the
            // outcome below is the explicit failure.
            self.faults.stats.requests_failed += 1;
        }
        Ok(self.engine.finish_request(id))
    }

    /// Runs a batch of discovery requests through the shared-nothing
    /// multi-worker pump ([`crate::engine::parallel`]): entry nodes are
    /// drawn from the system RNG exactly as [`DlptSystem::request`]
    /// draws them, then the directory is partitioned into per-worker
    /// slices exchanging envelopes over bounded SPSC rings with
    /// credit-based quiescence. Outcomes are returned in input order;
    /// with unbounded capacity they equal the sequential pump's.
    pub fn discover_batch(
        &mut self,
        queries: Vec<QueryKind>,
        workers: usize,
    ) -> Result<Vec<LookupOutcome>> {
        let mut requests = Vec::with_capacity(queries.len());
        for query in queries {
            let entry = self.random_node().ok_or(DlptError::EmptyTree)?;
            requests.push((entry, query));
        }
        ParallelPump::new(workers).run_batch(&mut self.engine, requests)
    }

    /// Exact lookup of one key.
    pub fn lookup(&mut self, key: &Key) -> LookupOutcome {
        self.request(QueryKind::Exact(key.clone()))
            .unwrap_or_else(|_| empty_outcome())
    }

    /// Range query over `[lo, hi]`.
    pub fn range(&mut self, lo: &Key, hi: &Key) -> LookupOutcome {
        self.request(QueryKind::Range(lo.clone(), hi.clone()))
            .unwrap_or_else(|_| empty_outcome())
    }

    /// Automatic completion of a partial search string.
    pub fn complete(&mut self, prefix: &Key) -> LookupOutcome {
        self.request(QueryKind::Complete(prefix.clone()))
            .unwrap_or_else(|_| empty_outcome())
    }

    // ------------------------------------------------------------------
    // Load-balancing support (used by `crate::balance`)
    // ------------------------------------------------------------------

    /// Moves one node to another peer, updating the directory. Used by
    /// the balancers; counted as balance traffic.
    pub fn migrate_node(&mut self, label: &Key, to: &Key) -> Result<()> {
        // Unlike the other mutating entry points (whose emissions are
        // all reliable-class), a migration broadcasts the faultable
        // `InvalidateCached` — it must enter through the fault layer or
        // a partition could never strand a stale shortcut.
        if self.faults.is_active() {
            let mut t = FaultyTransport::new(&mut self.pump, &mut self.faults);
            self.engine.migrate_shard_node(label, to, &mut t)?;
        } else {
            self.engine.migrate_shard_node(label, to, &mut self.pump)?;
        }
        self.drain()?;
        self.flush_replication()
    }

    /// Changes a peer's identifier in place (the MLT boundary move:
    /// "finding the best distribution is equivalent to find the best
    /// position of P moving along the ring"). Ring links of both
    /// neighbours and the directory entries of hosted nodes follow.
    pub fn rename_peer(&mut self, old: &Key, new: Key) -> Result<()> {
        if old == &new {
            return Ok(());
        }
        self.config.alphabet.validate(&new)?;
        self.engine.rename_shard(old, new)?;
        self.flush_replication()
    }

    // ------------------------------------------------------------------
    // Replication (extension over the paper — see `protocol::repair`)
    // ------------------------------------------------------------------

    /// One self-healing anti-entropy pass (`protocol::repair`): counts
    /// nodes whose live follower set is short of `min(k - 1, |P| - 1)`,
    /// garbage-collects stale copies, refreshes the follower
    /// bookkeeping, then kicks every peer with `SyncReplicas` so each
    /// re-clones its nodes along the ring. Run once per time unit to
    /// converge the overlay back to the replication invariant after
    /// crashes and leaves. No-op at `k = 1`.
    pub fn anti_entropy(&mut self) -> Result<AntiEntropyReport> {
        let (mut report, kicked) = self.engine.anti_entropy_scan(&mut self.pump);
        if !kicked {
            return Ok(report);
        }
        let before = self.engine.repl_stats.replication_messages;
        self.drain()?;
        report.messages_sent = (self.engine.repl_stats.replication_messages - before) as usize;
        Ok(report)
    }

    // ------------------------------------------------------------------
    // Crash repair (extension over the paper)
    // ------------------------------------------------------------------

    /// Re-attaches subtrees orphaned by crashes and prunes dangling
    /// links. System-level surgery standing in for the re-registration
    /// traffic a deployment would see; see DESIGN.md.
    pub fn repair_tree(&mut self) -> RepairReport {
        let mut report = RepairReport::default();
        // 1. Prune children pointers to dead nodes.
        let live: std::collections::BTreeSet<Key> =
            self.engine.directory.labels().cloned().collect();
        let mut touched: Vec<Key> = Vec::new();
        for pid in self.engine.peer_ids() {
            let Some(shard) = self.engine.shard_mut(&pid) else {
                continue;
            };
            for node in shard.nodes.values_mut() {
                let before = node.children.len();
                node.children.retain(|c| live.contains(c));
                if node.children.len() < before {
                    touched.push(node.label.clone());
                }
                report.pruned_links += before - node.children.len();
            }
        }
        for label in touched {
            self.engine.mark_touched(&label);
        }
        // 2. Find orphans: nodes whose father is dead, plus a missing
        //    root.
        let mut orphans: Vec<Key> = Vec::new();
        let mut root: Option<Key> = None;
        for shard in self.engine.local_shards() {
            for node in shard.nodes.values() {
                match &node.father {
                    None => root = Some(node.label.clone()),
                    Some(f) if !live.contains(f) => orphans.push(node.label.clone()),
                    Some(_) => {}
                }
            }
        }
        orphans.sort(); // lexicographic = ancestors first
        for o in orphans {
            match &root {
                None => {
                    self.set_father(&o, None);
                    root = Some(o);
                    report.reattached += 1;
                }
                Some(r) => {
                    let r = r.clone();
                    let created = self.reattach(&r, &o, &mut root);
                    report.created_nodes += created;
                    report.reattached += 1;
                }
            }
        }
        self.engine.root = root;
        self.engine.stats.nodes_reattached += report.reattached as u64;
        report
    }

    fn set_father(&mut self, label: &Key, father: Option<Key>) {
        let host = self
            .engine
            .directory
            .host_of(label)
            .expect("live node")
            .clone();
        let node = self
            .engine
            .shard_mut(&host)
            .expect("live")
            .nodes
            .get_mut(label)
            .expect("live");
        node.father = father;
        self.engine.mark_touched(label);
    }

    fn add_child(&mut self, parent: &Key, child: Key) {
        let host = self
            .engine
            .directory
            .host_of(parent)
            .expect("live node")
            .clone();
        let node = self
            .engine
            .shard_mut(&host)
            .expect("live")
            .nodes
            .get_mut(parent)
            .expect("live");
        node.children.insert(child);
        self.engine.mark_touched(parent);
    }

    fn replace_child_of(&mut self, parent: &Key, old: &Key, new: Key) {
        let host = self
            .engine
            .directory
            .host_of(parent)
            .expect("live node")
            .clone();
        let node = self
            .engine
            .shard_mut(&host)
            .expect("live")
            .nodes
            .get_mut(parent)
            .expect("live");
        node.replace_child(old, new);
        self.engine.mark_touched(parent);
    }

    /// Creates a structural node directly on its mapped host (repair
    /// path only).
    fn create_structural(&mut self, label: Key, father: Option<Key>, children: Vec<Key>) {
        let host = self
            .engine
            .host_peer(&label)
            .expect("non-empty ring")
            .clone();
        let mut node = NodeState::new(label.clone());
        node.father = father;
        node.children = children.into_iter().collect();
        self.engine.shard_mut(&host).expect("live").install(node);
        self.engine.mark_touched(&label);
        self.engine.directory.insert(label, host);
    }

    /// Walks from `root` and links the orphan `o` (whose own subtree is
    /// intact) back into the tree, mirroring the four insertion cases.
    /// Returns how many structural nodes were created.
    fn reattach(&mut self, root: &Key, o: &Key, root_slot: &mut Option<Key>) -> usize {
        let mut cur = root.clone();
        loop {
            let node = self.engine.node(&cur).expect("walk stays on live nodes");
            let label = node.label.clone();
            if &label == o {
                // The orphan *is* this label — can't happen (labels are
                // unique and o is unattached); treat as attached.
                return 0;
            }
            if label.is_proper_prefix_of(o) {
                match node.child_extending(o).cloned() {
                    Some(q) if q.is_proper_prefix_of(o) => {
                        cur = q;
                    }
                    Some(q) if o.is_proper_prefix_of(&q) => {
                        // o slots between label and q.
                        self.replace_child_of(&label, &q, o.clone());
                        self.set_father(&q, Some(o.clone()));
                        self.add_child(o, q);
                        self.set_father(o, Some(label));
                        return 0;
                    }
                    Some(q) => {
                        // Sibling split under a new structural node.
                        let g = q.gcp(o);
                        self.replace_child_of(&label, &q, g.clone());
                        self.set_father(&q, Some(g.clone()));
                        self.set_father(o, Some(g.clone()));
                        self.create_structural(g.clone(), Some(label), vec![q, o.clone()]);
                        return 1;
                    }
                    None => {
                        self.add_child(&label, o.clone());
                        self.set_father(o, Some(label));
                        return 0;
                    }
                }
            } else if o.is_proper_prefix_of(&label) {
                // Only at the root: o becomes the new root above it.
                self.set_father(&label, Some(o.clone()));
                self.add_child(o, label);
                self.set_father(o, None);
                *root_slot = Some(o.clone());
                return 0;
            } else {
                // Divergent at the root: new structural root.
                let g = label.gcp(o);
                self.set_father(&label, Some(g.clone()));
                self.set_father(o, Some(g.clone()));
                self.create_structural(g.clone(), None, vec![label, o.clone()]);
                *root_slot = Some(g);
                return 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // The pump
    // ------------------------------------------------------------------

    fn enqueue(&mut self, env: Envelope) {
        self.pump.queue.push_back((0, env));
    }

    fn recompute_root(&mut self) {
        let root = self
            .engine
            .local_shards()
            .flat_map(|s| s.nodes.values())
            .find(|n| n.father.is_none())
            .map(|n| n.label.clone());
        self.engine.root = root;
    }

    /// Eager replica maintenance after a mutating operation: the
    /// engine enqueues the re-clone traffic, the pump drains it.
    /// No-op at `k = 1`.
    fn flush_replication(&mut self) -> Result<()> {
        self.engine.flush_replication(&mut self.pump);
        self.drain()
    }

    /// Processes the queue to quiescence through the engine's
    /// dispatch.
    fn drain(&mut self) -> Result<()> {
        let debug = self.debug_drain;
        let mut trace: VecDeque<String> = VecDeque::new();
        let mut steps = 0usize;
        while let Some((requeues, env)) = self.pump.queue.pop_front() {
            steps += 1;
            if steps > self.config.drain_budget {
                if debug {
                    eprintln!("drain budget exhausted; trace of last dispatches:");
                    for line in &trace {
                        eprintln!("  {line}");
                    }
                    eprintln!("current: {env:?}");
                    if let Address::Node(l) = &env.to {
                        if let Some(n) = self.engine.node(l) {
                            eprintln!("node state: {n:?}");
                            if let Some(f) = &n.father {
                                eprintln!("father state: {:?}", self.engine.node(f));
                            }
                        }
                    }
                }
                return Err(DlptError::HopBudgetExhausted {
                    budget: self.config.drain_budget,
                });
            }
            if debug {
                trace.push_back(format!("{env:?}"));
                if trace.len() > 30 {
                    trace.pop_front();
                }
            }
            let step = if self.faults.is_active() {
                let mut t = FaultyTransport::new(&mut self.pump, &mut self.faults);
                self.engine.deliver(&mut t, env)?
            } else {
                self.engine.deliver(&mut self.pump, env)?
            };
            match step {
                Step::Done => {}
                Step::Requeue(env) => self.requeue(requeues, env)?,
            }
        }
        // Reorder-deferred envelopes are released at quiescence; they
        // may fan out further, so drain again until nothing is held.
        if self.faults.flush_deferred(&mut self.pump) {
            return self.drain();
        }
        Ok(())
    }

    fn requeue(&mut self, requeues: u32, env: Envelope) -> Result<()> {
        // A node seed in flight advances one ring hop per queue cycle
        // (`protocol::data_insertion::on_host`), so an envelope waiting
        // on that node can legitimately requeue O(ring) times before
        // its destination lands. Floor the configured budget at twice
        // the membership: the default stays tight on small rings while
        // large rings get the headroom the walk actually needs.
        let floor = (self.engine.peer_count() as u32).saturating_mul(2);
        if requeues >= self.config.requeue_budget.max(floor) {
            return self.engine.fail_undeliverable(env);
        }
        self.engine.stats.requeues += 1;
        self.pump.queue.push_back((requeues + 1, env));
        Ok(())
    }

    /// Depth of every live node (root = 0); see [`Engine::depth_map`].
    pub fn depth_map(&self) -> BTreeMap<Key, u32> {
        self.engine.depth_map()
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;
    use crate::replication::ReplicationStats;
    use crate::trie::PgcpTrie;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn small_system(peers: usize) -> DlptSystem {
        DlptSystem::builder()
            .seed(42)
            .peer_id_len(8)
            .bootstrap_peers(peers)
            .build()
    }

    const PAPER_KEYS: [&str; 4] = ["01", "10101", "10111", "101111"];

    fn binary_system(peers: usize, seed: u64) -> DlptSystem {
        let mut sys = DlptSystem::builder()
            .alphabet(Alphabet::binary())
            .seed(seed)
            .peer_id_len(10)
            .bootstrap_peers(peers)
            .build();
        for s in PAPER_KEYS {
            sys.insert_data(k(s)).unwrap();
        }
        sys
    }

    #[test]
    fn requeue_budget_floors_at_ring_size() {
        // A sibling split sends the new common parent on an O(ring)
        // `on_host` walk while the sibling's `SearchingHost` requeues
        // against the not-yet-installed node. A fixed budget fails
        // that insert once the ring outgrows it (first caught by
        // `Engine::audit` at ~2000 peers with the default 256, as two
        // dangling trie pointers); the membership floor must absorb
        // the wait even when the configured budget is zero.
        let mut sys = DlptSystem::builder()
            .seed(7)
            .bootstrap_peers(24)
            .config(SystemConfig {
                alphabet: Alphabet::binary(),
                peer_id_len: 10,
                requeue_budget: 0,
                ..SystemConfig::default()
            })
            .build();
        for s in PAPER_KEYS {
            sys.insert_data(k(s)).unwrap();
        }
        assert!(
            sys.stats.requeues > 0,
            "scenario must exercise the requeue path"
        );
        assert!(sys.audit().is_empty());
    }

    #[test]
    fn bootstrap_builds_consistent_ring() {
        let sys = small_system(10);
        assert_eq!(sys.peer_count(), 10);
        sys.check_ring().unwrap();
    }

    #[test]
    fn paper_tree_matches_oracle() {
        let sys = binary_system(4, 7);
        let oracle = sys.oracle();
        assert_eq!(sys.node_labels(), oracle.labels());
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
    }

    #[test]
    fn insertion_is_order_invariant_across_entries() {
        // Same keys, different seeds (=> different entry nodes) must
        // converge to the same tree.
        let reference = binary_system(4, 1).node_labels();
        for seed in 2..10 {
            let sys = binary_system(4, seed);
            assert_eq!(sys.node_labels(), reference, "seed {seed}");
            sys.check_tree().unwrap();
            sys.check_mapping().unwrap();
        }
    }

    #[test]
    fn lookup_finds_registered_keys() {
        let mut sys = binary_system(4, 7);
        for s in PAPER_KEYS {
            let out = sys.lookup(&k(s));
            assert!(out.satisfied, "{s}");
            assert_eq!(out.results, vec![k(s)]);
            assert!(out.logical_hops() < 12);
        }
        let out = sys.lookup(&k("11"));
        assert!(!out.satisfied);
        assert!(out.results.is_empty());
    }

    #[test]
    fn range_and_completion_work_end_to_end() {
        let mut sys = binary_system(4, 7);
        let out = sys.range(&k("10"), &k("10111"));
        assert!(out.satisfied);
        assert_eq!(out.results, vec![k("10101"), k("10111")]);
        let out = sys.complete(&k("101"));
        assert!(out.satisfied);
        assert_eq!(out.results, vec![k("10101"), k("10111"), k("101111")]);
    }

    #[test]
    fn peers_join_after_data_exists() {
        let mut sys = binary_system(3, 7);
        for _ in 0..5 {
            sys.add_peer(100).unwrap();
        }
        sys.check_ring().unwrap();
        sys.check_mapping().unwrap();
        sys.check_tree().unwrap();
        assert_eq!(sys.peer_count(), 8);
    }

    #[test]
    fn graceful_leave_preserves_everything() {
        let mut sys = binary_system(6, 7);
        let victims: Vec<Key> = sys.peer_ids().into_iter().take(3).collect();
        for v in victims {
            sys.leave_peer(&v).unwrap();
            sys.check_ring().unwrap();
            sys.check_mapping().unwrap();
            sys.check_tree().unwrap();
        }
        assert_eq!(sys.peer_count(), 3);
        let mut sys2 = sys;
        for s in PAPER_KEYS {
            assert!(sys2.lookup(&k(s)).satisfied, "{s}");
        }
    }

    #[test]
    fn reinserting_every_key_from_random_entries_is_idempotent() {
        // Regression for the father == key corruption: re-registering
        // an existing key entering at an arbitrary node must route to
        // the existing node, not seed a duplicate.
        let mut sys = small_system(6);
        let names: Vec<String> = (0..30).map(|i| format!("PDGEL{i:02}")).collect();
        for n in &names {
            sys.insert_data(k(n)).unwrap();
        }
        let labels = sys.node_labels();
        for _ in 0..4 {
            for n in &names {
                sys.insert_data(k(n)).unwrap();
            }
        }
        assert_eq!(sys.node_labels(), labels);
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
        // No node may ever be its own father.
        for l in sys.node_labels() {
            let node = sys.node(&l).unwrap();
            assert_ne!(node.father.as_ref(), Some(&l), "{l} is its own father");
        }
    }

    #[test]
    fn removal_converges_to_oracle_of_remaining_keys() {
        let mut sys = binary_system(4, 61);
        // Remove two of the paper keys; the overlay must equal the
        // oracle built from the remaining two.
        sys.remove_data(&k("10101")).unwrap();
        sys.remove_data(&k("101111")).unwrap();
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
        assert_eq!(sys.node_labels(), sys.oracle().labels());
        assert!(!sys.lookup(&k("10101")).found);
        assert!(sys.lookup(&k("10111")).satisfied);
        assert!(sys.lookup(&k("01")).satisfied);
        // Removing an absent key is a no-op.
        let labels = sys.node_labels();
        sys.remove_data(&k("111")).unwrap();
        assert_eq!(sys.node_labels(), labels);
    }

    #[test]
    fn removing_everything_empties_the_tree() {
        let mut sys = binary_system(3, 67);
        for s in PAPER_KEYS {
            sys.remove_data(&k(s)).unwrap();
        }
        assert_eq!(sys.node_count(), 0);
        assert!(sys.root().is_none());
        // The overlay still works afterwards.
        sys.insert_data(k("1100")).unwrap();
        assert!(sys.lookup(&k("1100")).satisfied);
        assert_eq!(sys.root(), Some(&k("1100")));
    }

    #[test]
    fn insert_remove_interleaving_tracks_oracle() {
        let mut sys = small_system(5);
        let names: Vec<Key> = (0..24).map(|i| k(&format!("SVC{:02}", i))).collect();
        let mut live = std::collections::BTreeSet::new();
        for round in 0..3 {
            for (i, n) in names.iter().enumerate() {
                if (i + round) % 3 == 0 {
                    sys.insert_data(n.clone()).unwrap();
                    live.insert(n.clone());
                } else if live.contains(n) {
                    sys.remove_data(n).unwrap();
                    live.remove(n);
                }
            }
            sys.check_tree().unwrap();
            sys.check_mapping().unwrap();
            let mut oracle = PgcpTrie::new();
            for n in &live {
                oracle.insert(n.clone());
            }
            assert_eq!(sys.node_labels(), oracle.labels(), "round {round}");
        }
    }

    #[test]
    fn grid_names_register_and_resolve() {
        let mut sys = small_system(6);
        for name in ["DGEMM", "DGEMV", "DTRSM", "S3L_mat_mult", "PSGESV"] {
            sys.insert_data(k(name)).unwrap();
        }
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
        assert_eq!(sys.node_labels(), sys.oracle().labels());
        let out = sys.complete(&k("DGE"));
        assert_eq!(out.results, vec![k("DGEMM"), k("DGEMV")]);
    }

    #[test]
    fn capacity_exhaustion_drops_requests() {
        let mut sys = DlptSystem::builder()
            .seed(3)
            .peer_id_len(8)
            .default_capacity(2)
            .bootstrap_peers(1)
            .build();
        sys.insert_data(k("DGEMM")).unwrap();
        // Two visits fit (single-node tree → 1 visit per lookup).
        assert!(sys.lookup(&k("DGEMM")).satisfied);
        assert!(sys.lookup(&k("DGEMM")).satisfied);
        let out = sys.lookup(&k("DGEMM"));
        assert!(out.dropped);
        assert!(!out.satisfied);
        // New unit: capacity refreshes, demand was recorded.
        sys.end_time_unit();
        assert_eq!(sys.node(&k("DGEMM")).unwrap().prev_load, 3);
        assert!(sys.lookup(&k("DGEMM")).satisfied);
    }

    #[test]
    fn gather_under_capacity_pressure_keeps_surviving_results() {
        // Regression: the scatter partial of a node must be processed
        // before any of its branch visits can be refused, or a
        // synchronous capacity drop on one branch finalizes the
        // aggregation early and every surviving branch's results are
        // discarded as stale. One peer, capacity 3, three keys: the
        // completion visits root + 3 children = 4 > 3, so exactly one
        // branch drops — the other results must survive.
        let mut sys = DlptSystem::builder()
            .seed(3)
            .peer_id_len(8)
            .default_capacity(3)
            .bootstrap_peers(1)
            .build();
        for s in ["DGEMM", "DGEMV", "DTRSM"] {
            sys.insert_data(k(s)).unwrap();
        }
        sys.end_time_unit(); // reset capacity spent during construction
        let out = sys.complete(&k("D"));
        assert!(out.dropped, "some visit must exceed capacity 3");
        assert!(!out.satisfied, "a dropped visit forfeits satisfaction");
        // The buggy ordering finalized the request on the first drop
        // and threw every surviving partial away (results == []).
        assert!(
            out.found && !out.results.is_empty(),
            "surviving branches' keys must be reported: {out:?}"
        );
        assert_eq!(out.results, vec![k("DTRSM")], "pre-refactor behaviour");
    }

    #[test]
    fn rename_peer_keeps_invariants() {
        let mut sys = binary_system(4, 11);
        let ids = sys.peer_ids();
        let victim = ids[1].clone();
        // Rename to an id still inside (pred, victim]'s arc-safe zone:
        // use a node label hosted by the victim if any, else skip.
        let shard = sys.shard(&victim).unwrap();
        if let Some(node_label) = shard.nodes.keys().next_back().cloned() {
            sys.rename_peer(&victim, node_label.clone()).unwrap();
            assert!(sys.shard(&node_label).is_some());
            sys.check_ring().unwrap();
            sys.check_mapping().unwrap();
        }
    }

    #[test]
    fn crash_and_repair_restores_tree_shape() {
        let mut sys = binary_system(5, 13);
        let loaded: Vec<Key> = sys
            .peer_ids()
            .into_iter()
            .filter(|p| sys.shard(p).map(|s| s.node_count() > 0).unwrap_or(false))
            .collect();
        let victim = loaded[0].clone();
        let lost = sys.crash_peer(&victim).unwrap();
        assert!(!lost.is_empty());
        sys.repair_tree();
        sys.check_tree().unwrap();
        sys.check_ring().unwrap();
        // Lost keys can be re-registered and found again.
        let mut sys2 = sys;
        for l in &lost {
            // Only data keys need re-registration (structural labels
            // reappear on their own as needed).
            sys2.insert_data(l.clone()).unwrap();
        }
        sys2.check_tree().unwrap();
        for s in PAPER_KEYS {
            assert!(sys2.lookup(&k(s)).satisfied, "{s}");
        }
    }

    #[test]
    fn migrate_node_moves_and_counts() {
        let mut sys = binary_system(4, 17);
        let label = sys.node_labels()[0].clone();
        let from = sys.host_of(&label).unwrap().clone();
        let to = sys
            .peer_ids()
            .into_iter()
            .find(|p| *p != from)
            .expect("more than one peer");
        sys.migrate_node(&label, &to).unwrap();
        assert_eq!(sys.host_of(&label), Some(&to));
        assert_eq!(sys.stats.balance_migrations, 1);
        // Mapping is now intentionally violated (that is what the
        // balancers repair by renaming); the node is still reachable.
        let out = sys.lookup(&k("10101"));
        assert!(out.satisfied);
    }

    #[test]
    fn hop_accounting_matches_oracle_depth() {
        let mut sys = binary_system(3, 19);
        let out = sys.lookup(&k("101111"));
        assert!(out.satisfied);
        assert_eq!(out.path.len(), out.host_path.len());
        assert!(out.physical_hops() <= out.logical_hops());
    }

    #[test]
    fn empty_states_error_cleanly() {
        let mut sys = DlptSystem::builder().build();
        assert!(matches!(
            sys.insert_data(k("DGEMM")),
            Err(DlptError::EmptyRing)
        ));
        assert!(matches!(
            sys.request(QueryKind::Exact(k("DGEMM"))),
            Err(DlptError::EmptyTree)
        ));
        sys.add_peer(10).unwrap();
        assert!(matches!(
            sys.request(QueryKind::Exact(k("DGEMM"))),
            Err(DlptError::EmptyTree)
        ));
    }

    #[test]
    fn duplicate_peer_rejected() {
        let mut sys = small_system(2);
        let id = sys.peer_ids()[0].clone();
        assert!(matches!(
            sys.add_peer_with_id(id, 5),
            Err(DlptError::DuplicatePeer(_))
        ));
    }

    #[test]
    fn last_peer_leaving_empties_the_overlay() {
        let mut sys = small_system(1);
        sys.insert_data(k("DGEMM")).unwrap();
        let id = sys.peer_ids()[0].clone();
        sys.leave_peer(&id).unwrap();
        assert_eq!(sys.peer_count(), 0);
        assert_eq!(sys.node_count(), 0);
        assert!(sys.root().is_none());
    }

    fn replicated_system(peers: usize, k: usize, seed: u64) -> DlptSystem {
        let mut sys = DlptSystem::builder()
            .seed(seed)
            .peer_id_len(8)
            .replication(k)
            .bootstrap_peers(peers)
            .build();
        for name in ["DGEMM", "DGEMV", "DTRSM", "S3L_fft", "S3L_sort", "PSGESV"] {
            sys.insert_data(k_(name)).unwrap();
        }
        sys
    }

    fn k_(s: &str) -> Key {
        Key::from(s)
    }

    #[test]
    fn eager_replication_satisfies_invariant_without_anti_entropy() {
        let sys = replicated_system(6, 2, 71);
        sys.check_replication().unwrap();
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
        for label in sys.node_labels() {
            let hosts = sys.replica_hosts(&label);
            assert_eq!(hosts.len(), 2, "{label}: {hosts:?}");
            assert_ne!(hosts[0], hosts[1]);
        }
        assert!(sys.repl_stats.eager_syncs > 0);
        assert!(sys.repl_stats.replication_messages > 0);
        // Replication stays out of the protocol counters.
        let baseline = replicated_system(6, 1, 71);
        assert_eq!(sys.stats, baseline.stats, "SystemStats must not see k");
    }

    #[test]
    fn k1_is_observationally_identical_to_unreplicated() {
        let a = replicated_system(5, 1, 13);
        let b = {
            let mut sys = DlptSystem::builder()
                .seed(13)
                .peer_id_len(8)
                .bootstrap_peers(5)
                .build();
            for name in ["DGEMM", "DGEMV", "DTRSM", "S3L_fft", "S3L_sort", "PSGESV"] {
                sys.insert_data(k_(name)).unwrap();
            }
            sys
        };
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.peer_ids(), b.peer_ids());
        assert_eq!(a.node_labels(), b.node_labels());
        assert_eq!(a.repl_stats, ReplicationStats::default());
    }

    #[test]
    fn crash_with_replication_loses_nothing() {
        let mut sys = replicated_system(6, 2, 29);
        let keys = sys.registered_keys();
        let victim = sys
            .peer_ids()
            .into_iter()
            .max_by_key(|p| sys.shard(p).map(|s| s.node_count()).unwrap_or(0))
            .unwrap();
        assert!(sys.shard(&victim).unwrap().node_count() > 0);
        let lost = sys.crash_peer(&victim).unwrap();
        assert!(lost.is_empty(), "every node had a follower: {lost:?}");
        assert!(sys.repl_stats.promotions > 0);
        sys.repair_tree();
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
        sys.check_ring().unwrap();
        for key in &keys {
            assert!(sys.lookup(key).satisfied, "{key}");
        }
        // Anti-entropy restores full redundancy after the promotion.
        let report = sys.anti_entropy().unwrap();
        assert!(report.under_replicated > 0, "promotions left k-1 gaps");
        sys.check_replication().unwrap();
        let report = sys.anti_entropy().unwrap();
        assert_eq!(report.under_replicated, 0, "second pass finds it healed");
    }

    #[test]
    fn anti_entropy_heals_a_crashed_follower() {
        let mut sys = replicated_system(6, 3, 31);
        sys.check_replication().unwrap();
        // Crash a peer that only *follows* some label.
        let label = sys.node_labels()[0].clone();
        let follower = sys.replica_hosts(&label)[1].clone();
        sys.crash_peer(&follower).unwrap();
        sys.repair_tree();
        sys.anti_entropy().unwrap();
        sys.check_replication().unwrap();
        assert_eq!(
            sys.replica_hosts(&label).len(),
            3.min(sys.peer_count()),
            "follower set refilled"
        );
    }

    #[test]
    fn replica_gc_follows_data_removal() {
        let mut sys = replicated_system(5, 2, 37);
        sys.remove_data(&k_("DGEMM")).unwrap();
        sys.anti_entropy().unwrap();
        // No peer may hold a copy of a label the tree no longer has.
        let live: std::collections::BTreeSet<Key> = sys.node_labels().into_iter().collect();
        for id in sys.peer_ids() {
            for rl in sys.shard(&id).unwrap().replicas.keys() {
                assert!(live.contains(rl), "stale replica {rl} on {id}");
            }
        }
        sys.check_replication().unwrap();
    }

    #[test]
    fn capacity_failover_serves_reads_from_followers() {
        // One key on a 2-peer ring, primary capacity 1: the second
        // lookup visit would be dropped at k=1 but is served by the
        // follower copy at k=2.
        let mut sys = DlptSystem::builder()
            .seed(3)
            .peer_id_len(8)
            .default_capacity(2)
            .replication(2)
            .bootstrap_peers(2)
            .build();
        sys.insert_data(k_("DGEMM")).unwrap();
        sys.end_time_unit();
        let mut served = 0;
        for _ in 0..4 {
            if sys.lookup(&k_("DGEMM")).satisfied {
                served += 1;
            }
        }
        assert!(
            sys.repl_stats.failover_reads > 0,
            "follower must absorb overflow"
        );
        assert!(served > 2, "failover must lift satisfied beyond capacity");
    }

    #[test]
    fn graceful_leave_keeps_replication_invariant_after_anti_entropy() {
        let mut sys = replicated_system(6, 2, 41);
        let victim = sys.peer_ids()[2].clone();
        sys.leave_peer(&victim).unwrap();
        sys.anti_entropy().unwrap();
        sys.check_replication().unwrap();
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
    }

    fn cached_system(peers: usize, capacity: usize, seed: u64) -> DlptSystem {
        let mut sys = DlptSystem::builder()
            .seed(seed)
            .peer_id_len(8)
            .cache_capacity(capacity)
            .bootstrap_peers(peers)
            .build();
        for name in ["DGEMM", "DGEMV", "DTRSM", "S3L_fft", "S3L_sort", "PSGESV"] {
            sys.insert_data(k(name)).unwrap();
        }
        sys
    }

    #[test]
    fn cache_learns_then_hits_with_one_hop_route() {
        let mut sys = cached_system(6, 32, 91);
        let key = k("DGEMM");
        let first = sys.lookup(&key);
        assert!(first.satisfied);
        assert_eq!(sys.cache_stats.learned, 1);
        assert_eq!(sys.cache_stats.hits, 0);
        // Hammer the same key until a request enters at a peer that
        // has learned the shortcut (entry nodes are random).
        let mut hit_outcome = None;
        for _ in 0..64 {
            let before = sys.cache_stats.hits;
            let out = sys.lookup(&key);
            assert!(out.satisfied);
            assert_eq!(out.results, vec![key.clone()]);
            if sys.cache_stats.hits > before {
                hit_outcome = Some(out);
                break;
            }
        }
        let out = hit_outcome.expect("some lookup must hit the cache");
        assert_eq!(out.path, vec![key.clone()], "one-hop cached route");
        assert_eq!(out.logical_hops(), 0);
    }

    #[test]
    fn stale_hit_falls_back_and_relearns_after_migration() {
        let mut sys = cached_system(6, 32, 17);
        let key = k("S3L_fft");
        // Warm every peer's cache.
        for _ in 0..64 {
            assert!(sys.lookup(&key).satisfied);
        }
        assert!(sys.cache_stats.hits > 0, "cache must be warm");
        // Migrate the key's node: epochs advance, eager invalidation
        // broadcasts, and any shortcut that survives (it should not —
        // but the lazy check is the backstop) is stale.
        let from = sys.host_of(&key).unwrap().clone();
        let to = sys
            .peer_ids()
            .into_iter()
            .find(|p| *p != from)
            .expect("second peer");
        sys.migrate_node(&key, &to).unwrap();
        assert!(sys.cache_stats.invalidations_sent > 0);
        assert!(sys.cache_stats.invalidations_delivered > 0);
        // Every subsequent lookup still answers correctly.
        for _ in 0..32 {
            let out = sys.lookup(&key);
            assert!(out.satisfied);
            assert_eq!(out.results, vec![key.clone()]);
        }
    }

    #[test]
    fn removed_key_is_not_found_through_a_warm_cache() {
        let mut sys = cached_system(5, 32, 23);
        let key = k("DTRSM");
        for _ in 0..48 {
            assert!(sys.lookup(&key).satisfied);
        }
        assert!(sys.cache_stats.hits > 0);
        sys.remove_data(&key).unwrap();
        for _ in 0..24 {
            let out = sys.lookup(&key);
            assert!(!out.found, "cache must never resurrect a removed key");
            assert!(out.results.is_empty());
        }
        // Other keys stay correct.
        assert!(sys.lookup(&k("DGEMM")).satisfied);
    }

    #[test]
    fn cache_off_is_observationally_identical_and_counts_nothing() {
        let a = cached_system(5, 0, 13);
        let b = {
            let mut sys = DlptSystem::builder()
                .seed(13)
                .peer_id_len(8)
                .bootstrap_peers(5)
                .build();
            for name in ["DGEMM", "DGEMV", "DTRSM", "S3L_fft", "S3L_sort", "PSGESV"] {
                sys.insert_data(k(name)).unwrap();
            }
            sys
        };
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.peer_ids(), b.peer_ids());
        assert_eq!(a.node_labels(), b.node_labels());
        assert_eq!(a.cache_stats, CacheStats::default());
    }

    #[test]
    fn cached_hits_relieve_capacity_pressure() {
        // One peer, capacity 4, one key at depth 0: uncached lookups
        // cost one visit each anyway, so use a multi-node tree where
        // the up/down route costs several visits and hits cost one.
        let mut sys = DlptSystem::builder()
            .seed(3)
            .peer_id_len(8)
            .default_capacity(1_000)
            .cache_capacity(16)
            .bootstrap_peers(1)
            .build();
        for s in ["DGEMM", "DGEMV", "DGEX"] {
            sys.insert_data(k(s)).unwrap();
        }
        sys.end_time_unit();
        let key = k("DGEMM");
        // Learn.
        assert!(sys.lookup(&key).satisfied);
        let uncached_visits = sys.stats.discovery_messages;
        // Hit: exactly one more visit.
        assert!(sys.lookup(&key).satisfied);
        assert_eq!(sys.cache_stats.hits, 1);
        assert_eq!(
            sys.stats.discovery_messages,
            uncached_visits + 1,
            "a cached route must cost exactly one visit"
        );
    }

    #[test]
    fn depth_map_matches_father_chains() {
        let sys = binary_system(4, 7);
        let depths = sys.depth_map();
        assert_eq!(depths.len(), sys.node_count());
        for (label, d) in &depths {
            let mut cur = label.clone();
            let mut walked = 0u32;
            while let Some(f) = sys.node(&cur).unwrap().father.clone() {
                walked += 1;
                cur = f;
            }
            assert_eq!(walked, *d, "{label}");
        }
        assert_eq!(depths.values().filter(|d| **d == 0).count(), 1, "one root");
    }

    #[test]
    fn stats_count_messages() {
        let mut sys = binary_system(4, 23);
        assert!(sys.stats.join_messages > 0);
        assert!(sys.stats.insert_messages > 0);
        assert!(sys.stats.host_messages > 0);
        sys.lookup(&k("10101"));
        assert!(sys.stats.discovery_messages > 0);
    }

    #[test]
    fn many_keys_many_peers_converge_to_oracle() {
        let mut sys = DlptSystem::builder()
            .seed(29)
            .peer_id_len(8)
            .bootstrap_peers(12)
            .build();
        let names: Vec<String> = ["DGEMM", "DGEMV", "DTRSM", "DTRMM", "SGEMM", "SGEMV"]
            .iter()
            .map(|s| s.to_string())
            .chain((0..40).map(|i| format!("S3L_op_{i:02}")))
            .chain((0..40).map(|i| format!("PSROUTINE{i:02}")))
            .collect();
        for n in &names {
            sys.insert_data(k(n)).unwrap();
        }
        assert_eq!(sys.node_labels(), sys.oracle().labels());
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
        for n in &names {
            assert!(sys.lookup(&k(n)).satisfied, "{n}");
        }
        let out = sys.complete(&k("S3L"));
        assert_eq!(out.results.len(), 40);
    }
}

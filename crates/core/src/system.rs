//! The synchronous DLPT runtime: all shards in one process, one FIFO
//! message pump.
//!
//! [`DlptSystem`] owns every peer shard, a delivery directory
//! (node label → hosting peer) and a message queue. Protocol logic
//! lives entirely in [`crate::protocol`]; this runtime only routes
//! envelopes, charges discovery capacity at delivery (Section 4's
//! model) and aggregates scatter/gather responses. Processing is
//! strictly FIFO and all randomness comes from one seeded generator, so
//! every run is a pure function of (operations, seed) — the property
//! the experiment harness relies on for its 30/50/100-run averages.

use crate::alphabet::Alphabet;
use crate::cache::{self, CacheStats, Shortcut};
use crate::directory::Directory;
use crate::error::{DlptError, Result};
use crate::key::Key;
use crate::mapping::MappingViolation;
use crate::messages::NodeSeed;
use crate::messages::{
    Address, DiscoveryMsg, DiscoveryOutcome, Envelope, Message, NodeMsg, PeerMsg, QueryKind,
};
use crate::metrics::SystemStats;
use crate::node::NodeState;
use crate::peer::PeerShard;
use crate::protocol::{self, discovery, maintenance, repair, Effects};
use crate::replication::{AntiEntropyReport, ReplicationStats};
use crate::trie::{PgcpTrie, TrieViolation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};

/// Tunables of the runtime.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Digit alphabet shared by peers, nodes and service keys.
    pub alphabet: Alphabet,
    /// Length of randomly drawn peer identifiers.
    pub peer_id_len: usize,
    /// Capacity assigned to peers created without an explicit one.
    /// The default is effectively unbounded so functional use is never
    /// throttled; experiments set real capacities.
    pub default_capacity: u32,
    /// Upper bound on envelopes processed by one drain — a tripwire
    /// for routing loops, which the protocol makes impossible.
    pub drain_budget: usize,
    /// How many times one envelope may be requeued while its
    /// destination is still in flight.
    pub requeue_budget: u32,
    /// Replication factor `k`: each tree node lives on its primary
    /// (mapping-rule) host plus `k - 1` ring-successor followers
    /// (`protocol::repair`). The default `1` disables replication
    /// entirely — the runtime is then byte-identical to the
    /// pre-replication system.
    pub replication: usize,
    /// Per-peer routing-shortcut cache capacity (`crate::cache`): hot
    /// query targets learned from completed discoveries route in one
    /// directory hop instead of the O(depth) up/down climb, validated
    /// by per-label epochs. The default `0` disables caching entirely —
    /// the runtime is then byte-identical to the pre-cache system.
    pub cache_capacity: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            alphabet: Alphabet::grid(),
            peer_id_len: 16,
            default_capacity: u32::MAX >> 1,
            drain_budget: 4_000_000,
            requeue_budget: 256,
            replication: 1,
            cache_capacity: 0,
        }
    }
}

/// Builder for [`DlptSystem`].
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    config: SystemConfig,
    seed: u64,
    bootstrap_peers: usize,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder {
            config: SystemConfig::default(),
            seed: 0xD1_97,
            bootstrap_peers: 0,
        }
    }
}

impl SystemBuilder {
    /// Sets the digit alphabet (default: [`Alphabet::grid`]).
    pub fn alphabet(mut self, a: Alphabet) -> Self {
        self.config.alphabet = a;
        self
    }
    /// Seeds the system RNG (entry-node choice, identifier drawing).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
    /// Length of randomly drawn peer identifiers.
    pub fn peer_id_len(mut self, len: usize) -> Self {
        self.config.peer_id_len = len;
        self
    }
    /// Capacity for peers added without an explicit one.
    pub fn default_capacity(mut self, c: u32) -> Self {
        self.config.default_capacity = c;
        self
    }
    /// Replication factor `k` (primary + `k - 1` followers; default 1 =
    /// replication off).
    pub fn replication(mut self, k: usize) -> Self {
        self.config.replication = k.max(1);
        self
    }
    /// Per-peer routing-shortcut cache capacity (default 0 = caching
    /// off).
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.config.cache_capacity = n;
        self
    }
    /// Joins `n` peers with random identifiers during `build`.
    pub fn bootstrap_peers(mut self, n: usize) -> Self {
        self.bootstrap_peers = n;
        self
    }
    /// Overrides the whole configuration.
    pub fn config(mut self, c: SystemConfig) -> Self {
        self.config = c;
        self
    }

    /// Builds the system (and bootstraps peers if requested).
    pub fn build(self) -> DlptSystem {
        let mut sys = DlptSystem::new(self.config, self.seed);
        for _ in 0..self.bootstrap_peers {
            let cap = sys.config.default_capacity;
            sys.add_peer(cap).expect("bootstrap join cannot fail");
        }
        sys
    }
}

/// Result of a completed discovery request, as seen by the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupOutcome {
    /// The paper's satisfaction criterion: the request reached its
    /// final destination (and, for exact queries, the key was
    /// registered there), with no visit ignored for lack of capacity.
    pub satisfied: bool,
    /// Exact queries: whether the key was found. Range/completion:
    /// whether the region was reached.
    pub found: bool,
    /// True iff any visit was ignored by an exhausted peer.
    pub dropped: bool,
    /// Matching keys, sorted.
    pub results: Vec<Key>,
    /// Node labels along the up/down route (entry first).
    pub path: Vec<Key>,
    /// Hosting peer of each `path` entry at completion time.
    pub host_path: Vec<Key>,
    /// Extra node visits performed by the scatter phase of
    /// range/completion queries.
    pub gather_visits: usize,
}

impl LookupOutcome {
    /// Tree edges traversed on the up/down route.
    pub fn logical_hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// Physical messages on the up/down route: consecutive visits
    /// hosted by different peers (the quantity of Figure 9).
    pub fn physical_hops(&self) -> usize {
        self.host_path.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

/// Aggregation state of one in-flight request.
#[derive(Debug)]
struct GatherAgg {
    outstanding: i64,
    satisfied: bool,
    dropped: bool,
    results: Vec<Key>,
    best_path: Vec<Key>,
    responses: usize,
}

/// A report of what [`DlptSystem::repair_tree`] did after crashes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Dangling child links removed.
    pub pruned_links: usize,
    /// Orphaned subtree roots re-attached.
    pub reattached: usize,
    /// Structural nodes created while re-attaching.
    pub created_nodes: usize,
}

/// The whole overlay in one process. See the module docs.
#[derive(Debug)]
pub struct DlptSystem {
    config: SystemConfig,
    rng: StdRng,
    pub(crate) shards: BTreeMap<Key, PeerShard>,
    /// node label → hosting peer id (interned, incrementally ordered —
    /// subsumes the full-rebuild `node_cache` the runtime used to keep
    /// for uniform node sampling).
    pub(crate) directory: Directory,
    queue: VecDeque<(u32, Envelope)>,
    gathers: BTreeMap<u64, GatherAgg>,
    finished: BTreeMap<u64, LookupOutcome>,
    next_request: u64,
    root: Option<Key>,
    /// Reused effect buffers: one dispatch allocates nothing once the
    /// vectors have grown to the workload's high-water mark.
    scratch: Effects,
    /// Labels whose state changed during the current drain and whose
    /// replicas must be refreshed (`k > 1` only; stays empty and
    /// untouched at `k = 1`).
    touched: Vec<Key>,
    /// `(label, follower)` pairs whose copies must be garbage-collected
    /// because the node dissolved (`k > 1` only).
    dropped_replicas: Vec<(Key, Key)>,
    debug_drain: bool,
    /// Runtime counters.
    pub stats: SystemStats,
    /// Replication counters (all zero at `k = 1`; kept out of
    /// [`SystemStats`] so the unreplicated golden fingerprint is
    /// byte-identical).
    pub repl_stats: ReplicationStats,
    /// Caching counters (all zero at capacity 0; kept out of
    /// [`SystemStats`] for the same golden-fingerprint reason).
    pub cache_stats: CacheStats,
}

impl DlptSystem {
    /// Creates an empty system.
    pub fn new(config: SystemConfig, seed: u64) -> Self {
        DlptSystem {
            config,
            rng: StdRng::seed_from_u64(seed),
            shards: BTreeMap::new(),
            directory: Directory::new(),
            queue: VecDeque::new(),
            gathers: BTreeMap::new(),
            finished: BTreeMap::new(),
            next_request: 1,
            root: None,
            scratch: Effects::default(),
            touched: Vec::new(),
            dropped_replicas: Vec::new(),
            debug_drain: std::env::var_os("DLPT_DEBUG_DRAIN").is_some(),
            stats: SystemStats::default(),
            repl_stats: ReplicationStats::default(),
            cache_stats: CacheStats::default(),
        }
    }

    /// Starts a builder.
    pub fn builder() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// The runtime configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Number of peers in the ring.
    pub fn peer_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of logical tree nodes.
    pub fn node_count(&self) -> usize {
        self.directory.len()
    }

    /// Peer identifiers in ring order.
    pub fn peer_ids(&self) -> Vec<Key> {
        self.shards.keys().cloned().collect()
    }

    /// All node labels, ascending.
    pub fn node_labels(&self) -> Vec<Key> {
        self.directory.labels().cloned().collect()
    }

    /// Borrow a peer shard.
    pub fn shard(&self, id: &Key) -> Option<&PeerShard> {
        self.shards.get(id)
    }

    /// The peer hosting node `label`, per the delivery directory.
    pub fn host_of(&self, label: &Key) -> Option<&Key> {
        self.directory.host_of(label)
    }

    /// The peer the mapping rule designates for `label`:
    /// `min {P : P >= label}`, wrapping to the minimum — answered
    /// directly over the ordered shard map, with no peer-set cloning.
    pub fn host_peer(&self, label: &Key) -> Option<&Key> {
        self.shards
            .range::<Key, _>(label..)
            .next()
            .map(|(k, _)| k)
            .or_else(|| self.shards.keys().next())
    }

    /// Ring predecessor of `id` over the current peer set (wrapping).
    fn ring_pred(&self, id: &Key) -> Option<&Key> {
        self.shards
            .range::<Key, _>(..id)
            .next_back()
            .map(|(k, _)| k)
            .or_else(|| self.shards.keys().next_back())
    }

    /// Ring successor of `id` over the current peer set (wrapping).
    fn ring_succ(&self, id: &Key) -> Option<&Key> {
        use std::ops::Bound;
        self.shards
            .range::<Key, _>((Bound::Excluded(id), Bound::Unbounded))
            .next()
            .map(|(k, _)| k)
            .or_else(|| self.shards.keys().next())
    }

    /// Borrow a node's state wherever it is hosted.
    pub fn node(&self, label: &Key) -> Option<&NodeState> {
        let host = self.directory.host_of(label)?;
        self.shards.get(host)?.nodes.get(label)
    }

    /// Label of the current tree root.
    pub fn root(&self) -> Option<&Key> {
        self.root.as_ref()
    }

    /// Depth of every live node (root = 0), via memoized father-link
    /// walks — O(nodes) for the whole map. Feeds the per-depth visit
    /// histogram ([`crate::metrics::DepthHistogram`]) the experiment
    /// harness uses to show where routing load lands in the tree.
    pub fn depth_map(&self) -> BTreeMap<Key, u32> {
        let mut depths: BTreeMap<Key, u32> = BTreeMap::new();
        for shard in self.shards.values() {
            for node in shard.nodes.values() {
                self.depth_into(&node.label, &mut depths);
            }
        }
        depths
    }

    fn depth_into(&self, label: &Key, depths: &mut BTreeMap<Key, u32>) -> u32 {
        if let Some(&d) = depths.get(label) {
            return d;
        }
        let d = match self.node(label).and_then(|n| n.father.as_ref()) {
            None => 0,
            Some(f) => self.depth_into(f, depths) + 1,
        };
        depths.insert(label.clone(), d);
        d
    }

    /// Every registered service key, ascending.
    pub fn registered_keys(&self) -> Vec<Key> {
        let mut out = Vec::new();
        for shard in self.shards.values() {
            for node in shard.nodes.values() {
                out.extend(node.data.iter().cloned());
            }
        }
        out.sort();
        out
    }

    /// A uniformly random node label (the "random node of the tree"
    /// every request and registration enters through). O(1) over the
    /// directory's sorted table — no cache to rebuild.
    pub fn random_node(&mut self) -> Option<Key> {
        if self.directory.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.directory.len());
        Some(self.directory.label_at(i).clone())
    }

    /// Draws a fresh peer identifier not colliding with existing ones.
    pub fn draw_peer_id(&mut self) -> Key {
        loop {
            let id = self
                .config
                .alphabet
                .random_id(&mut self.rng, self.config.peer_id_len);
            if !self.shards.contains_key(&id) {
                return id;
            }
        }
    }

    /// Access to the system RNG (experiments thread all randomness
    /// through the system for reproducibility).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    // ------------------------------------------------------------------
    // Peer membership
    // ------------------------------------------------------------------

    /// Joins a peer under a freshly drawn random identifier.
    pub fn add_peer(&mut self, capacity: u32) -> Result<Key> {
        let id = self.draw_peer_id();
        self.add_peer_with_id(id.clone(), capacity)?;
        Ok(id)
    }

    /// Joins a peer under the given identifier, routing the join
    /// through the tree (Algorithms 1 and 2) when the overlay is
    /// already populated.
    pub fn add_peer_with_id(&mut self, id: Key, capacity: u32) -> Result<()> {
        self.config.alphabet.validate(&id)?;
        if self.shards.contains_key(&id) {
            return Err(DlptError::DuplicatePeer(id.to_string()));
        }
        let mut shard = PeerShard::new(id.clone(), capacity);
        shard.cache.set_capacity(self.config.cache_capacity);
        if self.shards.is_empty() {
            self.shards.insert(id, shard);
            return Ok(());
        }
        self.shards.insert(id.clone(), shard);
        let entry = self.random_node();
        match entry {
            Some(node) => {
                // The normal path: route <PeerJoin, P, 0> through the
                // tree from a random node.
                self.enqueue(Envelope::to_node(
                    node,
                    NodeMsg::PeerJoin {
                        joining: id,
                        phase: crate::messages::JoinPhase::Up,
                    },
                ));
            }
            None => {
                // No tree yet: contact an arbitrary peer and let the
                // ring walk of Algorithm 2 place us.
                let contact = self
                    .shards
                    .keys()
                    .find(|k| **k != id)
                    .cloned()
                    .expect("at least one other peer");
                self.enqueue(Envelope::to_peer(
                    contact,
                    PeerMsg::NewPredecessor { joining: id },
                ));
            }
        }
        self.drain()?;
        self.flush_replication()
    }

    /// Graceful departure: the peer hands its nodes to its successor
    /// and splices itself out (Section 4's churn model).
    pub fn leave_peer(&mut self, id: &Key) -> Result<()> {
        let mut shard = self
            .shards
            .remove(id)
            .ok_or_else(|| DlptError::UnknownPeer(id.to_string()))?;
        if self.shards.is_empty() {
            // Last peer: the overlay disappears with it.
            self.directory.clear();
            self.root = None;
            return Ok(());
        }
        let mut fx = std::mem::take(&mut self.scratch);
        maintenance::leave(&mut shard, &mut fx);
        self.stats.maintenance_messages += fx.out.len() as u64;
        if self.config.replication > 1 {
            // The departing peer's follower copies vanish with it; its
            // hand-off therefore also kicks the affected primaries to
            // re-clone, so a graceful leave never opens a
            // single-failure data-loss window.
            self.touched.extend(shard.replicas.keys().cloned());
        }
        self.apply_effects(&mut fx);
        self.scratch = fx;
        self.drain()?;
        self.flush_replication()
    }

    /// Non-graceful departure: the peer vanishes and the ring heals
    /// around it. Without replication (`k = 1`) every node the peer ran
    /// — and its registered data — is lost. With `k > 1` each lost node
    /// fails over to a surviving follower copy (`protocol::repair`);
    /// only nodes with no live replica are lost. Returns the labels of
    /// the *lost* nodes. Call [`DlptSystem::repair_tree`] afterwards to
    /// re-attach any orphaned subtrees.
    pub fn crash_peer(&mut self, id: &Key) -> Result<Vec<Key>> {
        let shard = self
            .shards
            .remove(id)
            .ok_or_else(|| DlptError::UnknownPeer(id.to_string()))?;
        let hosted: Vec<Key> = shard.nodes.keys().cloned().collect();
        if self.shards.is_empty() {
            // Last peer: the overlay disappears with it.
            self.directory.clear();
            self.root = None;
            self.stats.nodes_lost += hosted.len() as u64;
            if self.config.replication > 1 {
                self.repl_stats.unrecoverable_nodes += hosted.len() as u64;
            }
            return Ok(hosted);
        }
        // Failure-detector stand-in: neighbours notice and heal.
        let (pred, succ) = (shard.peer.pred.clone(), shard.peer.succ.clone());
        if let Some(p) = self.shards.get_mut(&pred) {
            p.peer.succ = if succ == *id {
                pred.clone()
            } else {
                succ.clone()
            };
        }
        if let Some(s) = self.shards.get_mut(&succ) {
            s.peer.pred = if pred == *id {
                succ.clone()
            } else {
                pred.clone()
            };
        }
        // Failover: promote surviving follower copies; lose the rest.
        let mut lost = Vec::new();
        for label in hosted {
            if self.config.replication > 1 && self.promote_label(&label) {
                self.repl_stats.promotions += 1;
            } else {
                self.directory.remove(&label);
                if self.config.replication > 1 {
                    self.repl_stats.unrecoverable_nodes += 1;
                }
                lost.push(label);
            }
        }
        self.stats.nodes_lost += lost.len() as u64;
        if self
            .root
            .as_ref()
            .map(|r| lost.contains(r))
            .unwrap_or(false)
        {
            self.root = None;
        }
        Ok(lost)
    }

    /// Moves a surviving follower copy of `label` onto the peer the
    /// mapping rule now designates (usually the copy's own holder: the
    /// first follower *is* the crashed primary's ring successor).
    /// Returns false when no live copy exists.
    fn promote_label(&mut self, label: &Key) -> bool {
        repair::promote_from_followers(&mut self.shards, &mut self.directory, label)
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Registers a service key, entering the tree at a random node
    /// (Algorithm 3).
    pub fn insert_data(&mut self, key: impl Into<Key>) -> Result<()> {
        let key = key.into();
        match self.random_node() {
            Some(entry) => self.insert_data_at(&entry, key),
            None => self.insert_first(key),
        }
    }

    /// Registers a service key entering at a chosen node.
    pub fn insert_data_at(&mut self, entry: &Key, key: impl Into<Key>) -> Result<()> {
        let key = key.into();
        self.config.alphabet.validate(&key)?;
        if self.shards.is_empty() {
            return Err(DlptError::EmptyRing);
        }
        if !self.directory.contains(entry) {
            return Err(DlptError::UnknownNode(entry.to_string()));
        }
        self.enqueue(Envelope::to_node(
            entry.clone(),
            NodeMsg::DataInsertion { key },
        ));
        self.drain()?;
        self.flush_replication()
    }

    /// First registration: creates the root node directly on the peer
    /// the mapping rule designates (there is no tree to route through
    /// yet).
    fn insert_first(&mut self, key: Key) -> Result<()> {
        self.config.alphabet.validate(&key)?;
        if self.shards.is_empty() {
            return Err(DlptError::EmptyRing);
        }
        let host = self.host_peer(&key).expect("non-empty ring").clone();
        let mut node = NodeState::new(key.clone());
        node.data.insert(key.clone());
        self.shards
            .get_mut(&host)
            .expect("host exists")
            .install(node);
        self.directory.insert(key.clone(), host);
        self.mark_touched(&key);
        self.root = Some(key);
        self.flush_replication()
    }

    /// Deregisters a service key (extension over the paper — see
    /// `protocol::data_removal`). Nodes left redundant dissolve, so
    /// the overlay keeps converging to the sequential oracle of the
    /// remaining keys. No-op if the key is absent.
    pub fn remove_data(&mut self, key: &Key) -> Result<()> {
        if self.shards.is_empty() {
            return Err(DlptError::EmptyRing);
        }
        let Some(entry) = self.random_node() else {
            return Ok(()); // empty tree: nothing registered
        };
        self.enqueue(Envelope::to_node(
            entry,
            NodeMsg::DataRemoval { key: key.clone() },
        ));
        self.drain()?;
        self.flush_replication()?;
        if self.root.is_none() {
            self.recompute_root();
        }
        Ok(())
    }

    /// Issues a discovery request from a random entry node and runs it
    /// to completion.
    pub fn request(&mut self, query: QueryKind) -> Result<LookupOutcome> {
        let entry = self.random_node().ok_or(DlptError::EmptyTree)?;
        self.request_from(&entry, query)
    }

    /// Issues a discovery request from a chosen entry node.
    ///
    /// When caching is on (`cache_capacity > 0`) the entry node's
    /// hosting peer — the overlay's access point for this request —
    /// consults its [`crate::cache::RouteCache`] for the query target
    /// first: a hit whose label is still live at the recorded epoch
    /// skips the whole upward climb and delivers the request straight
    /// to the covering node in `Down` phase; a stale hit is evicted
    /// and the request falls back to the normal up/down route, so
    /// results never depend on cache freshness. Satisfied exact
    /// queries teach the entry peer a fresh shortcut on the way out.
    pub fn request_from(&mut self, entry: &Key, query: QueryKind) -> Result<LookupOutcome> {
        if !self.directory.contains(entry) {
            return Err(DlptError::UnknownNode(entry.to_string()));
        }
        let id = self.next_request;
        self.next_request += 1;
        self.gathers.insert(
            id,
            GatherAgg {
                outstanding: 1,
                satisfied: true,
                dropped: false,
                results: Vec::new(),
                best_path: Vec::new(),
                responses: 0,
            },
        );
        let caching = self.config.cache_capacity > 0;
        // (target, entry host) to teach after a satisfied exact query.
        let mut learn: Option<(Key, Key)> = None;
        let mut shortcut: Option<Shortcut> = None;
        if caching {
            let target = query.target();
            let host = self
                .directory
                .host_of(entry)
                .cloned()
                .expect("entry checked live above");
            if let Some(s) = self.shards.get_mut(&host) {
                shortcut = cache::consult(
                    &mut s.cache,
                    &self.directory,
                    &target,
                    &mut self.cache_stats,
                );
            }
            if shortcut.is_none() && matches!(query, QueryKind::Exact(_)) {
                learn = Some((target, host));
            }
        }
        let env = match shortcut {
            Some(sc) => cache::shortcut_envelope(id, query, sc),
            None => discovery::entry_envelope(entry.clone(), id, query),
        };
        self.enqueue(env);
        self.drain()?;
        let out = self
            .finished
            .remove(&id)
            .ok_or(DlptError::Undeliverable(format!("request {id}")))?;
        if let Some((target, host)) = learn {
            if out.satisfied {
                // A satisfied exact query proves the target's own node
                // is live and owns the key: that node is the shortcut.
                if let Some(sc) = cache::learned_shortcut(&self.directory, &target) {
                    if let Some(s) = self.shards.get_mut(&host) {
                        s.cache.insert(target, sc);
                        self.cache_stats.learned += 1;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Exact lookup of one key.
    pub fn lookup(&mut self, key: &Key) -> LookupOutcome {
        self.request(QueryKind::Exact(key.clone()))
            .unwrap_or_else(|_| empty_outcome())
    }

    /// Range query over `[lo, hi]`.
    pub fn range(&mut self, lo: &Key, hi: &Key) -> LookupOutcome {
        self.request(QueryKind::Range(lo.clone(), hi.clone()))
            .unwrap_or_else(|_| empty_outcome())
    }

    /// Automatic completion of a partial search string.
    pub fn complete(&mut self, prefix: &Key) -> LookupOutcome {
        self.request(QueryKind::Complete(prefix.clone()))
            .unwrap_or_else(|_| empty_outcome())
    }

    /// Closes the current time unit: every peer's capacity counter
    /// resets and every node's offered load is archived for the
    /// balancers (Section 3.3's "recent history").
    pub fn end_time_unit(&mut self) {
        for shard in self.shards.values_mut() {
            shard.peer.roll_unit();
            for node in shard.nodes.values_mut() {
                node.roll_unit();
            }
        }
    }

    // ------------------------------------------------------------------
    // Load-balancing support (used by `crate::balance`)
    // ------------------------------------------------------------------

    /// Moves one node to another peer, updating the directory. Used by
    /// the balancers; counted as balance traffic.
    pub fn migrate_node(&mut self, label: &Key, to: &Key) -> Result<()> {
        let from = self
            .directory
            .host_of(label)
            .cloned()
            .ok_or_else(|| DlptError::UnknownNode(label.to_string()))?;
        if &from == to {
            return Ok(());
        }
        if !self.shards.contains_key(to) {
            return Err(DlptError::UnknownPeer(to.to_string()));
        }
        let node = self
            .shards
            .get_mut(&from)
            .expect("directory points at live peers")
            .evict(label)
            .expect("directory is consistent");
        self.shards.get_mut(to).expect("checked").install(node);
        self.directory.insert(label.clone(), to.clone());
        self.mark_touched(label);
        self.stats.balance_migrations += 1;
        // A migration stales every shortcut pointing at the old host;
        // the balancers migrate rarely, so eager invalidation is cheap.
        self.queue_invalidations(label);
        self.drain()?;
        self.flush_replication()
    }

    /// Changes a peer's identifier in place (the MLT boundary move:
    /// "finding the best distribution is equivalent to find the best
    /// position of P moving along the ring"). Ring links of both
    /// neighbours and the directory entries of hosted nodes follow.
    pub fn rename_peer(&mut self, old: &Key, new: Key) -> Result<()> {
        if old == &new {
            return Ok(());
        }
        self.config.alphabet.validate(&new)?;
        if self.shards.contains_key(&new) {
            return Err(DlptError::DuplicatePeer(new.to_string()));
        }
        let mut shard = self
            .shards
            .remove(old)
            .ok_or_else(|| DlptError::UnknownPeer(old.to_string()))?;
        let (pred, succ) = (shard.peer.pred.clone(), shard.peer.succ.clone());
        shard.peer.id = new.clone();
        if pred == *old {
            shard.peer.pred = new.clone();
        }
        if succ == *old {
            shard.peer.succ = new.clone();
        }
        for label in shard.nodes.keys() {
            self.directory.insert(label.clone(), new.clone());
        }
        if self.config.replication > 1 {
            self.touched.extend(shard.nodes.keys().cloned());
        }
        self.shards.insert(new.clone(), shard);
        if let Some(p) = self.shards.get_mut(&pred) {
            if p.peer.succ == *old {
                p.peer.succ = new.clone();
            }
        }
        if let Some(s) = self.shards.get_mut(&succ) {
            if s.peer.pred == *old {
                s.peer.pred = new.clone();
            }
        }
        self.stats.peer_renames += 1;
        self.flush_replication()
    }

    // ------------------------------------------------------------------
    // Validation against the paper's invariants
    // ------------------------------------------------------------------

    /// Verifies `host(n) = min {P : P >= n}` for every node.
    pub fn check_mapping(&self) -> std::result::Result<(), MappingViolation> {
        for (label, actual) in self.directory.iter() {
            let expected = self.host_peer(label).expect("ring non-empty");
            if actual != expected {
                return Err(MappingViolation::WrongHost {
                    node: label.clone(),
                    actual: actual.clone(),
                    expected: expected.clone(),
                });
            }
        }
        Ok(())
    }

    /// Verifies that every peer's pred/succ links agree with the ring
    /// order of identifiers.
    pub fn check_ring(&self) -> std::result::Result<(), MappingViolation> {
        for (id, shard) in &self.shards {
            let want_pred = self.ring_pred(id).expect("non-empty");
            let want_succ = self.ring_succ(id).expect("non-empty");
            if &shard.peer.pred != want_pred {
                return Err(MappingViolation::BrokenRingLink {
                    peer: id.clone(),
                    detail: format!("pred is {}, ring order says {}", shard.peer.pred, want_pred),
                });
            }
            if &shard.peer.succ != want_succ {
                return Err(MappingViolation::BrokenRingLink {
                    peer: id.clone(),
                    detail: format!("succ is {}, ring order says {}", shard.peer.succ, want_succ),
                });
            }
        }
        Ok(())
    }

    /// Verifies Definition 1 over the distributed tree: bidirectional
    /// father/child links and pairwise-GCP labels.
    pub fn check_tree(&self) -> std::result::Result<(), TrieViolation> {
        for shard in self.shards.values() {
            for node in shard.nodes.values() {
                for d in &node.data {
                    if d != &node.label {
                        return Err(TrieViolation::DataLabelMismatch {
                            node: node.label.clone(),
                            data: d.clone(),
                        });
                    }
                }
                if let Some(f) = &node.father {
                    let father = self
                        .node(f)
                        .ok_or_else(|| TrieViolation::BrokenParentLink {
                            node: node.label.clone(),
                        })?;
                    if !father.children.contains(&node.label) {
                        return Err(TrieViolation::BrokenParentLink {
                            node: node.label.clone(),
                        });
                    }
                }
                let children: Vec<&Key> = node.children.iter().collect();
                for c in &children {
                    let child = self
                        .node(c)
                        .ok_or_else(|| TrieViolation::BrokenParentLink { node: (*c).clone() })?;
                    if child.father.as_ref() != Some(&node.label) {
                        return Err(TrieViolation::BrokenParentLink { node: (*c).clone() });
                    }
                    if !node.label.is_proper_prefix_of(c) {
                        return Err(TrieViolation::ChildNotExtension {
                            parent: node.label.clone(),
                            child: (*c).clone(),
                        });
                    }
                }
                for (i, a) in children.iter().enumerate() {
                    for b in &children[i + 1..] {
                        if a.gcp_len(b) != node.label.len() {
                            return Err(TrieViolation::PairGcpMismatch {
                                parent: node.label.clone(),
                                a: (*a).clone(),
                                b: (*b).clone(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Builds the sequential oracle for the currently registered keys.
    /// A correct overlay has exactly the oracle's node labels.
    pub fn oracle(&self) -> PgcpTrie {
        let mut t = PgcpTrie::new();
        for k in self.registered_keys() {
            t.insert(k);
        }
        t
    }

    // ------------------------------------------------------------------
    // Crash repair (extension over the paper)
    // ------------------------------------------------------------------

    /// Re-attaches subtrees orphaned by crashes and prunes dangling
    /// links. System-level surgery standing in for the re-registration
    /// traffic a deployment would see; see DESIGN.md.
    pub fn repair_tree(&mut self) -> RepairReport {
        let mut report = RepairReport::default();
        let replicated = self.config.replication > 1;
        // 1. Prune children pointers to dead nodes.
        let live: std::collections::BTreeSet<Key> = self.directory.labels().cloned().collect();
        for shard in self.shards.values_mut() {
            for node in shard.nodes.values_mut() {
                let before = node.children.len();
                node.children.retain(|c| live.contains(c));
                if node.children.len() < before && replicated {
                    self.touched.push(node.label.clone());
                }
                report.pruned_links += before - node.children.len();
            }
        }
        // 2. Find orphans: nodes whose father is dead, plus a missing
        //    root.
        let mut orphans: Vec<Key> = Vec::new();
        let mut root: Option<Key> = None;
        for shard in self.shards.values() {
            for node in shard.nodes.values() {
                match &node.father {
                    None => root = Some(node.label.clone()),
                    Some(f) if !live.contains(f) => orphans.push(node.label.clone()),
                    Some(_) => {}
                }
            }
        }
        orphans.sort(); // lexicographic = ancestors first
        for o in orphans {
            match &root {
                None => {
                    self.set_father(&o, None);
                    root = Some(o);
                    report.reattached += 1;
                }
                Some(r) => {
                    let r = r.clone();
                    let created = self.reattach(&r, &o, &mut root);
                    report.created_nodes += created;
                    report.reattached += 1;
                }
            }
        }
        self.root = root;
        self.stats.nodes_reattached += report.reattached as u64;
        report
    }

    fn set_father(&mut self, label: &Key, father: Option<Key>) {
        let host = self.directory.host_of(label).expect("live node").clone();
        let node = self
            .shards
            .get_mut(&host)
            .expect("live")
            .nodes
            .get_mut(label)
            .expect("live");
        node.father = father;
        self.mark_touched(label);
    }

    fn add_child(&mut self, parent: &Key, child: Key) {
        let host = self.directory.host_of(parent).expect("live node").clone();
        let node = self
            .shards
            .get_mut(&host)
            .expect("live")
            .nodes
            .get_mut(parent)
            .expect("live");
        node.children.insert(child);
        self.mark_touched(parent);
    }

    fn replace_child_of(&mut self, parent: &Key, old: &Key, new: Key) {
        let host = self.directory.host_of(parent).expect("live node").clone();
        let node = self
            .shards
            .get_mut(&host)
            .expect("live")
            .nodes
            .get_mut(parent)
            .expect("live");
        node.replace_child(old, new);
        self.mark_touched(parent);
    }

    /// Creates a structural node directly on its mapped host (repair
    /// path only).
    fn create_structural(&mut self, label: Key, father: Option<Key>, children: Vec<Key>) {
        let host = self.host_peer(&label).expect("non-empty ring").clone();
        let mut node = NodeState::new(label.clone());
        node.father = father;
        node.children = children.into_iter().collect();
        self.shards.get_mut(&host).expect("live").install(node);
        self.mark_touched(&label);
        self.directory.insert(label, host);
    }

    /// Walks from `root` and links the orphan `o` (whose own subtree is
    /// intact) back into the tree, mirroring the four insertion cases.
    /// Returns how many structural nodes were created.
    fn reattach(&mut self, root: &Key, o: &Key, root_slot: &mut Option<Key>) -> usize {
        let mut cur = root.clone();
        loop {
            let node = self.node(&cur).expect("walk stays on live nodes");
            let label = node.label.clone();
            if &label == o {
                // The orphan *is* this label — can't happen (labels are
                // unique and o is unattached); treat as attached.
                return 0;
            }
            if label.is_proper_prefix_of(o) {
                match node.child_extending(o).cloned() {
                    Some(q) if q.is_proper_prefix_of(o) => {
                        cur = q;
                    }
                    Some(q) if o.is_proper_prefix_of(&q) => {
                        // o slots between label and q.
                        self.replace_child_of(&label, &q, o.clone());
                        self.set_father(&q, Some(o.clone()));
                        self.add_child(o, q);
                        self.set_father(o, Some(label));
                        return 0;
                    }
                    Some(q) => {
                        // Sibling split under a new structural node.
                        let g = q.gcp(o);
                        self.replace_child_of(&label, &q, g.clone());
                        self.set_father(&q, Some(g.clone()));
                        self.set_father(o, Some(g.clone()));
                        self.create_structural(g.clone(), Some(label), vec![q, o.clone()]);
                        return 1;
                    }
                    None => {
                        self.add_child(&label, o.clone());
                        self.set_father(o, Some(label));
                        return 0;
                    }
                }
            } else if o.is_proper_prefix_of(&label) {
                // Only at the root: o becomes the new root above it.
                self.set_father(&label, Some(o.clone()));
                self.add_child(o, label);
                self.set_father(o, None);
                *root_slot = Some(o.clone());
                return 0;
            } else {
                // Divergent at the root: new structural root.
                let g = label.gcp(o);
                self.set_father(&label, Some(g.clone()));
                self.set_father(o, Some(g.clone()));
                self.create_structural(g.clone(), None, vec![label, o.clone()]);
                *root_slot = Some(g);
                return 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // The pump
    // ------------------------------------------------------------------

    fn enqueue(&mut self, env: Envelope) {
        self.queue.push_back((0, env));
    }

    /// Applies (and drains) the effect buffers, leaving `fx` empty with
    /// its capacity intact so callers can reuse it allocation-free.
    fn apply_effects(&mut self, fx: &mut Effects) {
        let replicated = self.config.replication > 1;
        for (label, host) in fx.relocated.drain(..) {
            if replicated {
                self.touched.push(label.clone());
            }
            self.directory.insert(label, host);
        }
        for label in fx.removed.drain(..) {
            if replicated {
                // The node dissolved: schedule its copies for GC.
                let followers: Vec<Key> = self.directory.followers_of(&label).cloned().collect();
                for f in followers {
                    self.dropped_replicas.push((label.clone(), f));
                }
            }
            self.directory.remove(&label);
            // Dissolution is the cheap eager-invalidation case: every
            // shortcut through the dead label is now a guaranteed
            // stale hit, so broadcasting beats paying the fallback.
            self.queue_invalidations(&label);
            if self.root.as_ref() == Some(&label) {
                self.root = None; // recomputed after the drain
            }
        }
        for env in fx.out.drain(..) {
            self.enqueue(env);
        }
    }

    /// Records that `label`'s state changed and its replicas are stale
    /// (no-op at `k = 1`).
    fn mark_touched(&mut self, label: &Key) {
        if self.config.replication > 1 {
            self.touched.push(label.clone());
        }
    }

    /// Broadcasts [`PeerMsg::InvalidateCached`] for `label` to every
    /// live peer (no-op with caching off). Called where eager
    /// invalidation is cheap — dissolutions and migrations — while the
    /// per-hit epoch check covers everything else lazily.
    fn queue_invalidations(&mut self, label: &Key) {
        if self.config.cache_capacity == 0 {
            return;
        }
        let epoch = self.directory.epoch_of(label);
        let peers: Vec<Key> = self.shards.keys().cloned().collect();
        for p in peers {
            self.enqueue(Envelope::to_peer(
                p,
                PeerMsg::InvalidateCached {
                    label: label.clone(),
                    epoch,
                },
            ));
            self.cache_stats.invalidations_sent += 1;
        }
    }

    // ------------------------------------------------------------------
    // Replication (extension over the paper — see `protocol::repair`)
    // ------------------------------------------------------------------

    /// Eager replica maintenance: re-clones every node touched since
    /// the last flush onto its `k - 1` ring successors and
    /// garbage-collects copies of dissolved nodes. Public mutating
    /// operations call this after their drain, so replica state tracks
    /// the data plane without waiting for the next anti-entropy pass.
    /// No-op at `k = 1`.
    fn flush_replication(&mut self) -> Result<()> {
        if self.config.replication <= 1
            || (self.touched.is_empty() && self.dropped_replicas.is_empty())
        {
            return Ok(());
        }
        let k = self.config.replication;
        for (label, follower) in std::mem::take(&mut self.dropped_replicas) {
            if self.shards.contains_key(&follower) {
                self.enqueue(Envelope::to_peer(follower, PeerMsg::DropReplica { label }));
            }
        }
        let mut touched = std::mem::take(&mut self.touched);
        touched.sort();
        touched.dedup();
        let peers: Vec<Key> = self.shards.keys().cloned().collect();
        for label in &touched {
            let Some(primary) = self.directory.host_of(label).cloned() else {
                continue; // dissolved during the same drain
            };
            let targets = repair::successors_of(&peers, &primary, k - 1);
            let stale: Vec<Key> = self
                .directory
                .followers_of(label)
                .filter(|f| !targets.contains(f))
                .cloned()
                .collect();
            for f in stale {
                if self.shards.contains_key(&f) {
                    self.enqueue(Envelope::to_peer(
                        f,
                        PeerMsg::DropReplica {
                            label: label.clone(),
                        },
                    ));
                }
            }
            self.directory.set_followers(label, &targets);
            if targets.is_empty() {
                continue;
            }
            let env = {
                let Some(shard) = self.shards.get(&primary) else {
                    continue;
                };
                let Some(node) = shard.nodes.get(label) else {
                    continue; // relocation still in flight
                };
                Envelope::to_peer(
                    shard.peer.succ.clone(),
                    PeerMsg::Replicate {
                        primary: primary.clone(),
                        ttl: (k - 1) as u32,
                        seed: NodeSeed::of(node),
                    },
                )
            };
            self.enqueue(env);
            self.repl_stats.eager_syncs += 1;
        }
        touched.clear();
        self.touched = touched; // hand the capacity back
        self.drain()
    }

    /// One self-healing anti-entropy pass (`protocol::repair`): counts
    /// nodes whose live follower set is short of `min(k - 1, |P| - 1)`,
    /// garbage-collects stale copies, refreshes the follower
    /// bookkeeping, then kicks every peer with `SyncReplicas` so each
    /// re-clones its nodes along the ring. Run once per time unit to
    /// converge the overlay back to the replication invariant after
    /// crashes and leaves. No-op at `k = 1`.
    pub fn anti_entropy(&mut self) -> Result<AntiEntropyReport> {
        let k = self.config.replication;
        let mut report = AntiEntropyReport::default();
        if k <= 1 || self.shards.len() <= 1 {
            return Ok(report);
        }
        self.repl_stats.anti_entropy_passes += 1;
        let peers: Vec<Key> = self.shards.keys().cloned().collect();
        let want = (k - 1).min(peers.len() - 1);
        // Re-plan the follower sets over the current ring, then count
        // the labels whose *planned* followers are missing a live copy
        // — this catches crashed followers and placement displaced by
        // joins alike.
        repair::refresh_follower_records(&mut self.directory, &peers, k);
        for (label, _) in self.directory.iter() {
            let live_copies = self
                .directory
                .followers_of(label)
                .filter(|f| {
                    self.shards
                        .get(*f)
                        .map(|s| s.replicas.contains_key(label))
                        .unwrap_or(false)
                })
                .count();
            if live_copies < want {
                report.under_replicated += 1;
            }
        }
        // GC copies whose label died or whose holder left the set.
        let mut drops: Vec<(Key, Key)> = Vec::new();
        for (pid, shard) in &self.shards {
            for rl in shard.replicas.keys() {
                let keep = self.directory.contains(rl)
                    && self.directory.followers_of(rl).any(|f| f == pid);
                if !keep {
                    drops.push((pid.clone(), rl.clone()));
                }
            }
        }
        report.replicas_dropped = drops.len();
        // Converged pass: in this runtime the eager flush keeps copy
        // *content* fresh, so when every label has its full live
        // follower set and nothing needs GC the blanket re-clone would
        // be pure steady-state traffic — skip it. (The async runtimes
        // have no eager path and always re-clone.)
        if report.under_replicated == 0 && drops.is_empty() {
            return Ok(report);
        }
        for (pid, label) in drops {
            self.enqueue(Envelope::to_peer(pid, PeerMsg::DropReplica { label }));
        }
        for p in &peers {
            self.enqueue(Envelope::to_peer(
                p.clone(),
                PeerMsg::SyncReplicas { k: k as u32 },
            ));
        }
        let before = self.repl_stats.replication_messages;
        self.drain()?;
        report.messages_sent = (self.repl_stats.replication_messages - before) as usize;
        Ok(report)
    }

    /// Serves a capacity-refused discovery visit from a live follower
    /// copy, charging the follower's capacity instead. Returns the
    /// message when no follower can serve it (the caller then counts
    /// the drop as before).
    fn failover_read(
        &mut self,
        label: &Key,
        msg: DiscoveryMsg,
        fx: &mut Effects,
    ) -> Option<DiscoveryMsg> {
        let followers: Vec<Key> = self.directory.followers_of(label).cloned().collect();
        for f in followers {
            let Some(shard) = self.shards.get_mut(&f) else {
                continue;
            };
            if !shard.replicas.contains_key(label) || !shard.peer.try_accept() {
                continue;
            }
            let node = shard.replicas.get_mut(label).expect("checked");
            node.load += 1;
            discovery::on_discovery_at(node, msg, fx);
            self.repl_stats.failover_reads += 1;
            return None;
        }
        Some(msg)
    }

    /// The distinct live peers currently holding a copy of `label`
    /// (primary first, then followers in ring order). Empty when the
    /// label is not a live node.
    pub fn replica_hosts(&self, label: &Key) -> Vec<Key> {
        repair::live_replica_hosts(&self.shards, &self.directory, label)
    }

    /// Verifies the replication invariant: every live node has
    /// `min(k, |P|)` distinct live replica hosts. Trivially true at
    /// `k = 1` (the mapping invariant covers the single copy).
    pub fn check_replication(&self) -> std::result::Result<(), String> {
        let k = self.config.replication;
        if k <= 1 {
            return Ok(());
        }
        let want = k.min(self.shards.len());
        for (label, _) in self.directory.iter() {
            let hosts = self.replica_hosts(label);
            if hosts.len() < want {
                return Err(format!(
                    "node {label} has {} live replica hosts {:?}, invariant demands {want}",
                    hosts.len(),
                    hosts
                ));
            }
        }
        Ok(())
    }

    fn recompute_root(&mut self) {
        self.root = self
            .shards
            .values()
            .flat_map(|s| s.nodes.values())
            .find(|n| n.father.is_none())
            .map(|n| n.label.clone());
    }

    /// Processes the queue to quiescence.
    fn drain(&mut self) -> Result<()> {
        let debug = self.debug_drain;
        let mut trace: VecDeque<String> = VecDeque::new();
        let mut steps = 0usize;
        while let Some((requeues, env)) = self.queue.pop_front() {
            steps += 1;
            if steps > self.config.drain_budget {
                if debug {
                    eprintln!("drain budget exhausted; trace of last dispatches:");
                    for line in &trace {
                        eprintln!("  {line}");
                    }
                    eprintln!("current: {env:?}");
                    if let Address::Node(l) = &env.to {
                        if let Some(n) = self.node(l) {
                            eprintln!("node state: {n:?}");
                            if let Some(f) = &n.father {
                                eprintln!("father state: {:?}", self.node(f));
                            }
                        }
                    }
                }
                return Err(DlptError::HopBudgetExhausted {
                    budget: self.config.drain_budget,
                });
            }
            if debug {
                trace.push_back(format!("{env:?}"));
                if trace.len() > 30 {
                    trace.pop_front();
                }
            }
            self.dispatch(requeues, env)?;
        }
        Ok(())
    }

    fn requeue(&mut self, requeues: u32, env: Envelope) -> Result<()> {
        if requeues >= self.config.requeue_budget {
            self.stats.undeliverable += 1;
            // A lost discovery message must still resolve its request.
            if let Message::Node(NodeMsg::Discovery(m)) = &env.msg {
                self.client_response(DiscoveryOutcome {
                    request_id: m.request_id,
                    satisfied: false,
                    dropped: true,
                    results: Vec::new(),
                    path: m.path.clone(),
                    pending_children: 0,
                });
                return Ok(());
            }
            return Err(DlptError::Undeliverable(format!("{:?}", env.to)));
        }
        self.stats.requeues += 1;
        self.queue.push_back((requeues + 1, env));
        Ok(())
    }

    fn count_message(&mut self, msg: &Message) {
        count_message(&mut self.stats, msg)
    }

    fn dispatch(&mut self, requeues: u32, env: Envelope) -> Result<()> {
        // Destructure: addresses are matched by move, so the hot path
        // clones no `Address` (a requeue rebuilds the envelope from the
        // owned parts).
        let Envelope { to, msg } = env;
        match to {
            Address::Client(_) => {
                if let Message::ClientResponse(outcome) = msg {
                    self.client_response(outcome);
                    Ok(())
                } else {
                    Err(DlptError::Undeliverable("client".into()))
                }
            }
            Address::Peer(id) => {
                if !self.shards.contains_key(&id) {
                    return self.requeue(requeues, Envelope::to_address(Address::Peer(id), msg));
                }
                // Replication and cache traffic are counted apart so
                // the k = 1 / cache-off system's stats stay
                // byte-identical.
                if is_replication_msg(&msg) {
                    self.repl_stats.replication_messages += 1;
                } else if is_cache_msg(&msg) {
                    self.cache_stats.invalidations_delivered += 1;
                } else {
                    self.count_message(&msg);
                }
                // Track a freshly created root before the seed moves.
                let new_root = match &msg {
                    Message::Peer(PeerMsg::Host { seed }) if seed.father.is_none() => {
                        Some(seed.label.clone())
                    }
                    _ => None,
                };
                let mut fx = std::mem::take(&mut self.scratch);
                let shard = self.shards.get_mut(&id).expect("checked");
                match msg {
                    Message::Peer(m) => protocol::handle_peer_msg(shard, m, &mut fx),
                    _ => return Err(DlptError::Undeliverable(format!("{id}"))),
                }
                if let Some(label) = new_root {
                    if fx.relocated.iter().any(|(l, _)| l == &label) {
                        self.root = Some(label);
                    }
                }
                self.apply_effects(&mut fx);
                self.scratch = fx;
                Ok(())
            }
            Address::Node(label) => {
                let Some(host) = self.directory.host_of(&label).cloned() else {
                    return self.requeue(requeues, Envelope::to_address(Address::Node(label), msg));
                };
                // One shard probe serves the whole delivery: the
                // existence check, the capacity charge and the handler
                // run under a single borrow; requeues and capacity
                // drops exit with the message intact.
                enum Gate {
                    Delivered,
                    /// Delivered a node message that may have mutated
                    /// the node's state (replicas must refresh).
                    DeliveredMutation,
                    Requeue(Message),
                    Dropped(DiscoveryMsg),
                }
                let mut fx = std::mem::take(&mut self.scratch);
                let stats = &mut self.stats;
                let gate = match self.shards.get_mut(&host) {
                    None => Gate::Requeue(msg),
                    Some(shard) => match msg {
                        // Capacity model (Section 4): a peer's capacity
                        // bounds the requests it can process per unit,
                        // and processing includes routing — "the upper
                        // a node is, the more times it will be visited
                        // by a request" is exactly what makes load
                        // balancing matter (Section 3.3) — so every
                        // visit charges the hosting peer one unit and
                        // counts toward the node's offered load l_n.
                        Message::Node(NodeMsg::Discovery(m)) => {
                            match discovery::charge_visit(shard, &label) {
                                // In flight between shards (hand-off
                                // under way): try again later.
                                discovery::ChargeOutcome::Missing => {
                                    Gate::Requeue(Message::Node(NodeMsg::Discovery(m)))
                                }
                                discovery::ChargeOutcome::Accepted => {
                                    stats.discovery_messages += 1;
                                    discovery::on_discovery(shard, &label, m, &mut fx);
                                    Gate::Delivered
                                }
                                discovery::ChargeOutcome::Dropped => Gate::Dropped(m),
                            }
                        }
                        Message::Node(m) => {
                            if shard.nodes.contains_key(&label) {
                                count_node_msg(stats, &m);
                                protocol::handle_node_msg(shard, &label, m, &mut fx);
                                Gate::DeliveredMutation
                            } else {
                                Gate::Requeue(Message::Node(m))
                            }
                        }
                        other => {
                            self.scratch = fx;
                            return Err(DlptError::Undeliverable(format!("{label}: {other:?}")));
                        }
                    },
                };
                match gate {
                    Gate::Requeue(msg) => {
                        self.scratch = fx;
                        self.requeue(requeues, Envelope::to_address(Address::Node(label), msg))
                    }
                    Gate::Dropped(m) => {
                        // Failover: a follower copy with spare capacity
                        // can serve the read the primary refused.
                        let m = if self.config.replication > 1 {
                            match self.failover_read(&label, m, &mut fx) {
                                None => {
                                    self.apply_effects(&mut fx);
                                    self.scratch = fx;
                                    return Ok(());
                                }
                                Some(m) => m,
                            }
                        } else {
                            m
                        };
                        self.scratch = fx;
                        self.stats.discovery_drops += 1;
                        let mut path = m.path;
                        path.push(label);
                        self.client_response(DiscoveryOutcome {
                            request_id: m.request_id,
                            satisfied: false,
                            dropped: true,
                            results: Vec::new(),
                            path,
                            pending_children: 0,
                        });
                        Ok(())
                    }
                    Gate::Delivered => {
                        self.apply_effects(&mut fx);
                        self.scratch = fx;
                        Ok(())
                    }
                    Gate::DeliveredMutation => {
                        self.mark_touched(&label);
                        // Any non-discovery node message may have
                        // mutated the node's structure: advance its
                        // epoch so learned shortcuts re-validate.
                        self.directory.bump_epoch(&label);
                        self.apply_effects(&mut fx);
                        self.scratch = fx;
                        Ok(())
                    }
                }
            }
        }
    }

    fn client_response(&mut self, outcome: DiscoveryOutcome) {
        let Some(agg) = self.gathers.get_mut(&outcome.request_id) else {
            return; // stale response after request already finalized
        };
        agg.outstanding += outcome.pending_children as i64 - 1;
        agg.satisfied &= outcome.satisfied;
        agg.dropped |= outcome.dropped;
        agg.responses += 1;
        agg.results.extend(outcome.results);
        if outcome.path.len() > agg.best_path.len() {
            agg.best_path = outcome.path;
        }
        if agg.outstanding <= 0 {
            let agg = self
                .gathers
                .remove(&outcome.request_id)
                .expect("present above");
            let mut results = agg.results;
            results.sort();
            results.dedup();
            let mut host_path: Vec<Key> = Vec::with_capacity(agg.best_path.len());
            host_path.extend(
                agg.best_path
                    .iter()
                    .filter_map(|l| self.directory.host_of(l).cloned()),
            );
            let found = !results.is_empty() || (agg.satisfied && !agg.dropped);
            self.finished.insert(
                outcome.request_id,
                LookupOutcome {
                    satisfied: agg.satisfied && !agg.dropped,
                    found,
                    dropped: agg.dropped,
                    results,
                    gather_visits: agg.responses.saturating_sub(1),
                    host_path,
                    path: agg.best_path,
                },
            );
        }
    }
}

/// Per-kind delivery counters. Free functions over the stats struct
/// alone, so the dispatch hot path can update counters while a shard
/// borrow is live.
fn count_node_msg(stats: &mut SystemStats, m: &NodeMsg) {
    match m {
        NodeMsg::PeerJoin { .. } => stats.join_messages += 1,
        NodeMsg::DataInsertion { .. }
        | NodeMsg::UpdateChild { .. }
        | NodeMsg::DataRemoval { .. }
        | NodeMsg::RemoveChild { .. }
        | NodeMsg::SetFather { .. } => stats.insert_messages += 1,
        NodeMsg::SearchingHost { .. } => stats.host_messages += 1,
        NodeMsg::Discovery(_) => stats.discovery_messages += 1,
    }
}

fn count_message(stats: &mut SystemStats, msg: &Message) {
    match msg {
        Message::Node(m) => count_node_msg(stats, m),
        Message::Peer(PeerMsg::Host { .. }) => stats.host_messages += 1,
        Message::Peer(PeerMsg::TakeOver { .. }) => stats.maintenance_messages += 1,
        Message::Peer(_) => stats.join_messages += 1,
        Message::ClientResponse(_) => {}
    }
}

/// Replication traffic (`protocol::repair`) — counted in
/// [`ReplicationStats`], never in [`SystemStats`].
fn is_replication_msg(msg: &Message) -> bool {
    matches!(
        msg,
        Message::Peer(
            PeerMsg::SyncReplicas { .. }
                | PeerMsg::Replicate { .. }
                | PeerMsg::DropReplica { .. }
                | PeerMsg::PromoteReplica { .. }
        )
    )
}

/// Cache traffic (`crate::cache`) — counted in [`CacheStats`], never
/// in [`SystemStats`].
fn is_cache_msg(msg: &Message) -> bool {
    matches!(msg, Message::Peer(PeerMsg::InvalidateCached { .. }))
}

fn empty_outcome() -> LookupOutcome {
    LookupOutcome {
        satisfied: false,
        found: false,
        dropped: false,
        results: Vec::new(),
        path: Vec::new(),
        host_path: Vec::new(),
        gather_visits: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn small_system(peers: usize) -> DlptSystem {
        DlptSystem::builder()
            .seed(42)
            .peer_id_len(8)
            .bootstrap_peers(peers)
            .build()
    }

    const PAPER_KEYS: [&str; 4] = ["01", "10101", "10111", "101111"];

    fn binary_system(peers: usize, seed: u64) -> DlptSystem {
        let mut sys = DlptSystem::builder()
            .alphabet(Alphabet::binary())
            .seed(seed)
            .peer_id_len(10)
            .bootstrap_peers(peers)
            .build();
        for s in PAPER_KEYS {
            sys.insert_data(k(s)).unwrap();
        }
        sys
    }

    #[test]
    fn bootstrap_builds_consistent_ring() {
        let sys = small_system(10);
        assert_eq!(sys.peer_count(), 10);
        sys.check_ring().unwrap();
    }

    #[test]
    fn paper_tree_matches_oracle() {
        let sys = binary_system(4, 7);
        let oracle = sys.oracle();
        assert_eq!(sys.node_labels(), oracle.labels());
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
    }

    #[test]
    fn insertion_is_order_invariant_across_entries() {
        // Same keys, different seeds (=> different entry nodes) must
        // converge to the same tree.
        let reference = binary_system(4, 1).node_labels();
        for seed in 2..10 {
            let sys = binary_system(4, seed);
            assert_eq!(sys.node_labels(), reference, "seed {seed}");
            sys.check_tree().unwrap();
            sys.check_mapping().unwrap();
        }
    }

    #[test]
    fn lookup_finds_registered_keys() {
        let mut sys = binary_system(4, 7);
        for s in PAPER_KEYS {
            let out = sys.lookup(&k(s));
            assert!(out.satisfied, "{s}");
            assert_eq!(out.results, vec![k(s)]);
            assert!(out.logical_hops() < 12);
        }
        let out = sys.lookup(&k("11"));
        assert!(!out.satisfied);
        assert!(out.results.is_empty());
    }

    #[test]
    fn range_and_completion_work_end_to_end() {
        let mut sys = binary_system(4, 7);
        let out = sys.range(&k("10"), &k("10111"));
        assert!(out.satisfied);
        assert_eq!(out.results, vec![k("10101"), k("10111")]);
        let out = sys.complete(&k("101"));
        assert!(out.satisfied);
        assert_eq!(out.results, vec![k("10101"), k("10111"), k("101111")]);
    }

    #[test]
    fn peers_join_after_data_exists() {
        let mut sys = binary_system(3, 7);
        for _ in 0..5 {
            sys.add_peer(100).unwrap();
        }
        sys.check_ring().unwrap();
        sys.check_mapping().unwrap();
        sys.check_tree().unwrap();
        assert_eq!(sys.peer_count(), 8);
    }

    #[test]
    fn graceful_leave_preserves_everything() {
        let mut sys = binary_system(6, 7);
        let victims: Vec<Key> = sys.peer_ids().into_iter().take(3).collect();
        for v in victims {
            sys.leave_peer(&v).unwrap();
            sys.check_ring().unwrap();
            sys.check_mapping().unwrap();
            sys.check_tree().unwrap();
        }
        assert_eq!(sys.peer_count(), 3);
        let mut sys2 = sys;
        for s in PAPER_KEYS {
            assert!(sys2.lookup(&k(s)).satisfied, "{s}");
        }
    }

    #[test]
    fn reinserting_every_key_from_random_entries_is_idempotent() {
        // Regression for the father == key corruption: re-registering
        // an existing key entering at an arbitrary node must route to
        // the existing node, not seed a duplicate.
        let mut sys = small_system(6);
        let names: Vec<String> = (0..30).map(|i| format!("PDGEL{i:02}")).collect();
        for n in &names {
            sys.insert_data(k(n)).unwrap();
        }
        let labels = sys.node_labels();
        for _ in 0..4 {
            for n in &names {
                sys.insert_data(k(n)).unwrap();
            }
        }
        assert_eq!(sys.node_labels(), labels);
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
        // No node may ever be its own father.
        for l in sys.node_labels() {
            let node = sys.node(&l).unwrap();
            assert_ne!(node.father.as_ref(), Some(&l), "{l} is its own father");
        }
    }

    #[test]
    fn removal_converges_to_oracle_of_remaining_keys() {
        let mut sys = binary_system(4, 61);
        // Remove two of the paper keys; the overlay must equal the
        // oracle built from the remaining two.
        sys.remove_data(&k("10101")).unwrap();
        sys.remove_data(&k("101111")).unwrap();
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
        assert_eq!(sys.node_labels(), sys.oracle().labels());
        assert!(!sys.lookup(&k("10101")).found);
        assert!(sys.lookup(&k("10111")).satisfied);
        assert!(sys.lookup(&k("01")).satisfied);
        // Removing an absent key is a no-op.
        let labels = sys.node_labels();
        sys.remove_data(&k("111")).unwrap();
        assert_eq!(sys.node_labels(), labels);
    }

    #[test]
    fn removing_everything_empties_the_tree() {
        let mut sys = binary_system(3, 67);
        for s in PAPER_KEYS {
            sys.remove_data(&k(s)).unwrap();
        }
        assert_eq!(sys.node_count(), 0);
        assert!(sys.root().is_none());
        // The overlay still works afterwards.
        sys.insert_data(k("1100")).unwrap();
        assert!(sys.lookup(&k("1100")).satisfied);
        assert_eq!(sys.root(), Some(&k("1100")));
    }

    #[test]
    fn insert_remove_interleaving_tracks_oracle() {
        let mut sys = small_system(5);
        let names: Vec<Key> = (0..24).map(|i| k(&format!("SVC{:02}", i))).collect();
        let mut live = std::collections::BTreeSet::new();
        for round in 0..3 {
            for (i, n) in names.iter().enumerate() {
                if (i + round) % 3 == 0 {
                    sys.insert_data(n.clone()).unwrap();
                    live.insert(n.clone());
                } else if live.contains(n) {
                    sys.remove_data(n).unwrap();
                    live.remove(n);
                }
            }
            sys.check_tree().unwrap();
            sys.check_mapping().unwrap();
            let mut oracle = PgcpTrie::new();
            for n in &live {
                oracle.insert(n.clone());
            }
            assert_eq!(sys.node_labels(), oracle.labels(), "round {round}");
        }
    }

    #[test]
    fn grid_names_register_and_resolve() {
        let mut sys = small_system(6);
        for name in ["DGEMM", "DGEMV", "DTRSM", "S3L_mat_mult", "PSGESV"] {
            sys.insert_data(k(name)).unwrap();
        }
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
        assert_eq!(sys.node_labels(), sys.oracle().labels());
        let out = sys.complete(&k("DGE"));
        assert_eq!(out.results, vec![k("DGEMM"), k("DGEMV")]);
    }

    #[test]
    fn capacity_exhaustion_drops_requests() {
        let mut sys = DlptSystem::builder()
            .seed(3)
            .peer_id_len(8)
            .default_capacity(2)
            .bootstrap_peers(1)
            .build();
        sys.insert_data(k("DGEMM")).unwrap();
        // Two visits fit (single-node tree → 1 visit per lookup).
        assert!(sys.lookup(&k("DGEMM")).satisfied);
        assert!(sys.lookup(&k("DGEMM")).satisfied);
        let out = sys.lookup(&k("DGEMM"));
        assert!(out.dropped);
        assert!(!out.satisfied);
        // New unit: capacity refreshes, demand was recorded.
        sys.end_time_unit();
        assert_eq!(sys.node(&k("DGEMM")).unwrap().prev_load, 3);
        assert!(sys.lookup(&k("DGEMM")).satisfied);
    }

    #[test]
    fn gather_under_capacity_pressure_keeps_surviving_results() {
        // Regression: the scatter partial of a node must be processed
        // before any of its branch visits can be refused, or a
        // synchronous capacity drop on one branch finalizes the
        // aggregation early and every surviving branch's results are
        // discarded as stale. One peer, capacity 3, three keys: the
        // completion visits root + 3 children = 4 > 3, so exactly one
        // branch drops — the other results must survive.
        let mut sys = DlptSystem::builder()
            .seed(3)
            .peer_id_len(8)
            .default_capacity(3)
            .bootstrap_peers(1)
            .build();
        for s in ["DGEMM", "DGEMV", "DTRSM"] {
            sys.insert_data(k(s)).unwrap();
        }
        sys.end_time_unit(); // reset capacity spent during construction
        let out = sys.complete(&k("D"));
        assert!(out.dropped, "some visit must exceed capacity 3");
        assert!(!out.satisfied, "a dropped visit forfeits satisfaction");
        // The buggy ordering finalized the request on the first drop
        // and threw every surviving partial away (results == []).
        assert!(
            out.found && !out.results.is_empty(),
            "surviving branches' keys must be reported: {out:?}"
        );
        assert_eq!(out.results, vec![k("DTRSM")], "pre-refactor behaviour");
    }

    #[test]
    fn rename_peer_keeps_invariants() {
        let mut sys = binary_system(4, 11);
        let ids = sys.peer_ids();
        let victim = ids[1].clone();
        // Rename to an id still inside (pred, victim]'s arc-safe zone:
        // use a node label hosted by the victim if any, else skip.
        let shard = sys.shard(&victim).unwrap();
        if let Some(node_label) = shard.nodes.keys().next_back().cloned() {
            sys.rename_peer(&victim, node_label.clone()).unwrap();
            assert!(sys.shard(&node_label).is_some());
            sys.check_ring().unwrap();
            sys.check_mapping().unwrap();
        }
    }

    #[test]
    fn crash_and_repair_restores_tree_shape() {
        let mut sys = binary_system(5, 13);
        let loaded: Vec<Key> = sys
            .peer_ids()
            .into_iter()
            .filter(|p| sys.shard(p).map(|s| s.node_count() > 0).unwrap_or(false))
            .collect();
        let victim = loaded[0].clone();
        let lost = sys.crash_peer(&victim).unwrap();
        assert!(!lost.is_empty());
        sys.repair_tree();
        sys.check_tree().unwrap();
        sys.check_ring().unwrap();
        // Lost keys can be re-registered and found again.
        let mut sys2 = sys;
        for l in &lost {
            // Only data keys need re-registration (structural labels
            // reappear on their own as needed).
            sys2.insert_data(l.clone()).unwrap();
        }
        sys2.check_tree().unwrap();
        for s in PAPER_KEYS {
            assert!(sys2.lookup(&k(s)).satisfied, "{s}");
        }
    }

    #[test]
    fn migrate_node_moves_and_counts() {
        let mut sys = binary_system(4, 17);
        let label = sys.node_labels()[0].clone();
        let from = sys.host_of(&label).unwrap().clone();
        let to = sys
            .peer_ids()
            .into_iter()
            .find(|p| *p != from)
            .expect("more than one peer");
        sys.migrate_node(&label, &to).unwrap();
        assert_eq!(sys.host_of(&label), Some(&to));
        assert_eq!(sys.stats.balance_migrations, 1);
        // Mapping is now intentionally violated (that is what the
        // balancers repair by renaming); the node is still reachable.
        let out = sys.lookup(&k("10101"));
        assert!(out.satisfied);
    }

    #[test]
    fn hop_accounting_matches_oracle_depth() {
        let mut sys = binary_system(3, 19);
        let out = sys.lookup(&k("101111"));
        assert!(out.satisfied);
        assert_eq!(out.path.len(), out.host_path.len());
        assert!(out.physical_hops() <= out.logical_hops());
    }

    #[test]
    fn empty_states_error_cleanly() {
        let mut sys = DlptSystem::builder().build();
        assert!(matches!(
            sys.insert_data(k("DGEMM")),
            Err(DlptError::EmptyRing)
        ));
        assert!(matches!(
            sys.request(QueryKind::Exact(k("DGEMM"))),
            Err(DlptError::EmptyTree)
        ));
        sys.add_peer(10).unwrap();
        assert!(matches!(
            sys.request(QueryKind::Exact(k("DGEMM"))),
            Err(DlptError::EmptyTree)
        ));
    }

    #[test]
    fn duplicate_peer_rejected() {
        let mut sys = small_system(2);
        let id = sys.peer_ids()[0].clone();
        assert!(matches!(
            sys.add_peer_with_id(id, 5),
            Err(DlptError::DuplicatePeer(_))
        ));
    }

    #[test]
    fn last_peer_leaving_empties_the_overlay() {
        let mut sys = small_system(1);
        sys.insert_data(k("DGEMM")).unwrap();
        let id = sys.peer_ids()[0].clone();
        sys.leave_peer(&id).unwrap();
        assert_eq!(sys.peer_count(), 0);
        assert_eq!(sys.node_count(), 0);
        assert!(sys.root().is_none());
    }

    fn replicated_system(peers: usize, k: usize, seed: u64) -> DlptSystem {
        let mut sys = DlptSystem::builder()
            .seed(seed)
            .peer_id_len(8)
            .replication(k)
            .bootstrap_peers(peers)
            .build();
        for name in ["DGEMM", "DGEMV", "DTRSM", "S3L_fft", "S3L_sort", "PSGESV"] {
            sys.insert_data(k_(name)).unwrap();
        }
        sys
    }

    fn k_(s: &str) -> Key {
        Key::from(s)
    }

    #[test]
    fn eager_replication_satisfies_invariant_without_anti_entropy() {
        let sys = replicated_system(6, 2, 71);
        sys.check_replication().unwrap();
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
        for label in sys.node_labels() {
            let hosts = sys.replica_hosts(&label);
            assert_eq!(hosts.len(), 2, "{label}: {hosts:?}");
            assert_ne!(hosts[0], hosts[1]);
        }
        assert!(sys.repl_stats.eager_syncs > 0);
        assert!(sys.repl_stats.replication_messages > 0);
        // Replication stays out of the protocol counters.
        let baseline = replicated_system(6, 1, 71);
        assert_eq!(sys.stats, baseline.stats, "SystemStats must not see k");
    }

    #[test]
    fn k1_is_observationally_identical_to_unreplicated() {
        let a = replicated_system(5, 1, 13);
        let b = {
            let mut sys = DlptSystem::builder()
                .seed(13)
                .peer_id_len(8)
                .bootstrap_peers(5)
                .build();
            for name in ["DGEMM", "DGEMV", "DTRSM", "S3L_fft", "S3L_sort", "PSGESV"] {
                sys.insert_data(k_(name)).unwrap();
            }
            sys
        };
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.peer_ids(), b.peer_ids());
        assert_eq!(a.node_labels(), b.node_labels());
        assert_eq!(a.repl_stats, ReplicationStats::default());
    }

    #[test]
    fn crash_with_replication_loses_nothing() {
        let mut sys = replicated_system(6, 2, 29);
        let keys = sys.registered_keys();
        let victim = sys
            .peer_ids()
            .into_iter()
            .max_by_key(|p| sys.shard(p).map(|s| s.node_count()).unwrap_or(0))
            .unwrap();
        assert!(sys.shard(&victim).unwrap().node_count() > 0);
        let lost = sys.crash_peer(&victim).unwrap();
        assert!(lost.is_empty(), "every node had a follower: {lost:?}");
        assert!(sys.repl_stats.promotions > 0);
        sys.repair_tree();
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
        sys.check_ring().unwrap();
        for key in &keys {
            assert!(sys.lookup(key).satisfied, "{key}");
        }
        // Anti-entropy restores full redundancy after the promotion.
        let report = sys.anti_entropy().unwrap();
        assert!(report.under_replicated > 0, "promotions left k-1 gaps");
        sys.check_replication().unwrap();
        let report = sys.anti_entropy().unwrap();
        assert_eq!(report.under_replicated, 0, "second pass finds it healed");
    }

    #[test]
    fn anti_entropy_heals_a_crashed_follower() {
        let mut sys = replicated_system(6, 3, 31);
        sys.check_replication().unwrap();
        // Crash a peer that only *follows* some label.
        let label = sys.node_labels()[0].clone();
        let follower = sys.replica_hosts(&label)[1].clone();
        sys.crash_peer(&follower).unwrap();
        sys.repair_tree();
        sys.anti_entropy().unwrap();
        sys.check_replication().unwrap();
        assert_eq!(
            sys.replica_hosts(&label).len(),
            3.min(sys.peer_count()),
            "follower set refilled"
        );
    }

    #[test]
    fn replica_gc_follows_data_removal() {
        let mut sys = replicated_system(5, 2, 37);
        sys.remove_data(&k_("DGEMM")).unwrap();
        sys.anti_entropy().unwrap();
        // No peer may hold a copy of a label the tree no longer has.
        let live: std::collections::BTreeSet<Key> = sys.node_labels().into_iter().collect();
        for id in sys.peer_ids() {
            for rl in sys.shard(&id).unwrap().replicas.keys() {
                assert!(live.contains(rl), "stale replica {rl} on {id}");
            }
        }
        sys.check_replication().unwrap();
    }

    #[test]
    fn capacity_failover_serves_reads_from_followers() {
        // One key on a 2-peer ring, primary capacity 1: the second
        // lookup visit would be dropped at k=1 but is served by the
        // follower copy at k=2.
        let mut sys = DlptSystem::builder()
            .seed(3)
            .peer_id_len(8)
            .default_capacity(2)
            .replication(2)
            .bootstrap_peers(2)
            .build();
        sys.insert_data(k_("DGEMM")).unwrap();
        sys.end_time_unit();
        let mut served = 0;
        for _ in 0..4 {
            if sys.lookup(&k_("DGEMM")).satisfied {
                served += 1;
            }
        }
        assert!(
            sys.repl_stats.failover_reads > 0,
            "follower must absorb overflow"
        );
        assert!(served > 2, "failover must lift satisfied beyond capacity");
    }

    #[test]
    fn graceful_leave_keeps_replication_invariant_after_anti_entropy() {
        let mut sys = replicated_system(6, 2, 41);
        let victim = sys.peer_ids()[2].clone();
        sys.leave_peer(&victim).unwrap();
        sys.anti_entropy().unwrap();
        sys.check_replication().unwrap();
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
    }

    fn cached_system(peers: usize, capacity: usize, seed: u64) -> DlptSystem {
        let mut sys = DlptSystem::builder()
            .seed(seed)
            .peer_id_len(8)
            .cache_capacity(capacity)
            .bootstrap_peers(peers)
            .build();
        for name in ["DGEMM", "DGEMV", "DTRSM", "S3L_fft", "S3L_sort", "PSGESV"] {
            sys.insert_data(k(name)).unwrap();
        }
        sys
    }

    #[test]
    fn cache_learns_then_hits_with_one_hop_route() {
        let mut sys = cached_system(6, 32, 91);
        let key = k("DGEMM");
        let first = sys.lookup(&key);
        assert!(first.satisfied);
        assert_eq!(sys.cache_stats.learned, 1);
        assert_eq!(sys.cache_stats.hits, 0);
        // Hammer the same key until a request enters at a peer that
        // has learned the shortcut (entry nodes are random).
        let mut hit_outcome = None;
        for _ in 0..64 {
            let before = sys.cache_stats.hits;
            let out = sys.lookup(&key);
            assert!(out.satisfied);
            assert_eq!(out.results, vec![key.clone()]);
            if sys.cache_stats.hits > before {
                hit_outcome = Some(out);
                break;
            }
        }
        let out = hit_outcome.expect("some lookup must hit the cache");
        assert_eq!(out.path, vec![key.clone()], "one-hop cached route");
        assert_eq!(out.logical_hops(), 0);
    }

    #[test]
    fn stale_hit_falls_back_and_relearns_after_migration() {
        let mut sys = cached_system(6, 32, 17);
        let key = k("S3L_fft");
        // Warm every peer's cache.
        for _ in 0..64 {
            assert!(sys.lookup(&key).satisfied);
        }
        assert!(sys.cache_stats.hits > 0, "cache must be warm");
        // Migrate the key's node: epochs advance, eager invalidation
        // broadcasts, and any shortcut that survives (it should not —
        // but the lazy check is the backstop) is stale.
        let from = sys.host_of(&key).unwrap().clone();
        let to = sys
            .peer_ids()
            .into_iter()
            .find(|p| *p != from)
            .expect("second peer");
        sys.migrate_node(&key, &to).unwrap();
        assert!(sys.cache_stats.invalidations_sent > 0);
        assert!(sys.cache_stats.invalidations_delivered > 0);
        // Every subsequent lookup still answers correctly.
        for _ in 0..32 {
            let out = sys.lookup(&key);
            assert!(out.satisfied);
            assert_eq!(out.results, vec![key.clone()]);
        }
    }

    #[test]
    fn removed_key_is_not_found_through_a_warm_cache() {
        let mut sys = cached_system(5, 32, 23);
        let key = k("DTRSM");
        for _ in 0..48 {
            assert!(sys.lookup(&key).satisfied);
        }
        assert!(sys.cache_stats.hits > 0);
        sys.remove_data(&key).unwrap();
        for _ in 0..24 {
            let out = sys.lookup(&key);
            assert!(!out.found, "cache must never resurrect a removed key");
            assert!(out.results.is_empty());
        }
        // Other keys stay correct.
        assert!(sys.lookup(&k("DGEMM")).satisfied);
    }

    #[test]
    fn cache_off_is_observationally_identical_and_counts_nothing() {
        let a = cached_system(5, 0, 13);
        let b = {
            let mut sys = DlptSystem::builder()
                .seed(13)
                .peer_id_len(8)
                .bootstrap_peers(5)
                .build();
            for name in ["DGEMM", "DGEMV", "DTRSM", "S3L_fft", "S3L_sort", "PSGESV"] {
                sys.insert_data(k(name)).unwrap();
            }
            sys
        };
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.peer_ids(), b.peer_ids());
        assert_eq!(a.node_labels(), b.node_labels());
        assert_eq!(a.cache_stats, CacheStats::default());
    }

    #[test]
    fn cached_hits_relieve_capacity_pressure() {
        // One peer, capacity 4, one key at depth 0: uncached lookups
        // cost one visit each anyway, so use a multi-node tree where
        // the up/down route costs several visits and hits cost one.
        let mut sys = DlptSystem::builder()
            .seed(3)
            .peer_id_len(8)
            .default_capacity(1_000)
            .cache_capacity(16)
            .bootstrap_peers(1)
            .build();
        for s in ["DGEMM", "DGEMV", "DGEX"] {
            sys.insert_data(k(s)).unwrap();
        }
        sys.end_time_unit();
        let key = k("DGEMM");
        // Learn.
        assert!(sys.lookup(&key).satisfied);
        let uncached_visits = sys.stats.discovery_messages;
        // Hit: exactly one more visit.
        assert!(sys.lookup(&key).satisfied);
        assert_eq!(sys.cache_stats.hits, 1);
        assert_eq!(
            sys.stats.discovery_messages,
            uncached_visits + 1,
            "a cached route must cost exactly one visit"
        );
    }

    #[test]
    fn depth_map_matches_father_chains() {
        let sys = binary_system(4, 7);
        let depths = sys.depth_map();
        assert_eq!(depths.len(), sys.node_count());
        for (label, d) in &depths {
            let mut cur = label.clone();
            let mut walked = 0u32;
            while let Some(f) = sys.node(&cur).unwrap().father.clone() {
                walked += 1;
                cur = f;
            }
            assert_eq!(walked, *d, "{label}");
        }
        assert_eq!(depths.values().filter(|d| **d == 0).count(), 1, "one root");
    }

    #[test]
    fn stats_count_messages() {
        let mut sys = binary_system(4, 23);
        assert!(sys.stats.join_messages > 0);
        assert!(sys.stats.insert_messages > 0);
        assert!(sys.stats.host_messages > 0);
        sys.lookup(&k("10101"));
        assert!(sys.stats.discovery_messages > 0);
    }

    #[test]
    fn many_keys_many_peers_converge_to_oracle() {
        let mut sys = DlptSystem::builder()
            .seed(29)
            .peer_id_len(8)
            .bootstrap_peers(12)
            .build();
        let names: Vec<String> = ["DGEMM", "DGEMV", "DTRSM", "DTRMM", "SGEMM", "SGEMV"]
            .iter()
            .map(|s| s.to_string())
            .chain((0..40).map(|i| format!("S3L_op_{i:02}")))
            .chain((0..40).map(|i| format!("PSROUTINE{i:02}")))
            .collect();
        for n in &names {
            sys.insert_data(k(n)).unwrap();
        }
        assert_eq!(sys.node_labels(), sys.oracle().labels());
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
        for n in &names {
            assert!(sys.lookup(&k(n)).satisfied, "{n}");
        }
        let out = sys.complete(&k("S3L"));
        assert_eq!(out.results.len(), 40);
    }
}

//! Replication subsystem: counters, reports and the replication
//! invariant.
//!
//! The mechanism itself is split across the layers it touches —
//! placement and message handlers in [`crate::protocol::repair`],
//! follower bookkeeping in [`crate::directory::Directory`], follower
//! copies in [`crate::peer::PeerShard::replicas`], and the runtime
//! loops (eager sync, failover, anti-entropy) in
//! [`crate::system::DlptSystem`]. This module holds the shared
//! vocabulary: the counters the experiment harness reads and the
//! report types the anti-entropy pass returns.
//!
//! Replication counters live here — deliberately *not* in
//! [`crate::metrics::SystemStats`] — so an unreplicated overlay
//! (`k = 1`, the default) stays byte-identical to the pre-replication
//! system, golden determinism fingerprint included.

/// Counters of the replication subsystem. All remain zero at `k = 1`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Replication protocol messages processed (`SyncReplicas`,
    /// `Replicate`, `DropReplica`, `PromoteReplica`).
    pub replication_messages: u64,
    /// Labels re-cloned by the eager post-mutation sync.
    pub eager_syncs: u64,
    /// Anti-entropy passes run.
    pub anti_entropy_passes: u64,
    /// Follower copies promoted to primary after a crash.
    pub promotions: u64,
    /// Discovery visits served from a follower copy because the
    /// primary's capacity was exhausted.
    pub failover_reads: u64,
    /// Nodes that crashed with no surviving replica (truly lost).
    pub unrecoverable_nodes: u64,
}

/// What one anti-entropy pass found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AntiEntropyReport {
    /// Labels whose live follower count was below `min(k - 1, |P| - 1)`
    /// when the pass started (the under-replication the pass heals).
    pub under_replicated: usize,
    /// Replication envelopes the pass put on the wire.
    pub messages_sent: usize,
    /// Stale follower copies garbage-collected (dissolved nodes,
    /// displaced replica sets).
    pub replicas_dropped: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_default_to_zero() {
        let s = ReplicationStats::default();
        assert_eq!(s.replication_messages, 0);
        assert_eq!(s.promotions, 0);
        assert_eq!(s, ReplicationStats::default());
        let r = AntiEntropyReport::default();
        assert_eq!(r.under_replicated, 0);
    }
}

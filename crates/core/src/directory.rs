//! The interned delivery directory: node label → hosting peer.
//!
//! The synchronous runtime resolves every node-addressed envelope
//! through this table, so it sits on the routing hot path. The previous
//! representation — a `BTreeMap<Key, Key>` plus a full `Vec<Key>`
//! rebuild whenever `random_node` ran after a change — made each
//! delivery walk a B-tree comparing variable-length byte strings and
//! made each membership change O(nodes) in clones. Here every distinct
//! key is *interned* once and identified by a `u32`; the directory
//! itself is
//!
//! * `hosts`: a flat `id → host-id` array giving O(1) exact lookups
//!   (one hash of the label, no byte-string tree walk), and
//! * `sorted`: the live label ids in lexicographic order, maintained
//!   incrementally (binary search over `u32` ids) on
//!   join/leave/migrate, giving ordered iteration and O(1) uniform
//!   sampling (`label_at`).
//!
//! Interned keys are never freed: the id space grows with the number of
//! *distinct* labels and peers ever seen, which for the service-
//! discovery workloads is bounded by the corpus and churn population.
//! That trade buys clone-free lookups everywhere else.

use crate::key::Key;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Sentinel host id meaning "label not present".
const NONE: u32 = u32::MAX;

/// FxHash (the rustc hasher): multiply-xor over machine words. Keys
/// are short, trusted identifiers, so DoS-resistant SipHash is pure
/// overhead here — and a fixed hasher also keeps the map independent
/// of process-global randomness (we never iterate the map, but
/// determinism is this runtime's core guarantee, so no randomness at
/// all is the safer invariant).
#[derive(Default)]
pub struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes(c.try_into().expect("exact chunk"));
            self.0 = (self.0.rotate_left(5) ^ w).wrapping_mul(FX_SEED);
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = tail << 8 | b as u64;
        }
        self.0 = (self.0.rotate_left(5) ^ tail).wrapping_mul(FX_SEED);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.0 = (self.0.rotate_left(5) ^ n as u64).wrapping_mul(FX_SEED);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// `HashMap` keyed by interned keys with the fixed [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the fixed [`FxHasher`] (deterministic iteration is
/// not required, deterministic membership is).
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// An explicit ownership-transfer record: the outcome of re-hosting
/// one label. Produced by [`Directory::handoff`], which is the single
/// entry point for every host change that *moves* ownership (balancer
/// migration, crash promotion) as opposed to creating it (join,
/// registration). The record names both sides of the transfer in
/// interned-id space, so a consumer partitioned by peer id — a
/// parallel-pump slice, a health row, a trace sink — can apply the
/// move as a message between the two owners instead of re-deriving it
/// from shared state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handoff {
    /// The transferred label's interned id.
    pub label: u32,
    /// The previous owner's peer id (`None` when the label was not
    /// live — a promotion re-creating a crashed primary's entry).
    pub from: Option<u32>,
    /// The new owner's peer id.
    pub to: u32,
}

/// An interned `label → host` table with incremental ordered access.
#[derive(Debug, Default)]
pub struct Directory {
    /// Interned key storage; index is the key's id.
    keys: Vec<Key>,
    /// Reverse map key → id (cheap to key by `Key`: clones are inline).
    ids: FxHashMap<Key, u32>,
    /// Per key-id: id of the hosting peer's key, or [`NONE`] when the
    /// key is not currently a live node label.
    hosts: Vec<u32>,
    /// Live label ids, ascending by digit string.
    sorted: Vec<u32>,
    /// Per key-id: peer ids of the follower replica hosts (replication
    /// extension; empty at k = 1, which keeps the table cost-free for
    /// unreplicated overlays).
    followers: Vec<Vec<u32>>,
    /// Per key-id: structural epoch of the label (caching extension,
    /// `dlpt_core::cache`). Bumped on every host change, removal and
    /// node-state mutation, so a routing shortcut learned at epoch `e`
    /// is provably fresh iff the label is live at epoch `e`. Epochs are
    /// pure bookkeeping — never printed, compared or serialized — so
    /// they cannot perturb the cache-off golden fingerprint.
    epochs: Vec<u64>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Number of live node labels.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True iff no node labels are present.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Interns `k`, returning its stable id. Ids are never freed, so an
    /// id handed out here stays valid (and keeps naming the same key)
    /// for the directory's whole lifetime — which is what lets the
    /// engine index per-peer state by id without ABA hazards.
    pub fn intern(&mut self, k: &Key) -> u32 {
        if let Some(&id) = self.ids.get(k) {
            return id;
        }
        let id = self.keys.len() as u32;
        self.keys.push(k.clone());
        self.hosts.push(NONE);
        self.followers.push(Vec::new());
        self.epochs.push(0);
        self.ids.insert(k.clone(), id);
        id
    }

    /// The interned id of `k`, if it has ever been interned (as a
    /// label, a host, or explicitly). One hash, no allocation.
    #[inline]
    pub fn id_of(&self, k: &Key) -> Option<u32> {
        self.ids.get(k).copied()
    }

    /// The key an id names. Ids come only from this directory and are
    /// never freed, so the access is a plain index.
    #[inline]
    pub fn key_of(&self, id: u32) -> &Key {
        &self.keys[id as usize]
    }

    /// Number of distinct keys ever interned (the id space bound).
    pub fn interned_len(&self) -> usize {
        self.keys.len()
    }

    /// Resolves a live label to `(label id, host id)` with a single
    /// hash — the delivery hot path's one-stop lookup. `None` when the
    /// label is unknown or not currently live.
    #[inline]
    pub fn resolve(&self, label: &Key) -> Option<(u32, u32)> {
        let &lid = self.ids.get(label)?;
        match self.hosts[lid as usize] {
            NONE => None,
            hid => Some((lid, hid)),
        }
    }

    /// The host id of a live label id (`None` when dissolved).
    #[inline]
    pub fn host_id(&self, lid: u32) -> Option<u32> {
        match self.hosts[lid as usize] {
            NONE => None,
            hid => Some(hid),
        }
    }

    /// Position of `label`'s id in `sorted` (Ok) or its insertion
    /// point (Err) — the binary search runs over `u32` ids and only
    /// dereferences into the interned storage for comparisons.
    fn rank(&self, label: &Key) -> Result<usize, usize> {
        self.sorted
            .binary_search_by(|&id| self.keys[id as usize].cmp(label))
    }

    /// True iff `label` is a live node label.
    pub fn contains(&self, label: &Key) -> bool {
        self.ids
            .get(label)
            .map(|&id| self.hosts[id as usize] != NONE)
            .unwrap_or(false)
    }

    /// The hosting peer of `label`, if the label is live.
    pub fn host_of(&self, label: &Key) -> Option<&Key> {
        let &id = self.ids.get(label)?;
        match self.hosts[id as usize] {
            NONE => None,
            host => Some(&self.keys[host as usize]),
        }
    }

    /// Sets (or replaces) the hosting peer of `label`, returning the
    /// label's interned id. Counts as a structural event: the label's
    /// epoch advances, staling any routing shortcut learned before the
    /// change.
    pub fn insert(&mut self, label: Key, host: Key) -> u32 {
        let lid = self.intern(&label);
        let hid = self.intern(&host);
        if self.hosts[lid as usize] == NONE {
            let at = self
                .rank(&label)
                .expect_err("absent label cannot be in sorted order");
            self.sorted.insert(at, lid);
        }
        self.hosts[lid as usize] = hid;
        self.epochs[lid as usize] += 1;
        lid
    }

    /// Transfers ownership of `label` to `new_host` and returns the
    /// explicit [`Handoff`] record describing the move. Semantically
    /// an [`Directory::insert`] (same epoch bump, same sorted-order
    /// maintenance) that additionally reports who lost the label —
    /// the protocol-level "ownership handoff message" the engine's
    /// migration and promotion paths route between per-peer slices.
    pub fn handoff(&mut self, label: &Key, new_host: &Key) -> Handoff {
        let from = self
            .ids
            .get(label)
            .map(|&lid| self.hosts[lid as usize])
            .filter(|&h| h != NONE);
        let lid = self.insert(label.clone(), new_host.clone());
        Handoff {
            label: lid,
            from,
            to: self.hosts[lid as usize],
        }
    }

    /// Copies the current `id → host id` table into `into` (cleared
    /// first). The parallel pump freezes this snapshot per batch so
    /// each worker routes from its own table instead of probing shared
    /// directory state per hop.
    pub fn host_snapshot(&self, into: &mut Vec<u32>) {
        into.clear();
        into.extend_from_slice(&self.hosts);
    }

    /// Removes `label`; returns true iff it was present.
    pub fn remove(&mut self, label: &Key) -> bool {
        let Some(&lid) = self.ids.get(label) else {
            return false;
        };
        if self.hosts[lid as usize] == NONE {
            return false;
        }
        self.hosts[lid as usize] = NONE;
        self.followers[lid as usize].clear();
        self.epochs[lid as usize] += 1;
        let at = self.rank(label).expect("live label is in sorted order");
        self.sorted.remove(at);
        true
    }

    /// Drops every label (the interner itself is retained).
    pub fn clear(&mut self) {
        for &id in &self.sorted {
            self.hosts[id as usize] = NONE;
            self.followers[id as usize].clear();
            self.epochs[id as usize] += 1;
        }
        self.sorted.clear();
    }

    /// Advances `label`'s epoch (a node-state mutation that leaves the
    /// hosting unchanged: child links, father link, data set). Interns
    /// the label so the bump survives a remove/re-insert window.
    pub fn bump_epoch(&mut self, label: &Key) {
        let lid = self.intern(label);
        self.epochs[lid as usize] += 1;
    }

    /// Advances the epoch of an already interned label by id — the
    /// hot-path twin of [`Directory::bump_epoch`] (no hash).
    #[inline]
    pub fn bump_epoch_id(&mut self, lid: u32) {
        self.epochs[lid as usize] += 1;
    }

    /// The current epoch of `label` *iff* it is a live node label —
    /// the single probe a cache-hit validation needs. `None` when the
    /// label is unknown or dissolved.
    pub fn live_epoch(&self, label: &Key) -> Option<u64> {
        let &id = self.ids.get(label)?;
        if self.hosts[id as usize] == NONE {
            None
        } else {
            Some(self.epochs[id as usize])
        }
    }

    /// The current epoch of `label` (0 if never seen). Liveness is the
    /// caller's concern; hit validation should use
    /// [`Directory::live_epoch`].
    pub fn epoch_of(&self, label: &Key) -> u64 {
        self.ids
            .get(label)
            .map(|&id| self.epochs[id as usize])
            .unwrap_or(0)
    }

    /// Records the follower replica hosts of `label` (replication
    /// extension). The label is interned even when not yet live so the
    /// record survives the promote/re-insert window.
    pub fn set_followers(&mut self, label: &Key, hosts: &[Key]) {
        let lid = self.intern(label);
        let ids: Vec<u32> = hosts.iter().map(|h| self.intern(h)).collect();
        self.followers[lid as usize] = ids;
    }

    /// The recorded follower hosts of `label`, in ring order after the
    /// primary. Liveness is the caller's concern: a recorded follower
    /// may have crashed since.
    pub fn followers_of(&self, label: &Key) -> impl ExactSizeIterator<Item = &Key> + '_ {
        let ids: &[u32] = self
            .ids
            .get(label)
            .map(|&lid| self.followers[lid as usize].as_slice())
            .unwrap_or(&[]);
        ids.iter().map(|&id| &self.keys[id as usize])
    }

    /// The recorded follower host ids of label id `lid` (empty slice
    /// when none were recorded). Id-level twin of
    /// [`Directory::followers_of`].
    #[inline]
    pub fn follower_ids(&self, lid: u32) -> &[u32] {
        &self.followers[lid as usize]
    }

    /// The `i`-th live label in ascending order. Panics when out of
    /// range — this is the O(1) uniform-sampling accessor behind
    /// `random_node`, which replaced the rebuilt `node_cache`.
    pub fn label_at(&self, i: usize) -> &Key {
        &self.keys[self.sorted[i] as usize]
    }

    /// Live labels, ascending.
    pub fn labels(&self) -> impl ExactSizeIterator<Item = &Key> + '_ {
        self.sorted.iter().map(|&id| &self.keys[id as usize])
    }

    /// Estimated resident bytes of the directory tables: interned key
    /// storage (plus spilled key heap), the id map, host/sorted/epoch
    /// arrays and follower records. Vec capacities are counted (they
    /// are a deterministic function of the insertion history); the id
    /// map uses a fixed per-entry estimate so the result never depends
    /// on hash-table growth policy details.
    pub fn bytes_estimate(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = self.keys.capacity() * size_of::<Key>()
            + self.hosts.capacity() * size_of::<u32>()
            + self.sorted.capacity() * size_of::<u32>()
            + self.epochs.capacity() * size_of::<u64>()
            + self.followers.capacity() * size_of::<Vec<u32>>();
        for f in &self.followers {
            bytes += f.capacity() * size_of::<u32>();
        }
        for k in &self.keys {
            if !k.is_inline() {
                // Arc<[u8]> payload plus the two refcount words.
                bytes += k.len() + 16;
            }
        }
        bytes + self.ids.len() * (size_of::<Key>() + size_of::<u32>() + 8)
    }

    /// `(label, host)` pairs, ascending by label.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (&Key, &Key)> + '_ {
        self.sorted.iter().map(|&id| {
            (
                &self.keys[id as usize],
                &self.keys[self.hosts[id as usize] as usize],
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn sample() -> Directory {
        let mut d = Directory::new();
        d.insert(k("101"), k("P2"));
        d.insert(k("01"), k("P1"));
        d.insert(k("10101"), k("P2"));
        d.insert(Key::epsilon(), k("P1"));
        d
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut d = sample();
        assert_eq!(d.len(), 4);
        assert_eq!(d.host_of(&k("101")), Some(&k("P2")));
        assert_eq!(d.host_of(&k("01")), Some(&k("P1")));
        assert_eq!(d.host_of(&k("zzz")), None);
        assert!(d.contains(&Key::epsilon()));
        assert!(d.remove(&k("101")));
        assert!(!d.remove(&k("101")), "second removal is a no-op");
        assert_eq!(d.host_of(&k("101")), None);
        assert_eq!(d.len(), 3);
        // Re-inserting a previously interned label works.
        d.insert(k("101"), k("P9"));
        assert_eq!(d.host_of(&k("101")), Some(&k("P9")));
    }

    #[test]
    fn rehosting_replaces_without_duplicating() {
        let mut d = sample();
        d.insert(k("101"), k("P7"));
        assert_eq!(d.len(), 4);
        assert_eq!(d.host_of(&k("101")), Some(&k("P7")));
    }

    #[test]
    fn iteration_is_ascending() {
        let d = sample();
        let labels: Vec<&Key> = d.labels().collect();
        assert_eq!(
            labels,
            vec![&Key::epsilon(), &k("01"), &k("101"), &k("10101")]
        );
        assert_eq!(d.label_at(2), &k("101"));
        let pairs: Vec<(&Key, &Key)> = d.iter().collect();
        assert_eq!(pairs[1], (&k("01"), &k("P1")));
    }

    #[test]
    fn followers_roundtrip_and_clear_on_remove() {
        let mut d = sample();
        assert_eq!(d.followers_of(&k("101")).count(), 0);
        d.set_followers(&k("101"), &[k("P7"), k("P9")]);
        let got: Vec<&Key> = d.followers_of(&k("101")).collect();
        assert_eq!(got, vec![&k("P7"), &k("P9")]);
        // Unknown labels read as empty.
        assert_eq!(d.followers_of(&k("zzz")).count(), 0);
        // Removal wipes the record.
        d.remove(&k("101"));
        assert_eq!(d.followers_of(&k("101")).count(), 0);
        // Records may be set for not-yet-live labels (the
        // promote/re-insert window) and overwritten in place.
        d.set_followers(&k("777"), &[k("P1")]);
        assert_eq!(d.followers_of(&k("777")).count(), 1);
        d.set_followers(&k("777"), &[]);
        assert_eq!(d.followers_of(&k("777")).count(), 0);
    }

    #[test]
    fn epochs_advance_on_every_structural_event() {
        let mut d = Directory::new();
        assert_eq!(d.live_epoch(&k("101")), None);
        assert_eq!(d.epoch_of(&k("101")), 0);
        d.insert(k("101"), k("P1"));
        let e1 = d.live_epoch(&k("101")).expect("live");
        d.insert(k("101"), k("P2")); // migration
        let e2 = d.live_epoch(&k("101")).expect("still live");
        assert!(e2 > e1);
        d.bump_epoch(&k("101")); // node-state mutation
        let e3 = d.live_epoch(&k("101")).expect("still live");
        assert!(e3 > e2);
        d.remove(&k("101"));
        assert_eq!(d.live_epoch(&k("101")), None, "dead labels validate no hit");
        assert!(d.epoch_of(&k("101")) > e3, "removal is a structural event");
        // Re-insertion keeps the monotone clock: no ABA window.
        d.insert(k("101"), k("P1"));
        assert!(d.live_epoch(&k("101")).unwrap() > e3);
        // Bumping an unknown label interns it (pre-creation bump).
        d.bump_epoch(&k("777"));
        assert_eq!(d.epoch_of(&k("777")), 1);
        assert_eq!(d.live_epoch(&k("777")), None);
    }

    #[test]
    fn handoff_reports_both_sides_and_bumps_the_epoch() {
        let mut d = sample();
        let before = d.live_epoch(&k("101")).expect("live");
        let h = d.handoff(&k("101"), &k("P1"));
        assert_eq!(h.label, d.id_of(&k("101")).unwrap());
        assert_eq!(h.from, d.id_of(&k("P2")));
        assert_eq!(h.to, d.id_of(&k("P1")).unwrap());
        assert_eq!(d.host_of(&k("101")), Some(&k("P1")));
        assert!(
            d.live_epoch(&k("101")).unwrap() > before,
            "a handoff is a structural event"
        );
        // Promoting a dead label reports no previous owner.
        d.remove(&k("101"));
        let h = d.handoff(&k("101"), &k("P7"));
        assert_eq!(h.from, None);
        assert_eq!(d.host_of(&k("101")), Some(&k("P7")));
        // A snapshot mirrors the table after the moves.
        let mut snap = Vec::new();
        d.host_snapshot(&mut snap);
        assert_eq!(snap.len(), d.interned_len());
        let lid = d.id_of(&k("101")).unwrap();
        assert_eq!(snap[lid as usize], d.id_of(&k("P7")).unwrap());
    }

    #[test]
    fn clear_retains_interner_but_drops_labels() {
        let mut d = sample();
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.host_of(&k("101")), None);
        d.insert(k("101"), k("P1"));
        assert_eq!(d.len(), 1);
    }
}

//! Fault injection as a transport decorator.
//!
//! [`FaultyTransport`] wraps any [`Transport`] — the synchronous FIFO
//! pump, the discrete-event latency queue or the threaded frame
//! channels — and injects seeded, deterministic message loss,
//! duplication, reordering and healable partitions according to a
//! [`FaultPlan`]. Nothing in the engine or the runtimes knows whether
//! the transport underneath them is faulty; they only gain the retry
//! and idempotency machinery that faults make necessary.
//!
//! Determinism rules (what keeps the golden fingerprint byte-identical
//! when faults are off, and lossy runs reproducible when they are on):
//!
//! 1. Fault draws come from a dedicated [`StdRng`] seeded by
//!    `FaultPlan::seed`, never from the system RNG — installing a plan
//!    cannot shift peer-identifier or entry-point draws.
//! 2. A message outside the faultable class ([`is_faultable`]) is
//!    delivered without consuming a draw.
//! 3. A partitioned destination drops the message without consuming a
//!    draw (the partition is a deterministic predicate, not a coin).
//! 4. An inert plan ([`FaultPlan::is_inert`]) delivers without
//!    consuming a draw — a default-plan decorator is exactly the inner
//!    transport.
//! 5. Otherwise exactly **one** uniform draw decides
//!    loss / duplication / deferral / delivery.

use crate::engine::Transport;
use crate::key::Key;
use crate::messages::{Address, Envelope, Message, NodeMsg, PeerMsg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Configuration for seeded fault injection. The default plan is
/// fully inert: every rate zero, no partition, zero RNG consumption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a faultable message is dropped in transit.
    pub loss_rate: f64,
    /// Probability a faultable message is delivered twice.
    pub dup_rate: f64,
    /// Probability a faultable message is deferred past everything
    /// currently queued (released at the next quiescence flush).
    pub reorder_rate: f64,
    /// Seed of the dedicated fault RNG; independent of the system RNG.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            loss_rate: 0.0,
            dup_rate: 0.0,
            reorder_rate: 0.0,
            seed: 0,
        }
    }
}

impl FaultPlan {
    /// Whether the plan can never alter a delivery (all rates zero).
    pub fn is_inert(&self) -> bool {
        self.loss_rate <= 0.0 && self.dup_rate <= 0.0 && self.reorder_rate <= 0.0
    }
}

/// Counters for everything the fault layer did — kept separate from
/// [`SystemStats`](crate::metrics::SystemStats) so that fault-free
/// runs (where every field stays zero) keep the committed golden
/// fingerprint byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped by the loss rate.
    pub lost: u64,
    /// Messages delivered twice by the duplication rate.
    pub duplicated: u64,
    /// Messages deferred past the current queue by the reorder rate.
    pub reordered: u64,
    /// Messages dropped at a severed partition boundary.
    pub partition_dropped: u64,
    /// Duplicated client responses suppressed by the engine's
    /// per-request idempotency filter.
    pub duplicates_suppressed: u64,
    /// Request retries issued by a runtime's bounded-retry loop.
    pub retries: u64,
    /// Requests explicitly failed after exhausting their retry budget.
    pub requests_failed: u64,
    /// Frames failed explicitly at a runtime's frame-retry budget
    /// (previously a silent drop / process abort).
    pub frames_exhausted: u64,
}

impl FaultStats {
    /// Adds `other` into `self`, field by field.
    pub fn merge(&mut self, other: &FaultStats) {
        self.lost += other.lost;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.partition_dropped += other.partition_dropped;
        self.duplicates_suppressed += other.duplicates_suppressed;
        self.retries += other.retries;
        self.requests_failed += other.requests_failed;
        self.frames_exhausted += other.frames_exhausted;
    }
}

/// The faultable message class: discovery traffic, its client
/// responses, and cache invalidations — the messages whose loss the
/// retry/idempotency machinery can absorb. Mutations, joins and
/// replication repair are modelled as reliable (their loss would not
/// degrade the overlay, it would corrupt it: a half-applied insert or
/// a lost `PromoteReplica` has no protocol-level recovery path).
pub fn is_faultable(msg: &Message) -> bool {
    matches!(
        msg,
        Message::Node(NodeMsg::Discovery(_))
            | Message::ClientResponse(_)
            | Message::Peer(PeerMsg::InvalidateCached { .. })
    )
}

/// What the fault layer decided for one envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Deliver,
    Drop,
    Duplicate,
    Defer,
}

/// Owns the fault plan, its dedicated RNG, the deferred-envelope
/// buffer and the (healable) partition. One `Faults` lives in each
/// runtime; [`FaultyTransport`] borrows it per delivery so the same
/// seeded draw stream spans the whole run.
#[derive(Debug)]
pub struct Faults {
    plan: FaultPlan,
    rng: StdRng,
    partition: Option<(Key, Key)>,
    deferred: VecDeque<Envelope>,
    /// Counters incremented by fault draws and by the runtimes'
    /// retry/exhaustion paths.
    pub stats: FaultStats,
}

impl Faults {
    /// Creates the fault state for `plan`, seeding the dedicated RNG.
    pub fn new(plan: FaultPlan) -> Self {
        Faults {
            rng: StdRng::seed_from_u64(plan.seed ^ 0xFA_07_FA_07),
            plan,
            partition: None,
            deferred: VecDeque::new(),
            stats: FaultStats::default(),
        }
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether the fault layer can do anything at all. Runtimes gate
    /// their retry loops and decorator wrapping on this so the
    /// fault-off hot path is untouched.
    pub fn is_active(&self) -> bool {
        !self.plan.is_inert() || self.partition.is_some()
    }

    /// Severs the lexicographic key range `[lo, hi)`: faultable
    /// messages addressed to a peer or node whose key falls in the
    /// range are dropped until [`heal`](Self::heal). Client-addressed
    /// responses pass (the client is not on the overlay).
    pub fn partition(&mut self, lo: Key, hi: Key) {
        self.partition = Some((lo, hi));
    }

    /// Heals the partition; subsequent deliveries flow normally.
    pub fn heal(&mut self) {
        self.partition = None;
    }

    /// Whether a partition is currently severed.
    pub fn is_partitioned(&self) -> bool {
        self.partition.is_some()
    }

    fn severed(&self, to: &Address) -> bool {
        let Some((lo, hi)) = &self.partition else {
            return false;
        };
        let key = match to {
            Address::Peer(id) => id,
            Address::Node(label) => label,
            Address::Client(_) => return false,
        };
        key >= lo && key < hi
    }

    fn verdict(&mut self, env: &Envelope) -> Verdict {
        if !is_faultable(&env.msg) {
            return Verdict::Deliver;
        }
        if self.severed(&env.to) {
            self.stats.partition_dropped += 1;
            return Verdict::Drop;
        }
        if self.plan.is_inert() {
            return Verdict::Deliver;
        }
        let draw: f64 = self.rng.gen();
        let mut threshold = self.plan.loss_rate;
        if draw < threshold {
            self.stats.lost += 1;
            return Verdict::Drop;
        }
        threshold += self.plan.dup_rate;
        if draw < threshold {
            self.stats.duplicated += 1;
            return Verdict::Duplicate;
        }
        threshold += self.plan.reorder_rate;
        if draw < threshold {
            self.stats.reordered += 1;
            return Verdict::Defer;
        }
        Verdict::Deliver
    }

    /// Releases every deferred envelope into `inner` (without a second
    /// fault draw: a deferred message is late, not lost twice — and
    /// redrawing could starve delivery forever, breaking the
    /// termination guarantee the retry loop relies on). Runtimes call
    /// this when their queue runs dry and loop while it returns
    /// `true`.
    pub fn flush_deferred<T: Transport>(&mut self, inner: &mut T) -> bool {
        if self.deferred.is_empty() {
            return false;
        }
        while let Some(env) = self.deferred.pop_front() {
            inner.deliver(env);
        }
        true
    }
}

/// The decorator: a [`Transport`] that forwards to `inner` according
/// to the fault draws of a borrowed [`Faults`].
#[derive(Debug)]
pub struct FaultyTransport<'f, T: Transport> {
    inner: T,
    faults: &'f mut Faults,
}

impl<'f, T: Transport> FaultyTransport<'f, T> {
    /// Wraps `inner` with the fault state of `faults`.
    pub fn new(inner: T, faults: &'f mut Faults) -> Self {
        FaultyTransport { inner, faults }
    }
}

impl<T: Transport> Transport for FaultyTransport<'_, T> {
    fn deliver(&mut self, env: Envelope) {
        match self.faults.verdict(&env) {
            Verdict::Deliver => self.inner.deliver(env),
            Verdict::Drop => {}
            Verdict::Duplicate => {
                self.inner.deliver(env.clone());
                self.inner.deliver(env);
            }
            Verdict::Defer => self.faults.deferred.push_back(env),
        }
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FifoTransport;
    use crate::messages::{DiscoveryMsg, DiscoveryOutcome, QueryKind, RoutePhase};

    fn discovery_env(label: &str) -> Envelope {
        Envelope {
            to: Address::node(label),
            msg: Message::Node(NodeMsg::Discovery(DiscoveryMsg {
                request_id: 7,
                query: QueryKind::Exact(Key::from(label)),
                phase: RoutePhase::Up,
                path: Vec::new(),
            })),
        }
    }

    fn response_env(id: u64) -> Envelope {
        Envelope {
            to: Address::Client(id),
            msg: Message::ClientResponse(DiscoveryOutcome {
                request_id: id,
                satisfied: true,
                dropped: false,
                results: vec![Key::from("DGEMM")],
                path: vec![Key::from("D")],
                pending_children: 0,
            }),
        }
    }

    /// A non-faultable mutation-class message.
    fn reliable_env() -> Envelope {
        Envelope {
            to: Address::node("DG"),
            msg: Message::Node(NodeMsg::DataInsertion {
                key: Key::from("DGEMM"),
            }),
        }
    }

    #[test]
    fn default_plan_is_inert_and_draws_no_randomness() {
        let mut faults = Faults::new(FaultPlan::default());
        let mut inner = FifoTransport::default();
        let mut t = FaultyTransport::new(&mut inner, &mut faults);
        for i in 0..20 {
            t.deliver(discovery_env("DG"));
            t.deliver(response_env(i));
            t.deliver(reliable_env());
        }
        assert_eq!(inner.queue.len(), 60);
        assert_eq!(faults.stats, FaultStats::default());
        assert!(!faults.is_active());
        // The RNG was never advanced: a fresh clone of the same seed
        // produces the identical next draw.
        let mut fresh = Faults::new(FaultPlan::default());
        assert_eq!(faults.rng.gen::<u64>(), fresh.rng.gen::<u64>());
    }

    #[test]
    fn certain_loss_drops_faultable_but_never_reliable_messages() {
        let plan = FaultPlan {
            loss_rate: 1.0,
            ..FaultPlan::default()
        };
        let mut faults = Faults::new(plan);
        let mut inner = FifoTransport::default();
        let mut t = FaultyTransport::new(&mut inner, &mut faults);
        for _ in 0..10 {
            t.deliver(discovery_env("DG"));
            t.deliver(reliable_env());
        }
        assert_eq!(inner.queue.len(), 10, "mutations are modelled reliable");
        assert_eq!(faults.stats.lost, 10);
    }

    #[test]
    fn certain_duplication_delivers_twice() {
        let plan = FaultPlan {
            dup_rate: 1.0,
            ..FaultPlan::default()
        };
        let mut faults = Faults::new(plan);
        let mut inner = FifoTransport::default();
        FaultyTransport::new(&mut inner, &mut faults).deliver(response_env(3));
        assert_eq!(inner.queue.len(), 2);
        assert_eq!(inner.queue[0], inner.queue[1]);
        assert_eq!(faults.stats.duplicated, 1);
    }

    #[test]
    fn deferral_holds_until_flush_then_delivers_without_redraw() {
        let plan = FaultPlan {
            reorder_rate: 1.0,
            ..FaultPlan::default()
        };
        let mut faults = Faults::new(plan);
        let mut inner = FifoTransport::default();
        FaultyTransport::new(&mut inner, &mut faults).deliver(discovery_env("DG"));
        assert!(inner.queue.is_empty());
        assert_eq!(faults.stats.reordered, 1);
        assert!(faults.flush_deferred(&mut inner));
        assert_eq!(inner.queue.len(), 1, "flush bypasses the fault draw");
        assert!(!faults.flush_deferred(&mut inner));
    }

    #[test]
    fn partition_severs_a_key_range_and_heals() {
        let mut faults = Faults::new(FaultPlan::default());
        faults.partition(Key::from("D"), Key::from("E"));
        assert!(faults.is_active(), "a partition alone activates faults");
        let mut inner = FifoTransport::default();
        let mut t = FaultyTransport::new(&mut inner, &mut faults);
        t.deliver(discovery_env("DG")); // in [D, E): severed
        t.deliver(discovery_env("SG")); // outside: delivered
        t.deliver(response_env(1)); // client-addressed: always passes
        t.deliver(reliable_env()); // reliable class: partition does not apply
        assert_eq!(inner.queue.len(), 3);
        assert_eq!(faults.stats.partition_dropped, 1);
        faults.heal();
        assert!(!faults.is_active());
        let mut t = FaultyTransport::new(&mut inner, &mut faults);
        t.deliver(discovery_env("DG"));
        assert_eq!(inner.queue.len(), 4);
    }

    #[test]
    fn same_seed_same_verdicts() {
        let plan = FaultPlan {
            loss_rate: 0.3,
            dup_rate: 0.2,
            reorder_rate: 0.1,
            seed: 99,
        };
        let run = || {
            let mut faults = Faults::new(plan);
            let mut inner = FifoTransport::default();
            let mut t = FaultyTransport::new(&mut inner, &mut faults);
            for i in 0..200 {
                t.deliver(response_env(i));
            }
            faults.flush_deferred(&mut inner);
            let stats = faults.stats;
            (inner.queue.len(), stats)
        };
        assert_eq!(run(), run());
        let (delivered, stats) = run();
        assert!(stats.lost > 0 && stats.duplicated > 0 && stats.reordered > 0);
        assert_eq!(
            delivered as u64,
            200 - stats.lost + stats.duplicated,
            "deferred messages are late, not lost"
        );
    }
}

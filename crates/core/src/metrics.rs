//! Counters describing runtime behaviour of the overlay.
//!
//! These feed the experiment harness (`dlpt-sim`) and the benches; the
//! overlay itself never reads them back.

/// Message and maintenance counters of a [`crate::system::DlptSystem`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// `PeerJoin` / `NewPredecessor` / `YourInformation` /
    /// `UpdateSuccessor` / `UpdatePredecessor` messages processed.
    pub join_messages: u64,
    /// `DataInsertion` / `UpdateChild` messages processed.
    pub insert_messages: u64,
    /// `SearchingHost` / `Host` messages processed.
    pub host_messages: u64,
    /// Discovery visits processed (accepted by capacity).
    pub discovery_messages: u64,
    /// Discovery visits ignored by exhausted peers.
    pub discovery_drops: u64,
    /// `TakeOver` and other departure messages processed.
    pub maintenance_messages: u64,
    /// Envelopes requeued because their destination was in flight.
    pub requeues: u64,
    /// Envelopes abandoned after exhausting the requeue budget.
    pub undeliverable: u64,
    /// Nodes migrated between peers by load balancing.
    pub balance_migrations: u64,
    /// Peer identifier changes performed by MLT boundary moves.
    pub peer_renames: u64,
    /// Tree nodes lost to peer crashes.
    pub nodes_lost: u64,
    /// Orphaned nodes re-attached by tree repair.
    pub nodes_reattached: u64,
}

impl SystemStats {
    /// Total protocol messages processed (excluding client responses).
    pub fn total_messages(&self) -> u64 {
        self.join_messages
            + self.insert_messages
            + self.host_messages
            + self.discovery_messages
            + self.maintenance_messages
    }

    /// Resets every counter; the simulator calls this between phases
    /// when it wants per-phase message costs.
    pub fn reset(&mut self) {
        *self = SystemStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_reset() {
        let mut s = SystemStats {
            join_messages: 2,
            insert_messages: 3,
            host_messages: 4,
            discovery_messages: 5,
            maintenance_messages: 6,
            ..Default::default()
        };
        assert_eq!(s.total_messages(), 20);
        s.reset();
        assert_eq!(s, SystemStats::default());
    }
}

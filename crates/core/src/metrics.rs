//! Counters describing runtime behaviour of the overlay.
//!
//! These feed the experiment harness (`dlpt-sim`) and the benches; the
//! overlay itself never reads them back.

/// Message and maintenance counters of a [`crate::system::DlptSystem`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// `PeerJoin` / `NewPredecessor` / `YourInformation` /
    /// `UpdateSuccessor` / `UpdatePredecessor` messages processed.
    pub join_messages: u64,
    /// `DataInsertion` / `UpdateChild` messages processed.
    pub insert_messages: u64,
    /// `SearchingHost` / `Host` messages processed.
    pub host_messages: u64,
    /// Discovery visits processed (accepted by capacity).
    pub discovery_messages: u64,
    /// Discovery visits ignored by exhausted peers.
    pub discovery_drops: u64,
    /// `TakeOver` and other departure messages processed.
    pub maintenance_messages: u64,
    /// Envelopes requeued because their destination was in flight.
    pub requeues: u64,
    /// Envelopes abandoned after exhausting the requeue budget.
    pub undeliverable: u64,
    /// Nodes migrated between peers by load balancing.
    pub balance_migrations: u64,
    /// Peer identifier changes performed by MLT boundary moves.
    pub peer_renames: u64,
    /// Tree nodes lost to peer crashes.
    pub nodes_lost: u64,
    /// Orphaned nodes re-attached by tree repair.
    pub nodes_reattached: u64,
}

impl SystemStats {
    /// Total protocol messages processed (excluding client responses).
    pub fn total_messages(&self) -> u64 {
        self.join_messages
            + self.insert_messages
            + self.host_messages
            + self.discovery_messages
            + self.maintenance_messages
    }

    /// Total visible work processed: every delivered protocol message
    /// **plus** the work spent on envelopes that went nowhere —
    /// capacity drops (`discovery_drops`), in-flight deferrals
    /// (`requeues`) and abandoned deliveries (`undeliverable`).
    ///
    /// [`SystemStats::total_messages`] deliberately counts only
    /// *delivered* messages (the paper's message-cost metric); under
    /// contention that understates what the overlay actually did — a
    /// dropped visit still consumed a peer's attention and a requeue
    /// still crossed the transport. Figure report lines use this total
    /// so contention is visible in the committed message costs.
    pub fn total_work(&self) -> u64 {
        self.total_messages() + self.discovery_drops + self.requeues + self.undeliverable
    }

    /// Resets every counter; the simulator calls this between phases
    /// when it wants per-phase message costs.
    pub fn reset(&mut self) {
        *self = SystemStats::default();
    }
}

/// Visits bucketed by tree depth (root = depth 0) — the paper-facing
/// evidence for the caching subsystem: the up/down route visits every
/// level above the target, so the upper tree dominates the histogram,
/// and routing shortcuts (`crate::cache`) flatten exactly that region.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepthHistogram {
    /// `counts[d]` = visits observed at depth `d`; grows on demand.
    pub counts: Vec<u64>,
}

impl DepthHistogram {
    /// Records one visit at `depth`.
    pub fn record(&mut self, depth: usize) {
        if self.counts.len() <= depth {
            self.counts.resize(depth + 1, 0);
        }
        self.counts[depth] += 1;
    }

    /// Accumulates another histogram into this one.
    pub fn merge(&mut self, other: &DepthHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (d, c) in other.counts.iter().enumerate() {
            self.counts[d] += c;
        }
    }

    /// Total visits recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Share of all visits landing at depths `< depth` (the
    /// "upper-tree" fraction), as a percentage. 0 when empty.
    pub fn share_above(&self, depth: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let upper: u64 = self.counts.iter().take(depth).sum();
        100.0 * upper as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_histogram_records_merges_and_shares() {
        let mut h = DepthHistogram::default();
        h.record(0);
        h.record(0);
        h.record(3);
        assert_eq!(h.counts, vec![2, 0, 0, 1]);
        assert_eq!(h.total(), 3);
        let mut other = DepthHistogram::default();
        other.record(1);
        other.record(5);
        h.merge(&other);
        assert_eq!(h.counts, vec![2, 1, 0, 1, 0, 1]);
        assert_eq!(h.total(), 5);
        assert!((h.share_above(2) - 60.0).abs() < 1e-9);
        assert_eq!(DepthHistogram::default().share_above(3), 0.0);
    }

    #[test]
    fn totals_and_reset() {
        let mut s = SystemStats {
            join_messages: 2,
            insert_messages: 3,
            host_messages: 4,
            discovery_messages: 5,
            maintenance_messages: 6,
            discovery_drops: 7,
            requeues: 8,
            undeliverable: 9,
            ..Default::default()
        };
        assert_eq!(s.total_messages(), 20);
        // total_work folds the non-delivery work back in.
        assert_eq!(s.total_work(), 20 + 7 + 8 + 9);
        s.reset();
        assert_eq!(s, SystemStats::default());
    }
}

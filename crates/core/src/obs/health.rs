//! System-health observatory: deterministic cluster snapshots, the
//! invariant-audit vocabulary, and per-component memory accounting.
//!
//! Where `obs` proper answers *request-scoped* questions (what did one
//! lookup do?), this module answers *system-scoped* ones: how are
//! logical nodes and load distributed over peers and depths, is the
//! structure still internally consistent, and what does a node cost in
//! bytes. Three cooperating pieces:
//!
//! * [`HealthSnapshot`] — a preallocated record filled in place by
//!   [`Engine::collect_health`](crate::engine::Engine::collect_health)
//!   on demand or on a unit cadence. Collection is a pure read of
//!   engine state (no counters in the hot path, no allocation once the
//!   buffers are warm), so health-off runs are byte-identical to the
//!   golden fingerprint and health-on runs are deterministic per seed,
//!   including `workers > 1`.
//! * [`Violation`] / [`AuditCheck`] — the structured result vocabulary
//!   of [`Engine::audit`](crate::engine::Engine::audit), which checks
//!   directory↔slab↔trie↔replication cross-consistency and returns
//!   findings instead of panicking.
//! * [`MemoryFootprint`] — the result of
//!   [`Engine::bytes_estimate`](crate::engine::Engine::bytes_estimate),
//!   a deterministic walk over Directory / peer slab / shards / route
//!   caches, embedded in every snapshot as bytes-per-node and
//!   bytes-per-peer.
//!
//! Exporters serialise a snapshot as one JSONL object (fixed key
//! order, fixed float precision — two seeded runs diff clean) or as
//! Prometheus-style gauge text.

use crate::cache::CacheStats;
use crate::transport::FaultStats;
use std::fmt::{self, Write as _};

/// Per-peer health row: one peer's share of the structure and of this
/// unit's traffic. Fixed-size, reused across snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerHealth {
    /// The peer's interned directory id.
    pub peer: u32,
    /// Logical nodes the directory maps onto this peer.
    pub nodes: u32,
    /// Follower replica copies held (0 when the shard is remote).
    pub replicas: u32,
    /// Capacity charged this unit (`used`; 0 when the shard is remote
    /// or admission is uncharged).
    pub used: u32,
    /// The peer's admission capacity (`u32::MAX` ≈ unbounded).
    pub capacity: u32,
    /// Messages handled since the last snapshot: discovery visits
    /// recorded on this peer's nodes and replicas in the current unit.
    pub messages: u64,
    /// Worker-slice index (1-based) that owned this peer's shard in
    /// the last parallel batch; 0 when no batch has run or the shard
    /// was not partitioned (sequential pump only).
    pub slice: u16,
}

/// Estimated resident bytes per engine component, from a deterministic
/// length-based walk (Vec capacities are counted where the engine owns
/// the Vec; map overheads use fixed per-entry estimates, so the result
/// is a function of logical state, not allocator history).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Directory: interned keys (+ spilled key heap), id map, host and
    /// follower tables, epochs.
    pub directory_bytes: usize,
    /// Peer slab: id index, slot array, free list (excluding the
    /// shards and caches the slots own, counted separately).
    pub slab_bytes: usize,
    /// Locally hosted shards: peer state plus node and replica maps,
    /// including each node's child/data key sets.
    pub shard_bytes: usize,
    /// Route caches: slot arrays, index maps and spilled shortcut keys.
    pub cache_bytes: usize,
}

impl MemoryFootprint {
    /// Total estimated bytes across every component.
    pub fn total(&self) -> usize {
        self.directory_bytes + self.slab_bytes + self.shard_bytes + self.cache_bytes
    }

    /// Bytes per logical node (0.0 when the tree is empty).
    pub fn per_node(&self, nodes: u64) -> f64 {
        if nodes == 0 {
            0.0
        } else {
            self.total() as f64 / nodes as f64
        }
    }

    /// Bytes per peer (0.0 when there are no peers).
    pub fn per_peer(&self, peers: u64) -> f64 {
        if peers == 0 {
            0.0
        } else {
            self.total() as f64 / peers as f64
        }
    }
}

/// One filled system snapshot. Every buffer is preallocated by the
/// owning [`HealthMonitor`] and reused; collection never allocates
/// once the buffers have reached their high-water marks.
#[derive(Debug, Clone, Default)]
pub struct HealthSnapshot {
    /// The time unit (or collection index) this snapshot describes.
    pub unit: u64,
    /// Live peers (ring members).
    pub peers: u64,
    /// Live logical nodes (directory entries).
    pub nodes: u64,
    /// Node count per tree depth (`depth_occupancy[d]` = nodes at
    /// depth `d`; empty when no shard is hosted locally).
    pub depth_occupancy: Vec<u64>,
    /// Per-peer rows in ring (lexicographic member) order.
    pub per_peer: Vec<PeerHealth>,
    /// Max/mean of per-peer messages handled this unit (1.0 = perfectly
    /// balanced, 0.0 when no messages flowed).
    pub max_over_mean: f64,
    /// Gini coefficient over per-peer messages handled this unit
    /// (0.0 = equal shares, →1.0 = one peer does everything).
    pub gini: f64,
    /// Deepest occupied tree level.
    pub max_depth: u64,
    /// Information-theoretic depth floor `log2(nodes + 1)` — the depth
    /// a perfectly balanced binary PGCP tree of this size would have.
    pub optimal_depth: f64,
    /// Labels whose live follower count is below the replication
    /// target `min(k − 1, peers − 1)`.
    pub under_replicated: u64,
    /// Route-cache hits since the last snapshot.
    pub cache_hits: u64,
    /// Stale-shortcut evictions since the last snapshot.
    pub cache_stale: u64,
    /// Shortcuts learned since the last snapshot.
    pub cache_learned: u64,
    /// Fault-layer counter deltas since the last snapshot.
    pub faults: FaultStats,
    /// Violations reported by the last `Engine::audit` pass, when the
    /// collector ran one (0 otherwise).
    pub audit_violations: u64,
    /// Worker-slice count of the last parallel batch (0 when only the
    /// sequential pump has run).
    pub slices: u64,
    /// Peak SPSC ring occupancy observed during the last parallel
    /// batch (0 when only the sequential pump has run).
    pub ring_peak: u64,
    /// Memory accounting for the whole engine at snapshot time.
    pub bytes: MemoryFootprint,
}

/// Owns a [`HealthSnapshot`] plus the previous-counter state needed to
/// turn cumulative engine counters into per-snapshot deltas, and the
/// scratch buffers the collection walk reuses. Create one per engine
/// and pass it to `Engine::collect_health` at each observation point.
#[derive(Debug, Default)]
pub struct HealthMonitor {
    /// The most recently collected snapshot.
    pub snap: HealthSnapshot,
    /// Cache counters at the previous collection.
    pub(crate) prev_cache: CacheStats,
    /// Fault counters at the previous collection.
    pub(crate) prev_faults: FaultStats,
    /// Scratch: per-peer message loads, sorted for the Gini walk.
    pub(crate) scratch_loads: Vec<u64>,
    /// Scratch: interned peer id → row index in `snap.per_peer`.
    pub(crate) scratch_rows: Vec<u32>,
}

impl HealthMonitor {
    /// A monitor with empty buffers; the first collection sizes them.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Which audit pass produced a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditCheck {
    /// Directory self-consistency: interned ids resolve, hosts are
    /// live members with slab slots.
    Directory,
    /// Peer-slab integrity: id↔slot bijection, free-list partition.
    Slab,
    /// The mapping rule: every label's host is the lowest peer ≥ it.
    Mapping,
    /// Ring links: every local shard's pred/succ match ring order.
    Ring,
    /// PGCP trie invariants on locally hosted nodes.
    Trie,
    /// Replication bookkeeping: follower counts ≤ k − 1, followers
    /// live.
    Replication,
    /// Route-cache shortcuts reference plausible (non-future) epochs.
    Cache,
}

impl AuditCheck {
    /// Stable lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            AuditCheck::Directory => "directory",
            AuditCheck::Slab => "slab",
            AuditCheck::Mapping => "mapping",
            AuditCheck::Ring => "ring",
            AuditCheck::Trie => "trie",
            AuditCheck::Replication => "replication",
            AuditCheck::Cache => "cache",
        }
    }
}

/// One structured audit finding: which cross-consistency check failed
/// and a human-readable account of the offending state. Returned (never
/// panicked) so fault/partition scenarios can audit mid-recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The audit pass that failed.
    pub check: AuditCheck,
    /// What exactly is inconsistent.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check.name(), self.detail)
    }
}

/// Max/mean and Gini over a scratch slice of per-peer loads. Sorts the
/// slice in place (ascending); returns `(max_over_mean, gini)`, both
/// 0.0 when the slice is empty or all-zero.
pub(crate) fn imbalance_of(loads: &mut [u64]) -> (f64, f64) {
    let n = loads.len() as u64;
    let sum: u64 = loads.iter().sum();
    if n == 0 || sum == 0 {
        return (0.0, 0.0);
    }
    loads.sort_unstable();
    let max = *loads.last().unwrap();
    let mean = sum as f64 / n as f64;
    // G = (2 Σ i·x_i) / (n Σ x) − (n + 1)/n, i ascending 1-based.
    let weighted: u128 = loads
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as u128 + 1) * x as u128)
        .sum();
    let gini = (2.0 * weighted as f64) / (n as f64 * sum as f64) - (n as f64 + 1.0) / n as f64;
    (max as f64 / mean, gini.max(0.0))
}

impl HealthSnapshot {
    /// Appends this snapshot as one JSON object line to `out`. Fixed
    /// key order and fixed float precision (`{:.4}` ratios, `{:.1}`
    /// bytes) keep two seeded runs byte-identical. `cfg` and `run` tag
    /// the experiment and run index the line belongs to.
    pub fn write_jsonl_line(&self, cfg: &str, run: u64, out: &mut String) {
        let f = &self.faults;
        let _ = write!(
            out,
            "{{\"cfg\":\"{}\",\"run\":{},\"unit\":{},\"peers\":{},\"nodes\":{},\
             \"max_depth\":{},\"opt_depth\":{:.4},\"imbalance\":{:.4},\"gini\":{:.4},\
             \"under_replicated\":{},\"cache_hits\":{},\"cache_stale\":{},\"cache_learned\":{},\
             \"lost\":{},\"duplicated\":{},\"reordered\":{},\"partition_dropped\":{},\
             \"dedup_suppressed\":{},\"retries\":{},\"requests_failed\":{},\"violations\":{},\
             \"slices\":{},\"ring_peak\":{},\
             \"bytes_total\":{},\"bytes_directory\":{},\"bytes_slab\":{},\"bytes_shards\":{},\
             \"bytes_caches\":{},\"bytes_per_node\":{:.1},\"bytes_per_peer\":{:.1},\
             \"depth_occupancy\":[",
            cfg,
            run,
            self.unit,
            self.peers,
            self.nodes,
            self.max_depth,
            self.optimal_depth,
            self.max_over_mean,
            self.gini,
            self.under_replicated,
            self.cache_hits,
            self.cache_stale,
            self.cache_learned,
            f.lost,
            f.duplicated,
            f.reordered,
            f.partition_dropped,
            f.duplicates_suppressed,
            f.retries,
            f.requests_failed,
            self.audit_violations,
            self.slices,
            self.ring_peak,
            self.bytes.total(),
            self.bytes.directory_bytes,
            self.bytes.slab_bytes,
            self.bytes.shard_bytes,
            self.bytes.cache_bytes,
            self.bytes.per_node(self.nodes),
            self.bytes.per_peer(self.peers),
        );
        for (i, c) in self.depth_occupancy.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        out.push_str("],\"peer_load\":[");
        for (i, p) in self.per_peer.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "[{},{},{},{},{},{}]",
                p.peer, p.nodes, p.replicas, p.used, p.messages, p.slice
            );
        }
        out.push_str("]}\n");
    }

    /// Appends this snapshot as Prometheus-style gauge text. One
    /// `# TYPE` header per family, per-peer gauges labelled by interned
    /// id — deterministic for the same reason as the JSONL form.
    pub fn write_prometheus(&self, out: &mut String) {
        let scalars: [(&str, f64); 12] = [
            ("dlpt_peers", self.peers as f64),
            ("dlpt_nodes", self.nodes as f64),
            ("dlpt_max_depth", self.max_depth as f64),
            ("dlpt_optimal_depth", self.optimal_depth),
            ("dlpt_load_imbalance", self.max_over_mean),
            ("dlpt_load_gini", self.gini),
            ("dlpt_under_replicated", self.under_replicated as f64),
            ("dlpt_audit_violations", self.audit_violations as f64),
            ("dlpt_bytes_total", self.bytes.total() as f64),
            ("dlpt_unit", self.unit as f64),
            ("dlpt_pump_slices", self.slices as f64),
            ("dlpt_pump_ring_peak", self.ring_peak as f64),
        ];
        for (name, v) in scalars {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v:.4}");
        }
        let counters: [(&str, u64); 6] = [
            ("dlpt_cache_hits", self.cache_hits),
            ("dlpt_cache_stale", self.cache_stale),
            ("dlpt_cache_learned", self.cache_learned),
            ("dlpt_frames_lost", self.faults.lost),
            ("dlpt_frames_duplicated", self.faults.duplicated),
            ("dlpt_retries", self.faults.retries),
        ];
        for (name, v) in counters {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        let _ = writeln!(out, "# TYPE dlpt_peer_nodes gauge");
        for p in &self.per_peer {
            let _ = writeln!(out, "dlpt_peer_nodes{{peer=\"{}\"}} {}", p.peer, p.nodes);
        }
        let _ = writeln!(out, "# TYPE dlpt_peer_messages gauge");
        for p in &self.per_peer {
            let _ = writeln!(
                out,
                "dlpt_peer_messages{{peer=\"{}\"}} {}",
                p.peer, p.messages
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_of_degenerate_slices() {
        assert_eq!(imbalance_of(&mut []), (0.0, 0.0));
        assert_eq!(imbalance_of(&mut [0, 0, 0]), (0.0, 0.0));
        // Perfect balance: max/mean 1, Gini 0.
        let (m, g) = imbalance_of(&mut [5, 5, 5, 5]);
        assert!((m - 1.0).abs() < 1e-12);
        assert!(g.abs() < 1e-12);
        // Total concentration on one of n peers: max/mean = n,
        // Gini = (n-1)/n.
        let (m, g) = imbalance_of(&mut [0, 0, 0, 12]);
        assert!((m - 4.0).abs() < 1e-12);
        assert!((g - 0.75).abs() < 1e-12);
    }

    #[test]
    fn footprint_ratios_guard_division_by_zero() {
        let fp = MemoryFootprint {
            directory_bytes: 100,
            slab_bytes: 20,
            shard_bytes: 300,
            cache_bytes: 4,
        };
        assert_eq!(fp.total(), 424);
        assert_eq!(fp.per_node(0), 0.0);
        assert_eq!(fp.per_peer(0), 0.0);
        assert!((fp.per_node(4) - 106.0).abs() < 1e-12);
    }

    #[test]
    fn jsonl_line_is_deterministic_and_flat() {
        let mut snap = HealthSnapshot {
            unit: 3,
            peers: 2,
            nodes: 5,
            max_depth: 2,
            optimal_depth: 2.585,
            max_over_mean: 1.5,
            gini: 0.25,
            ..Default::default()
        };
        snap.depth_occupancy = vec![1, 2, 2];
        snap.per_peer = vec![
            PeerHealth {
                peer: 0,
                nodes: 3,
                messages: 9,
                slice: 1,
                ..Default::default()
            },
            PeerHealth {
                peer: 1,
                nodes: 2,
                messages: 3,
                slice: 2,
                ..Default::default()
            },
        ];
        snap.slices = 2;
        snap.ring_peak = 7;
        let mut a = String::new();
        let mut b = String::new();
        snap.write_jsonl_line("t", 0, &mut a);
        snap.write_jsonl_line("t", 0, &mut b);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"cfg\":\"t\",\"run\":0,\"unit\":3,"));
        assert!(a.ends_with("]}\n"));
        assert!(a.contains("\"depth_occupancy\":[1,2,2]"));
        assert!(a.contains("\"slices\":2,\"ring_peak\":7"));
        assert!(a.contains("\"peer_load\":[[0,3,0,0,9,1],[1,2,0,0,3,2]]"));

        let mut prom = String::new();
        snap.write_prometheus(&mut prom);
        assert!(prom.contains("dlpt_peers 2.0000"));
        assert!(prom.contains("dlpt_pump_slices 2.0000"));
        assert!(prom.contains("dlpt_peer_nodes{peer=\"0\"} 3"));
    }

    #[test]
    fn violations_render_with_check_names() {
        let v = Violation {
            check: AuditCheck::Mapping,
            detail: "node x hosted off-rule".into(),
        };
        assert_eq!(v.to_string(), "[mapping] node x hosted off-rule");
        assert_eq!(AuditCheck::Cache.name(), "cache");
    }
}

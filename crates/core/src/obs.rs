//! Request-scoped tracing and allocation-free metrics for the engine.
//!
//! Two cooperating facilities, both native to the interned-id engine:
//!
//! * **Tracing** ([`Tracer`], [`TraceEvent`]): fixed-size structured
//!   events (≤ 32 bytes, u32 ids, never a `Key` clone) emitted from the
//!   engine's admission / routing / gather / retry paths into a
//!   preallocated ring buffer ([`TraceRing`]). Off by default: the
//!   [`Tracer::Noop`] variant reduces every emission site to one
//!   predictable branch, keeping the fault-off hot path allocation-free
//!   and the golden determinism fingerprint byte-identical.
//! * **Metrics** ([`MetricsRegistry`], [`Histogram`]): fixed-size
//!   log-bucketed histograms of per-request hops, ticks, gather fan-out
//!   and retry counts with p50/p90/p99 extraction. Always on — the
//!   buckets are preallocated at engine construction and recording is a
//!   couple of integer ops, so there is nothing to switch off.
//!
//! Events carry the same `(round, worker, seq)` tag that the parallel
//! pump uses to fold client responses deterministically, so traces from
//! a sharded run merge into the exact order a sequential run would have
//! produced. Exporters ([`write_jsonl`], [`write_chrome_trace`])
//! serialise an event slice without consulting the directory — the
//! output is a pure function of the events, hence byte-stable across
//! repeats and worker counts.

pub mod health;

use std::io::{self, Write};

/// What happened, one discriminant per schema row. The numeric values
/// are part of the JSONL schema (`kind` field) — append only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A request entered the system. `a` = entry node id, `b` = entry
    /// host peer id.
    Admit = 0,
    /// A discovery envelope was accepted by a node. `a` = node id,
    /// `b` = hosting peer id, `depth` = hops travelled so far.
    Hop = 1,
    /// The entry peer's route cache produced a fresh shortcut.
    /// `a` = entry node id.
    CacheHit = 2,
    /// The route cache held a shortcut whose epoch was stale; it was
    /// evicted and the request took the full route. `a` = entry node id.
    CacheStale = 3,
    /// The route cache was consulted and held nothing usable.
    /// `a` = entry node id.
    CacheMiss = 4,
    /// A gather response fanned out into child branches. `a` = number
    /// of branches opened, `depth` = responder depth.
    BranchOpen = 5,
    /// A gather branch closed (leaf response, no children).
    /// `depth` = responder depth.
    BranchClose = 6,
    /// The request was re-armed and its origin envelope re-issued after
    /// a suspected loss. `a` = retry attempt number (1-based).
    Retry = 7,
    /// A duplicated satisfied response was recognised by the
    /// idempotency filter and discarded.
    DedupSuppress = 8,
    /// A discovery visit was dropped: refused by an exhausted peer
    /// (`flags` = 0) or abandoned as undeliverable (`flags` = 1).
    /// `a` = node id when known.
    Drop = 9,
    /// The request finalised satisfied. `a` = result count,
    /// `b` = gather visits, `depth` = logical hops.
    Satisfy = 10,
    /// The request finalised unsatisfied (dropped branches or
    /// unresolved fan-out). `a` = result count, `b` = gather visits,
    /// `depth` = logical hops.
    Fail = 11,
}

impl EventKind {
    /// Stable lower-case schema name, used by the JSONL exporter.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Admit => "admit",
            EventKind::Hop => "hop",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheStale => "cache_stale",
            EventKind::CacheMiss => "cache_miss",
            EventKind::BranchOpen => "branch_open",
            EventKind::BranchClose => "branch_close",
            EventKind::Retry => "retry",
            EventKind::DedupSuppress => "dedup_suppress",
            EventKind::Drop => "drop",
            EventKind::Satisfy => "satisfy",
            EventKind::Fail => "fail",
        }
    }
}

/// One fixed-size trace record. Fields `a`/`b`/`depth` are
/// kind-dependent (see [`EventKind`]); ids are interned u32s from the
/// engine [`crate::directory::Directory`], so an event never clones a
/// `Key`. `(round, worker, seq)` is the deterministic merge tag:
/// sequential runtimes stamp `(0, 0, ring seq)`, the parallel pump
/// stamps the same tag its response fold sorts by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Request id (low 32 bits of the engine's request counter).
    pub request: u32,
    /// First kind-dependent operand (usually a node id).
    pub a: u32,
    /// Second kind-dependent operand (usually a peer id).
    pub b: u32,
    /// Pump round the event was produced in (0 outside the pump).
    pub round: u32,
    /// Per-producer monotonic sequence number.
    pub seq: u32,
    /// Event discriminant.
    pub kind: EventKind,
    /// Kind-dependent flag bits.
    pub flags: u8,
    /// Producing worker (0 outside the parallel pump).
    pub worker: u16,
    /// Kind-dependent depth / hop count, saturated at `u16::MAX`.
    pub depth: u16,
}

// The tentpole contract: events stay register-sized so a full ring is
// a few hundred KiB and emission is a handful of moves.
const _: () = assert!(std::mem::size_of::<TraceEvent>() <= 32);

impl TraceEvent {
    /// An untagged sequential event: `(round, worker)` = `(0, 0)`,
    /// `seq` stamped by the ring at emission. `request` keeps the low
    /// 32 bits of the engine's request counter; `depth` saturates.
    #[inline]
    pub fn new(kind: EventKind, request: u64, a: u32, b: u32, depth: usize) -> Self {
        TraceEvent {
            request: request as u32,
            a,
            b,
            round: 0,
            seq: 0,
            kind,
            flags: 0,
            worker: 0,
            depth: depth.min(u16::MAX as usize) as u16,
        }
    }
}

/// The deterministic merge key: events sort exactly like the parallel
/// pump's response fold.
#[inline]
pub fn merge_key(ev: &TraceEvent) -> (u32, u16, u32) {
    (ev.round, ev.worker, ev.seq)
}

/// Preallocated bounded event buffer. When full, the oldest event is
/// overwritten and `dropped` counts the loss — tracing never grows the
/// heap after construction.
#[derive(Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest retained event.
    head: usize,
    /// Events currently retained.
    len: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
    /// Next engine-side sequence number (monotonic across drains).
    seq: u32,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events, fully
    /// preallocated up front.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            len: 0,
            dropped: 0,
            seq: 0,
        }
    }

    /// Appends one event, overwriting the oldest when full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
            self.len += 1;
        } else {
            let at = (self.head + self.len) % self.capacity;
            self.buf[at] = ev;
            if self.len < self.capacity {
                self.len += 1;
            } else {
                self.head = (self.head + 1) % self.capacity;
                self.dropped += 1;
            }
        }
    }

    /// Takes and returns the next engine-side sequence number.
    #[inline]
    pub fn next_seq(&mut self) -> u32 {
        let s = self.seq;
        self.seq = self.seq.wrapping_add(1);
        s
    }

    /// Events retained right now.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events lost to overwrites since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains every retained event in arrival order. Capacity and the
    /// sequence counter are kept, so drains can be interleaved with
    /// emission without renumbering.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            out.push(self.buf[(self.head + i) % self.capacity]);
        }
        self.head = 0;
        self.len = 0;
        self.buf.clear();
        out
    }
}

/// The engine's tracing hook. [`Tracer::Noop`] (the default) keeps
/// every emission site down to one branch; [`Tracer::Ring`] records
/// into a preallocated [`TraceRing`].
///
/// Enum dispatch rather than a trait object keeps the engine concrete
/// (no generic parameter, no vtable) and lets the compiler fold the
/// off-path to nothing.
#[derive(Debug, Default)]
pub enum Tracer {
    /// Tracing off: emissions are discarded before being built.
    #[default]
    Noop,
    /// Tracing on: events land in the ring.
    Ring(TraceRing),
}

impl Tracer {
    /// True when events will actually be recorded. Emission sites gate
    /// on this so the off path never constructs an event.
    #[inline]
    pub fn enabled(&self) -> bool {
        matches!(self, Tracer::Ring(_))
    }

    /// Records `ev`, stamping the engine-side sequence number. No-op
    /// when tracing is off — but call sites should gate on
    /// [`Tracer::enabled`] first so the event is never even built.
    #[inline]
    pub fn emit(&mut self, mut ev: TraceEvent) {
        if let Tracer::Ring(ring) = self {
            ev.seq = ring.next_seq();
            ring.push(ev);
        }
    }

    /// Records an already-tagged event verbatim (parallel-pump workers
    /// stamp their own `(round, worker, seq)`).
    #[inline]
    pub fn absorb(&mut self, ev: TraceEvent) {
        if let Tracer::Ring(ring) = self {
            ring.push(ev);
        }
    }

    /// Drains buffered events; empty when tracing is off.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        match self {
            Tracer::Noop => Vec::new(),
            Tracer::Ring(ring) => ring.drain(),
        }
    }
}

/// Number of exact unit-width buckets at the bottom of a [`Histogram`].
const EXACT: usize = 16;
/// Sub-buckets per octave above the exact range.
const SUBS: usize = 8;
/// First octave covered by log-linear buckets (values `16..32`).
const FIRST_OCTAVE: u32 = 4;
/// Total bucket count: exact range + 8 sub-buckets for each of the
/// octaves `4..=63`.
const BUCKETS: usize = EXACT + (64 - FIRST_OCTAVE as usize) * SUBS;

/// Fixed-size log-linear histogram over `u64` values.
///
/// Values below 16 get exact unit buckets; above that, each power-of-two
/// octave is split into 8 equal sub-buckets, so any quantile read back
/// from a bucket's lower bound is below the true value by less than
/// 12.5% (`1/8` of the value, the sub-bucket width). All 496 buckets
/// are preallocated at construction — recording is two shifts, a
/// subtract and an increment, and never allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram with every bucket preallocated.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of `v`.
    #[inline]
    fn index(v: u64) -> usize {
        if v < EXACT as u64 {
            v as usize
        } else {
            let octave = 63 - v.leading_zeros();
            let sub = ((v >> (octave - 3)) - SUBS as u64) as usize;
            EXACT + (octave - FIRST_OCTAVE) as usize * SUBS + sub
        }
    }

    /// Lower bound of bucket `i` — the value quantiles report.
    #[inline]
    fn lower_bound(i: usize) -> u64 {
        if i < EXACT {
            i as u64
        } else {
            let octave = (i - EXACT) as u32 / SUBS as u32 + FIRST_OCTAVE;
            let sub = ((i - EXACT) % SUBS) as u64;
            (SUBS as u64 + sub) << (octave - 3)
        }
    }

    /// Records one observation. Never allocates.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.total += 1;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of every bucket's lower bound weighted by its count — an
    /// under-estimate of the true sum with the same ≤ 12.5% bound as
    /// the quantiles.
    pub fn approx_sum(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c * Self::lower_bound(i))
            .sum()
    }

    /// The `q`-quantile (`0.0..=1.0`) as the lower bound of the bucket
    /// holding the rank-`⌊q·(n−1)⌋` observation; `None` when the
    /// histogram is empty (a bucket-0 bound would be indistinguishable
    /// from a real observation of 0). The reported value `r` satisfies
    /// `r ≤ true ≤ r + r/8` (exact below 16).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.total - 1) as f64) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Some(Self::lower_bound(i));
            }
        }
        Some(Self::lower_bound(BUCKETS - 1))
    }

    /// Accumulates another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Clears every bucket.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }
}

/// Per-engine registry of request-shape histograms. Preallocated at
/// engine construction (~16 KiB), recorded into at request
/// finalisation, and read back by `perf`'s percentile rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    /// Logical hops of the winning path per finished request.
    pub hops: Histogram,
    /// Per-request work ticks: path length plus gather visits — the
    /// engine-side proxy for how long the request stayed in flight.
    pub ticks: Histogram,
    /// Gather fan-out (partial reports folded) per finished request.
    pub fanout: Histogram,
    /// Retry attempts per finished request (0 on reliable transports).
    pub retries: Histogram,
}

impl MetricsRegistry {
    /// Records one finished request's shape.
    #[inline]
    pub fn record_request(&mut self, hops: u64, ticks: u64, fanout: u64, retries: u64) {
        self.hops.record(hops);
        self.ticks.record(ticks);
        self.fanout.record(fanout);
        self.retries.record(retries);
    }

    /// Accumulates another registry into this one.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        self.hops.merge(&other.hops);
        self.ticks.merge(&other.ticks);
        self.fanout.merge(&other.fanout);
        self.retries.merge(&other.retries);
    }

    /// Clears every histogram.
    pub fn reset(&mut self) {
        self.hops.reset();
        self.ticks.reset();
        self.fanout.reset();
        self.retries.reset();
    }
}

/// Writes one event per line as flat JSON, in slice order. Pure
/// function of the events — no directory access, no timestamps — so
/// two identical runs produce byte-identical files.
pub fn write_jsonl<W: Write>(events: &[TraceEvent], w: &mut W) -> io::Result<()> {
    for ev in events {
        writeln!(
            w,
            "{{\"req\":{},\"kind\":\"{}\",\"a\":{},\"b\":{},\"depth\":{},\"flags\":{},\"round\":{},\"worker\":{},\"seq\":{}}}",
            ev.request,
            ev.kind.name(),
            ev.a,
            ev.b,
            ev.depth,
            ev.flags,
            ev.round,
            ev.worker,
            ev.seq
        )?;
    }
    Ok(())
}

/// Writes a chrome://tracing (Trace Event Format) JSON array: each
/// request is a process (`pid`), each producing worker a thread
/// (`tid`), and every trace event a 1-tick complete span (`ph:"X"`)
/// whose timestamp is its deterministic merge position in the slice.
/// Deterministic for the same reason as [`write_jsonl`].
pub fn write_chrome_trace<W: Write>(events: &[TraceEvent], w: &mut W) -> io::Result<()> {
    write!(w, "[")?;
    for (ts, ev) in events.iter().enumerate() {
        if ts > 0 {
            write!(w, ",")?;
        }
        write!(
            w,
            "\n{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":1,\
             \"args\":{{\"a\":{},\"b\":{},\"depth\":{},\"flags\":{},\"round\":{},\"worker\":{},\"seq\":{}}}}}",
            ev.kind.name(),
            ev.request,
            ev.worker,
            ts,
            ev.a,
            ev.b,
            ev.depth,
            ev.flags,
            ev.round,
            ev.worker,
            ev.seq
        )?;
    }
    writeln!(w, "\n]")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn event_fits_in_32_bytes() {
        assert!(std::mem::size_of::<TraceEvent>() <= 32);
    }

    fn ev(seq: u32) -> TraceEvent {
        TraceEvent {
            request: 1,
            a: 2,
            b: 3,
            round: 0,
            seq,
            kind: EventKind::Hop,
            flags: 0,
            worker: 0,
            depth: 4,
        }
    }

    #[test]
    fn ring_retains_newest_when_full_and_counts_drops() {
        let mut ring = TraceRing::with_capacity(4);
        for s in 0..10 {
            ring.push(ev(s));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let drained: Vec<u32> = ring.drain().iter().map(|e| e.seq).collect();
        assert_eq!(drained, vec![6, 7, 8, 9]);
        assert!(ring.is_empty());
        // Post-drain pushes start clean.
        ring.push(ev(10));
        assert_eq!(ring.drain().len(), 1);
    }

    #[test]
    fn noop_tracer_discards_and_ring_tracer_records() {
        let mut t = Tracer::Noop;
        assert!(!t.enabled());
        t.emit(ev(0));
        assert!(t.drain().is_empty());
        let mut t = Tracer::Ring(TraceRing::with_capacity(8));
        assert!(t.enabled());
        t.emit(ev(99)); // seq is re-stamped by the ring
        t.emit(ev(99));
        let got = t.drain();
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].seq, got[1].seq), (0, 1));
        // emit() keeps numbering across drains; absorb() does not stamp.
        t.emit(ev(0));
        let got = t.drain();
        assert_eq!(got[0].seq, 2);
    }

    #[test]
    fn histogram_is_exact_below_sixteen() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(15));
        assert_eq!(h.count(), 16);
        assert_eq!(h.approx_sum(), (0..16).sum::<u64>());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(
                h.quantile(q),
                None,
                "empty histogram must report None at q={q}"
            );
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.approx_sum(), 0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = Histogram::new();
        h.record(7);
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(h.quantile(q), Some(7));
        }
        // Above the exact range the single sample still owns every
        // quantile, reported as its bucket's lower bound.
        let mut h = Histogram::new();
        h.record(1000);
        let got = h.quantile(0.5).unwrap();
        assert!(got <= 1000 && 1000 - got <= got / 8);
        assert_eq!(h.quantile(0.0), h.quantile(1.0));
    }

    #[test]
    fn top_bucket_saturates_without_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        // Both land in the final bucket; quantiles stay in range and
        // report that bucket's lower bound.
        let lb = Histogram::lower_bound(BUCKETS - 1);
        assert_eq!(h.quantile(0.0), Some(lb));
        assert_eq!(h.quantile(1.0), Some(lb));
        assert_eq!(h.count(), 2);
        // Mixing in a small sample keeps the order statistics sane.
        h.record(1);
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(lb));
    }

    #[test]
    fn histogram_bucket_roundtrip_on_boundaries() {
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1 << 20, u64::MAX] {
            let i = Histogram::index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            let lb = Histogram::lower_bound(i);
            assert!(lb <= v, "lower bound {lb} above value {v}");
            // Sub-bucket width is lb/(8+sub) ≤ lb/8.
            assert!(
                v - lb <= lb / 8,
                "value {v} more than 12.5% above bucket bound {lb}"
            );
        }
    }

    #[test]
    fn merge_and_reset() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(3);
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        a.reset();
        assert_eq!(a.count(), 0);
        assert_eq!(a.quantile(0.5), None);

        let mut r = MetricsRegistry::default();
        r.record_request(2, 5, 1, 0);
        let mut r2 = MetricsRegistry::default();
        r2.merge(&r);
        assert_eq!(r2.hops.count(), 1);
        r2.reset();
        assert_eq!(r2, MetricsRegistry::default());
    }

    #[test]
    fn exporters_are_deterministic_and_well_formed() {
        let events: Vec<TraceEvent> = (0..5).map(ev).collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_jsonl(&events, &mut a).unwrap();
        write_jsonl(&events, &mut b).unwrap();
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        assert_eq!(text.lines().count(), 5);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));

        let mut c = Vec::new();
        write_chrome_trace(&events, &mut c).unwrap();
        let chrome = String::from_utf8(c).unwrap();
        assert!(chrome.trim_start().starts_with('['));
        assert!(chrome.trim_end().ends_with(']'));
        assert_eq!(chrome.matches("\"ph\":\"X\"").count(), 5);
    }

    proptest! {
        /// The satellite bound: every histogram quantile sits within
        /// 12.5% below the exact sort-based quantile of the same data.
        #[test]
        fn histogram_quantiles_track_exact_quantiles(
            mut values in proptest::collection::vec(0u64..1_000_000, 1..400),
            qs in proptest::collection::vec(0.0f64..=1.0, 1..8),
        ) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            values.sort_unstable();
            for q in qs {
                let rank = (q * (values.len() - 1) as f64) as usize;
                let exact = values[rank];
                let got = h.quantile(q).expect("non-empty histogram has quantiles");
                prop_assert!(got <= exact, "q={q}: histogram {got} above exact {exact}");
                prop_assert!(
                    exact - got <= got / 8,
                    "q={q}: histogram {got} more than 12.5% below exact {exact}"
                );
            }
        }
    }
}

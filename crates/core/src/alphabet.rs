//! Digit alphabets `A` for the identifier space.
//!
//! Section 2 of the paper defines identifiers as finite sequences of
//! digits over a finite set `A` (the running example uses `A = {0, 1}`;
//! the evaluation uses names of linear-algebra routines, i.e. an ASCII
//! subset). The alphabet determines which bytes are valid in a
//! [`Key`], how random peer identifiers are drawn, and
//! how an identifier strictly between two others is synthesized for
//! load-balancing boundary moves.

use crate::error::{DlptError, Result};
use crate::key::Key;
use rand::Rng;

/// An ordered, finite set of digits.
///
/// Digits are bytes; their order is plain byte order so that the
/// lexicographic order on [`Key`]s agrees with `Ord` on the underlying
/// byte slices. Construction sorts and deduplicates the digit set.
#[derive(Clone)]
pub struct Alphabet {
    digits: Vec<u8>,
    /// `index_of[b]` is `Some(i)` iff `digits[i] == b`.
    index_of: [Option<u8>; 256],
    name: &'static str,
}

impl std::fmt::Debug for Alphabet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Alphabet")
            .field("name", &self.name)
            .field("size", &self.digits.len())
            .finish()
    }
}

impl PartialEq for Alphabet {
    fn eq(&self, other: &Self) -> bool {
        self.digits == other.digits
    }
}
impl Eq for Alphabet {}

impl Alphabet {
    /// Builds an alphabet from the given digits (sorted, deduplicated).
    ///
    /// # Panics
    /// Panics if `digits` is empty or has more than 255 distinct bytes
    /// (a digit index must fit in a `u8`).
    pub fn new(digits: &[u8], name: &'static str) -> Self {
        assert!(!digits.is_empty(), "alphabet must have at least one digit");
        let mut sorted: Vec<u8> = digits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(
            sorted.len() < 256,
            "alphabet must have fewer than 256 digits"
        );
        let mut index_of = [None; 256];
        for (i, &b) in sorted.iter().enumerate() {
            index_of[b as usize] = Some(i as u8);
        }
        Alphabet {
            digits: sorted,
            index_of,
            name,
        }
    }

    /// The binary alphabet `{0, 1}` used by Figure 1(a) of the paper.
    pub fn binary() -> Self {
        Alphabet::new(b"01", "binary")
    }

    /// Decimal digits `{0..9}`.
    pub fn decimal() -> Self {
        Alphabet::new(b"0123456789", "decimal")
    }

    /// The alphabet of grid service names: digits, uppercase letters,
    /// underscore and lowercase letters — enough for BLAS ("DGEMM"),
    /// Sun S3L ("S3L_mat_mult") and ScaLAPACK ("PSGESV") routine names
    /// as used in Section 4 of the paper.
    pub fn grid() -> Self {
        let mut digits: Vec<u8> = Vec::with_capacity(64);
        digits.extend(b'0'..=b'9');
        digits.extend(b'A'..=b'Z');
        digits.push(b'_');
        digits.extend(b'a'..=b'z');
        Alphabet::new(&digits, "grid")
    }

    /// Short human-readable name for reports.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of digits `|A|`.
    pub fn len(&self) -> usize {
        self.digits.len()
    }

    /// True iff the alphabet has exactly one digit (degenerate but legal).
    pub fn is_empty(&self) -> bool {
        false // constructor enforces at least one digit
    }

    /// The digits in ascending order.
    pub fn digits(&self) -> &[u8] {
        &self.digits
    }

    /// Smallest digit.
    pub fn min_digit(&self) -> u8 {
        self.digits[0]
    }

    /// Largest digit.
    pub fn max_digit(&self) -> u8 {
        *self.digits.last().expect("non-empty")
    }

    /// True iff `b` is a digit of this alphabet.
    pub fn contains(&self, b: u8) -> bool {
        self.index_of[b as usize].is_some()
    }

    /// Index of digit `b`, if it belongs to the alphabet.
    pub fn index_of(&self, b: u8) -> Option<usize> {
        self.index_of[b as usize].map(|i| i as usize)
    }

    /// The digit following `b`, if any.
    pub fn next_digit(&self, b: u8) -> Option<u8> {
        let i = self.index_of(b)?;
        self.digits.get(i + 1).copied()
    }

    /// Validates that every byte of `key` is a digit of this alphabet.
    pub fn validate(&self, key: &Key) -> Result<()> {
        for (position, &byte) in key.as_bytes().iter().enumerate() {
            if !self.contains(byte) {
                return Err(DlptError::InvalidDigit { byte, position });
            }
        }
        Ok(())
    }

    /// Draws a uniformly random identifier of exactly `len` digits.
    pub fn random_id<R: Rng + ?Sized>(&self, rng: &mut R, len: usize) -> Key {
        let bytes: Vec<u8> = (0..len)
            .map(|_| self.digits[rng.gen_range(0..self.digits.len())])
            .collect();
        Key::from_bytes(bytes)
    }

    /// Synthesizes an identifier strictly between `a` and `b`
    /// (`a < result < b` lexicographically), if one exists in this
    /// alphabet. Used when a load-balancing boundary move needs to park
    /// a peer just above its predecessor without colliding with any
    /// node identifier.
    ///
    /// Strategy: try `a` extended by one digit (any extension of `a`
    /// is `> a`); pick the smallest extension and check it is `< b`.
    /// If `b` is exactly `a` followed by a run of minimal digits, keep
    /// extending.
    pub fn id_between(&self, a: &Key, b: &Key) -> Option<Key> {
        if a >= b {
            return None;
        }
        // Candidate: `a` extended by the minimal digit — the smallest
        // identifier strictly above `a`. If even that is not below `b`
        // (i.e. b == a + min_digit), nothing fits: every other
        // extension of `a` is larger still, and everything else is
        // outside (a, b).
        let mut candidate = a.as_bytes().to_vec();
        candidate.push(self.min_digit());
        let key = Key::from_bytes(candidate);
        if &key < b {
            Some(key)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binary_alphabet_basics() {
        let a = Alphabet::binary();
        assert_eq!(a.len(), 2);
        assert!(a.contains(b'0'));
        assert!(a.contains(b'1'));
        assert!(!a.contains(b'2'));
        assert_eq!(a.min_digit(), b'0');
        assert_eq!(a.max_digit(), b'1');
        assert_eq!(a.next_digit(b'0'), Some(b'1'));
        assert_eq!(a.next_digit(b'1'), None);
    }

    #[test]
    fn grid_alphabet_accepts_routine_names() {
        let a = Alphabet::grid();
        for name in ["DGEMM", "S3L_mat_mult", "PSGESV", "dtrsm_0"] {
            assert!(a.validate(&Key::from(name)).is_ok(), "{name}");
        }
        assert!(a.validate(&Key::from("BAD-NAME")).is_err());
    }

    #[test]
    fn validate_reports_position() {
        let a = Alphabet::binary();
        let err = a.validate(&Key::from("0102")).unwrap_err();
        assert_eq!(
            err,
            DlptError::InvalidDigit {
                byte: b'2',
                position: 3
            }
        );
    }

    #[test]
    fn digits_are_sorted_and_deduplicated() {
        let a = Alphabet::new(b"zba1a", "test");
        assert_eq!(a.digits(), b"1abz");
    }

    #[test]
    fn random_ids_are_valid_and_deterministic() {
        let a = Alphabet::grid();
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let k1 = a.random_id(&mut r1, 12);
        let k2 = a.random_id(&mut r2, 12);
        assert_eq!(k1, k2);
        assert_eq!(k1.len(), 12);
        a.validate(&k1).unwrap();
    }

    #[test]
    fn id_between_simple() {
        let a = Alphabet::binary();
        let lo = Key::from("0");
        let hi = Key::from("1");
        let mid = a.id_between(&lo, &hi).unwrap();
        assert!(lo < mid && mid < hi);
    }

    #[test]
    fn id_between_extension_chain() {
        let a = Alphabet::binary();
        // Between "0" and "00" nothing fits: "00" is the minimal
        // extension of "0".
        assert_eq!(a.id_between(&Key::from("0"), &Key::from("00")), None);
        // Between "0" and "01" fits "00".
        assert_eq!(
            a.id_between(&Key::from("0"), &Key::from("01")),
            Some(Key::from("00"))
        );
    }

    #[test]
    fn id_between_rejects_unordered() {
        let a = Alphabet::binary();
        assert_eq!(a.id_between(&Key::from("1"), &Key::from("0")), None);
        assert_eq!(a.id_between(&Key::from("1"), &Key::from("1")), None);
    }

    #[test]
    fn id_between_from_empty() {
        let a = Alphabet::binary();
        let eps = Key::epsilon();
        let hi = Key::from("1");
        let mid = a.id_between(&eps, &hi).unwrap();
        assert!(eps < mid && mid < hi);
    }
}

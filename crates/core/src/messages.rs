//! Protocol messages.
//!
//! One variant per message of the paper's Algorithms 1–3 plus the
//! discovery traffic of Section 2. Every network interaction in the
//! overlay is an [`Envelope`] — an address plus a [`Message`] — so the
//! same handler code runs under the synchronous pump
//! ([`crate::system::DlptSystem`]), the discrete-event simulator and
//! the threaded live runtime (`dlpt-net`).

use crate::key::Key;
use crate::node::NodeState;

/// Where an envelope is delivered.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Address {
    /// A peer (physical machine), by peer identifier.
    Peer(Key),
    /// A logical tree node, by label; the runtime resolves the hosting
    /// peer through its directory (in a deployment the link tables
    /// carry the host address alongside the label).
    Node(Key),
    /// The client that issued a discovery request, by request id.
    Client(u64),
}

impl Address {
    /// Convenience constructor.
    pub fn node(label: impl Into<Key>) -> Self {
        Address::Node(label.into())
    }
    /// Convenience constructor.
    pub fn peer(id: impl Into<Key>) -> Self {
        Address::Peer(id.into())
    }
}

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Destination.
    pub to: Address,
    /// Payload.
    pub msg: Message,
}

impl Envelope {
    /// Reassembles an envelope from its parts (used by runtimes that
    /// destructure for zero-clone dispatch and must requeue).
    pub fn to_address(to: Address, msg: Message) -> Self {
        Envelope { to, msg }
    }

    /// Builds an envelope to a node.
    pub fn to_node(label: Key, msg: NodeMsg) -> Self {
        Envelope {
            to: Address::Node(label),
            msg: Message::Node(msg),
        }
    }
    /// Builds an envelope to a peer.
    pub fn to_peer(id: Key, msg: PeerMsg) -> Self {
        Envelope {
            to: Address::Peer(id),
            msg: Message::Peer(msg),
        }
    }
    /// Builds an envelope back to a client.
    pub fn to_client(request_id: u64, outcome: DiscoveryOutcome) -> Self {
        Envelope {
            to: Address::Client(request_id),
            msg: Message::ClientResponse(outcome),
        }
    }
}

/// Payload of an [`Envelope`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Handled by the logical node the envelope addresses.
    Node(NodeMsg),
    /// Handled by the peer the envelope addresses.
    Peer(PeerMsg),
    /// Terminal delivery of a discovery outcome.
    ClientResponse(DiscoveryOutcome),
}

/// The two routing phases of Algorithm 1 (the `s` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinPhase {
    /// `s = 0`: climbing toward a node prefixing the joining peer
    /// (or the root).
    Up,
    /// `s = 1`: descending toward the highest node `<=` the joining
    /// peer.
    Down,
}

/// The state a freshly created node travels with — the
/// `(l, f, C, δ)` tuple of `SearchingHost` / `Host`
/// (Algorithm 3, lines 3.32–3.37).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSeed {
    /// Label of the node being created.
    pub label: Key,
    /// Father link (`None` when the node becomes the root).
    pub father: Option<Key>,
    /// Initial children.
    pub children: Vec<Key>,
    /// Initial data set `δ`.
    pub data: Vec<Key>,
}

impl NodeSeed {
    /// Snapshots a live node's state (label, links and data — load
    /// counters are per-host and do not travel).
    pub fn of(node: &NodeState) -> Self {
        NodeSeed {
            label: node.label.clone(),
            father: node.father.clone(),
            children: node.children.iter().cloned().collect(),
            data: node.data.iter().cloned().collect(),
        }
    }

    /// Materializes the node state this seed describes.
    pub fn into_state(self) -> NodeState {
        let mut n = NodeState::new(self.label);
        n.father = self.father;
        n.children = self.children.into_iter().collect();
        n.data = self.data.into_iter().collect();
        n
    }
}

/// The kinds of service-discovery queries the DLPT supports
/// (Section 2: exact search, range queries, automatic completion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryKind {
    /// Exact lookup of one key.
    Exact(Key),
    /// All keys in the inclusive interval `[lo, hi]`.
    Range(Key, Key),
    /// All keys extending a partial search string.
    Complete(Key),
}

impl QueryKind {
    /// The routing target: the label region the query must reach.
    /// Exact → the key; range → the GCP of the bounds; completion →
    /// the prefix itself.
    pub fn target(&self) -> Key {
        match self {
            QueryKind::Exact(k) => k.clone(),
            QueryKind::Range(lo, hi) => lo.gcp(hi),
            QueryKind::Complete(p) => p.clone(),
        }
    }

    /// Whether a registered key satisfies the query.
    pub fn matches(&self, key: &Key) -> bool {
        match self {
            QueryKind::Exact(k) => key == k,
            QueryKind::Range(lo, hi) => key >= lo && key <= hi,
            QueryKind::Complete(p) => p.is_prefix_of(key),
        }
    }
}

/// Routing phase of a discovery request (Section 2: "moves upward
/// until reaching a node whose subtree contains the requested node and
/// then moves \[down\] to this node").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePhase {
    /// Climbing toward a node covering the target.
    Up,
    /// Descending toward the target's node.
    Down,
    /// Scatter phase over a subtree (range / completion only).
    Gather,
}

/// A discovery request in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveryMsg {
    /// Correlates the request with its client.
    pub request_id: u64,
    /// What is being searched.
    pub query: QueryKind,
    /// Current routing phase.
    pub phase: RoutePhase,
    /// Labels of the nodes visited so far, entry node first. Used for
    /// hop accounting (Figure 9) — a deployment would carry a counter.
    pub path: Vec<Key>,
}

/// Messages handled by logical tree nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeMsg {
    /// Algorithm 1: `<PeerJoin, P, s>`.
    PeerJoin {
        /// Identifier of the joining peer.
        joining: Key,
        /// Routing phase (`s`).
        phase: JoinPhase,
    },
    /// Algorithm 3: `<DataInsertion, k>`.
    DataInsertion {
        /// Key being registered.
        key: Key,
    },
    /// Algorithm 3 lines 3.32–3.35: `<SearchingHost, (l, f, C, δ)>` —
    /// descends to the highest node `<=` the new label.
    SearchingHost {
        /// The new node's state in flight.
        seed: NodeSeed,
    },
    /// `<UpdateChild, (old, new)>`: replace `old` by `new` in the
    /// recipient's child set.
    UpdateChild {
        /// Child label to replace.
        old: Key,
        /// Replacement label.
        new: Key,
    },
    /// Deregistration (extension over the paper, which never deletes):
    /// routed like `DataInsertion`; the owning node drops the datum
    /// and dissolves itself if it became redundant.
    DataRemoval {
        /// Key being deregistered.
        key: Key,
    },
    /// Remove `child` from the recipient's child set (a child
    /// dissolved itself). The recipient dissolves too if it is left
    /// structural with fewer than two children.
    RemoveChild {
        /// Child label to drop.
        child: Key,
    },
    /// Overwrite the recipient's father link (its old father dissolved
    /// and this lifts it one level).
    SetFather {
        /// New father (`None` makes the recipient the root).
        father: Option<Key>,
    },
    /// A discovery request visiting this node.
    Discovery(DiscoveryMsg),
}

/// Messages handled by peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerMsg {
    /// Algorithm 2: `<NewPredecessor, P>` — a joining peer P has been
    /// routed to this region of the ring.
    NewPredecessor {
        /// Identifier of the joining peer.
        joining: Key,
    },
    /// `<YourInformation, (pred, succ, ν)>` — the joining peer's
    /// bootstrap state (Algorithm 2 line 2.08).
    YourInformation {
        /// The new peer's predecessor.
        pred: Key,
        /// The new peer's successor.
        succ: Key,
        /// The nodes handed over (`ν_P = {n ∈ ν_Q : n <= P}`).
        nodes: Vec<NodeState>,
    },
    /// `<UpdateSuccessor, P>` — the recipient's successor is now `P`
    /// (Algorithm 2 line 2.09).
    UpdateSuccessor {
        /// New successor id.
        succ: Key,
    },
    /// Counterpart used by graceful departure: the recipient's
    /// predecessor is now `P`.
    UpdatePredecessor {
        /// New predecessor id.
        pred: Key,
    },
    /// `<Host, (l, f, C, δ)>` (Algorithm 3 line 3.37) — install the
    /// node on this peer. The handler re-forwards along the ring if the
    /// label falls outside the peer's arc, which closes the gap the
    /// paper leaves open between the host-search endpoint and the
    /// mapping rule.
    Host {
        /// The new node's state in flight.
        seed: NodeSeed,
    },
    /// Graceful departure hand-off: the leaving predecessor transfers
    /// its nodes and its predecessor link to the recipient.
    TakeOver {
        /// The leaving peer's predecessor becomes the recipient's.
        pred: Key,
        /// Nodes handed over.
        nodes: Vec<NodeState>,
    },
    /// Anti-entropy kick (replication extension, see
    /// `protocol::repair`): the recipient re-clones every node it runs
    /// onto its `k - 1` ring successors by emitting [`PeerMsg::Replicate`]
    /// walks.
    SyncReplicas {
        /// Replication factor the overlay is converging to (primary
        /// plus `k - 1` followers).
        k: u32,
    },
    /// Store (or refresh) a follower copy of a node, then forward the
    /// walk to the recipient's own successor while `ttl > 1`. The walk
    /// stops early when it wraps around to the primary (rings smaller
    /// than `k`).
    Replicate {
        /// The peer hosting the authoritative copy.
        primary: Key,
        /// Remaining follower copies to place (this one included).
        ttl: u32,
        /// Snapshot of the node being replicated.
        seed: NodeSeed,
    },
    /// Discard the follower copy of `label` (the node dissolved, or the
    /// replica set moved elsewhere on the ring).
    DropReplica {
        /// Label of the replica copy to drop.
        label: Key,
    },
    /// Failover: the recipient promotes its follower copy of `label` to
    /// an authoritative hosted node (its primary crashed). No-op if the
    /// recipient holds no copy.
    PromoteReplica {
        /// Label of the replica copy to promote.
        label: Key,
    },
    /// Eager cache invalidation (caching extension, `dlpt_core::cache`):
    /// node `label` dissolved or migrated, so the recipient must drop
    /// every routing shortcut through it that was learned at or before
    /// `epoch`. Purely an optimization — the per-hit epoch check
    /// already catches stale shortcuts lazily — sent only where the
    /// invalidation is cheap (dissolutions and migrations, both rare
    /// fan-out events).
    InvalidateCached {
        /// Label whose shortcuts are stale.
        label: Key,
        /// The label's epoch after the mutation; fresher shortcuts
        /// (re-learned since) survive a late or reordered invalidation.
        epoch: u64,
    },
}

/// Terminal result of a discovery request, or one partial report of a
/// scatter/gather traversal (range and completion queries fan out over
/// a subtree; every visited node reports its matches and how many
/// children it forwarded to, and the client aggregates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveryOutcome {
    /// Correlates with the issuing client.
    pub request_id: u64,
    /// True iff the request reached the node owning the target
    /// ("satisfied" in the paper's sense) and, for exact queries,
    /// found the key registered.
    pub satisfied: bool,
    /// True iff an exhausted peer ignored the request.
    pub dropped: bool,
    /// Matching keys (exact: zero or one; range/completion: many).
    pub results: Vec<Key>,
    /// Labels of the nodes visited, entry first.
    pub path: Vec<Key>,
    /// For gather partials: number of children this report's node
    /// forwarded the query to (the aggregator keeps a completion
    /// counter). Zero for terminal outcomes.
    pub pending_children: u32,
}

impl DiscoveryOutcome {
    /// Number of tree edges traversed.
    pub fn logical_hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    #[test]
    fn query_targets() {
        assert_eq!(QueryKind::Exact(k("DGEMM")).target(), k("DGEMM"));
        assert_eq!(QueryKind::Range(k("DGEMM"), k("DGEMV")).target(), k("DGEM"));
        assert_eq!(QueryKind::Complete(k("S3L")).target(), k("S3L"));
    }

    #[test]
    fn query_matching() {
        let range = QueryKind::Range(k("B"), k("D"));
        assert!(range.matches(&k("B")));
        assert!(range.matches(&k("CC")));
        assert!(range.matches(&k("D")));
        assert!(!range.matches(&k("DD")));
        assert!(!range.matches(&k("A")));

        let comp = QueryKind::Complete(k("S3L"));
        assert!(comp.matches(&k("S3L_mat_mult")));
        assert!(comp.matches(&k("S3L")));
        assert!(!comp.matches(&k("SGEMM")));
    }

    #[test]
    fn seed_materializes_state() {
        let seed = NodeSeed {
            label: k("101"),
            father: Some(Key::epsilon()),
            children: vec![k("10101"), k("10111")],
            data: vec![k("101")],
        };
        let n = seed.into_state();
        assert_eq!(n.label, k("101"));
        assert_eq!(n.father, Some(Key::epsilon()));
        assert_eq!(n.children.len(), 2);
        assert!(n.data.contains(&k("101")));
    }

    #[test]
    fn outcome_hop_count() {
        let o = DiscoveryOutcome {
            request_id: 1,
            satisfied: true,
            dropped: false,
            results: vec![],
            path: vec![k("a"), k("ab"), k("abc")],
            pending_children: 0,
        };
        assert_eq!(o.logical_hops(), 2);
    }

    #[test]
    fn envelope_constructors() {
        let e = Envelope::to_node(k("n"), NodeMsg::DataInsertion { key: k("x") });
        assert_eq!(e.to, Address::Node(k("n")));
        let e = Envelope::to_peer(k("p"), PeerMsg::UpdateSuccessor { succ: k("s") });
        assert_eq!(e.to, Address::Peer(k("p")));
    }
}

//! The self-contained node→peer mapping.
//!
//! Section 3: "The mapping scheme ensures that the peer `P` chosen to
//! run a given node `n` always satisfies the condition that `P` is the
//! lowest peer id higher than `n`. Recall that if `∀n ∈ N` such that
//! `n > P_max`, the peer running `n` is `P_min`." Together with
//! Algorithm 2 line 2.06 (`ν_P = {n ∈ ν_p : n <= P}`) this pins the
//! convention: a node whose identifier *equals* a peer identifier stays
//! on that peer, i.e.
//!
//! ```text
//! host(n) = min { P ∈ peers : P >= n }, wrapping to P_min
//! ```
//!
//! Avoiding the DHT of the original DLPT design is the paper's first
//! contribution; this successor rule is what preserves lexicographic
//! locality (Figure 9): consecutive tree nodes tend to land on the same
//! peer, so most logical hops cost no physical message.

use crate::key::Key;
use std::collections::BTreeSet;

/// Computes `host(n)` over an ordered peer set: the lowest peer id
/// `>= n`, wrapping to the minimum. Returns `None` for an empty set.
/// Borrows from the set — a routing decision allocates nothing.
pub fn host_of<'a>(peers: &'a BTreeSet<Key>, n: &Key) -> Option<&'a Key> {
    peers
        .range::<Key, _>(n..)
        .next()
        .or_else(|| peers.iter().next())
}

/// [`host_of`] over the key set of an ordered shard map (the shape the
/// shard-owning runtimes keep) — same rule, no peer-set snapshot.
pub fn host_over_shards<'a, V>(
    shards: &'a std::collections::BTreeMap<Key, V>,
    n: &Key,
) -> Option<&'a Key> {
    shards
        .range::<Key, _>(n..)
        .next()
        .map(|(k, _)| k)
        .or_else(|| shards.keys().next())
}

/// The predecessor of `id` in the ordered peer set, wrapping to the
/// maximum; `None` for an empty set. When `id` is itself the only
/// peer, its predecessor is itself.
pub fn pred_of<'a>(peers: &'a BTreeSet<Key>, id: &Key) -> Option<&'a Key> {
    peers
        .range::<Key, _>(..id)
        .next_back()
        .or_else(|| peers.iter().next_back())
}

/// The successor of `id` in the ordered peer set, wrapping to the
/// minimum; `None` for an empty set.
pub fn succ_of<'a>(peers: &'a BTreeSet<Key>, id: &Key) -> Option<&'a Key> {
    use std::ops::Bound;
    peers
        .range::<Key, _>((Bound::Excluded(id), Bound::Unbounded))
        .next()
        .or_else(|| peers.iter().next())
}

/// A violated mapping expectation, reported by validators in
/// [`crate::system::DlptSystem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingViolation {
    /// Node `n` lives on `actual` but the rule demands `expected`.
    WrongHost {
        /// The node's label.
        node: Key,
        /// Peer currently hosting it.
        actual: Key,
        /// Peer the successor rule demands.
        expected: Key,
    },
    /// A peer's `pred`/`succ` pointer disagrees with the ring order.
    BrokenRingLink {
        /// The peer with the bad pointer.
        peer: Key,
        /// Description of the bad link.
        detail: String,
    },
}

impl std::fmt::Display for MappingViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingViolation::WrongHost {
                node,
                actual,
                expected,
            } => write!(f, "node {node} hosted on {actual}, rule demands {expected}"),
            MappingViolation::BrokenRingLink { peer, detail } => {
                write!(f, "ring link broken at {peer}: {detail}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn peers(ids: &[&str]) -> BTreeSet<Key> {
        ids.iter().map(|s| k(s)).collect()
    }

    #[test]
    fn host_is_lowest_peer_at_or_above() {
        let ps = peers(&["D", "M", "T"]);
        assert_eq!(host_of(&ps, &k("A")), Some(&k("D")));
        assert_eq!(host_of(&ps, &k("D")), Some(&k("D")), "equality stays");
        assert_eq!(host_of(&ps, &k("E")), Some(&k("M")));
        assert_eq!(host_of(&ps, &k("M")), Some(&k("M")));
        assert_eq!(host_of(&ps, &k("N")), Some(&k("T")));
    }

    #[test]
    fn host_wraps_to_minimum() {
        let ps = peers(&["D", "M", "T"]);
        // n > P_max → P_min (paper's wrap rule).
        assert_eq!(host_of(&ps, &k("Z")), Some(&k("D")));
    }

    #[test]
    fn host_of_empty_is_none() {
        assert_eq!(host_of(&BTreeSet::new(), &k("A")), None);
    }

    #[test]
    fn pred_and_succ_wrap() {
        let ps = peers(&["D", "M", "T"]);
        assert_eq!(pred_of(&ps, &k("D")), Some(&k("T")));
        assert_eq!(pred_of(&ps, &k("M")), Some(&k("D")));
        assert_eq!(succ_of(&ps, &k("T")), Some(&k("D")));
        assert_eq!(succ_of(&ps, &k("D")), Some(&k("M")));
    }

    #[test]
    fn pred_succ_for_non_member_id() {
        let ps = peers(&["D", "M", "T"]);
        // Queries about prospective ids (used by k-choices).
        assert_eq!(pred_of(&ps, &k("E")), Some(&k("D")));
        assert_eq!(succ_of(&ps, &k("E")), Some(&k("M")));
        assert_eq!(succ_of(&ps, &k("Z")), Some(&k("D")));
    }

    #[test]
    fn single_peer_is_its_own_neighbours() {
        let ps = peers(&["M"]);
        assert_eq!(pred_of(&ps, &k("M")), Some(&k("M")));
        assert_eq!(succ_of(&ps, &k("M")), Some(&k("M")));
        assert_eq!(host_of(&ps, &k("zzz")), Some(&k("M")));
    }

    #[test]
    fn epsilon_maps_to_minimum_peer() {
        let ps = peers(&["D", "M"]);
        assert_eq!(host_of(&ps, &Key::epsilon()), Some(&k("D")));
    }
}

//! Load balancing (Section 3.3 of the paper).
//!
//! "The routing follows a top-down traversal. Therefore, the upper a
//! node is, the more times it will be visited by a request. Moreover,
//! due to the sudden popularity of some data, the nodes storing the
//! corresponding keys […] may become overloaded."
//!
//! Three strategies are provided behind the [`LoadBalancer`] trait:
//!
//! * [`NoBalancing`] — the baseline ("No LB" in Figures 4–8);
//! * [`MaxLocalThroughput`] (MLT) — the paper's heuristic: each peer
//!   periodically renegotiates the ring boundary with its predecessor
//!   so the pair's aggregated throughput is maximal for the loads of
//!   the last time unit;
//! * [`KChoices`] (KC) — the adaptation of Ledlie & Seltzer's
//!   k-choices algorithm: a *joining* peer evaluates `k` candidate
//!   identifiers and picks the one yielding the best local balance.

pub mod kc;
pub mod mlt;
pub mod none;

pub use kc::KChoices;
pub use mlt::MaxLocalThroughput;
pub use none::NoBalancing;

use crate::key::Key;
use crate::system::DlptSystem;
use rand::RngCore;

/// A pluggable load-balancing strategy for the DLPT.
pub trait LoadBalancer {
    /// Short name for reports ("MLT", "KC", "none").
    fn name(&self) -> &'static str;

    /// Step (1) of each simulated time unit: an opportunity to
    /// redistribute nodes based on the previous unit's loads.
    fn before_unit(&mut self, sys: &mut DlptSystem, rng: &mut dyn RngCore);

    /// Chooses the ring position (identifier) for a peer about to join
    /// with the given capacity.
    fn choose_join_id(&self, sys: &DlptSystem, rng: &mut dyn RngCore, capacity: u32) -> Key;
}

/// Draws a random identifier that collides with no current peer —
/// the placement every strategy except KC uses.
pub fn random_peer_id(sys: &DlptSystem, rng: &mut dyn RngCore) -> Key {
    let alphabet = sys.config().alphabet.clone();
    let len = sys.config().peer_id_len;
    loop {
        let id = alphabet.random_id(rng, len);
        if sys.shard(&id).is_none() {
            return id;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_peer_id_avoids_collisions() {
        let sys = DlptSystem::builder()
            .seed(5)
            .peer_id_len(2)
            .bootstrap_peers(20)
            .build();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let id = random_peer_id(&sys, &mut rng);
            assert!(sys.shard(&id).is_none());
            assert_eq!(id.len(), 2);
        }
    }
}

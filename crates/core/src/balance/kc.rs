//! KC — the k-choices join heuristic (Ledlie & Seltzer, INFOCOM 2005),
//! adapted to the DLPT as in Section 4 of the paper.
//!
//! "When used, KC is run each time a peer joins the system. Because
//! some regions of the ring are more densely populated than others, KC
//! finds, among k potential locations for the new peer, the one that
//! leads to the best local load balance." The paper sets `k = 4`.
//!
//! Our adaptation scores a candidate identifier `c` by the pair
//! throughput the hand-off at `c` would have achieved for the last
//! unit's loads — the same objective MLT optimizes, evaluated at join
//! time: the would-be successor `T = host(c)` cedes the nodes in
//! `(pred_T, c]`, and the score is
//! `min(L_ceded, C_new) + min(L_T − L_ceded, C_T)`.

use super::LoadBalancer;
use crate::key::{in_ring_interval, Key};
use crate::system::DlptSystem;
use rand::RngCore;

/// The k-choices join placement strategy.
#[derive(Debug, Clone, Copy)]
pub struct KChoices {
    /// Number of candidate identifiers evaluated per join (paper: 4).
    pub k: usize,
}

impl Default for KChoices {
    fn default() -> Self {
        KChoices { k: 4 }
    }
}

impl KChoices {
    /// A KC strategy evaluating `k` candidates per join.
    pub fn with_k(k: usize) -> Self {
        KChoices { k: k.max(1) }
    }

    /// Scores one candidate identifier; higher is better.
    pub fn score_candidate(sys: &DlptSystem, candidate: &Key, capacity: u32) -> u64 {
        // The would-be successor straight off the ordered shard map —
        // no peer-set snapshot per candidate.
        let Some(succ) = sys.host_peer(candidate) else {
            return 0;
        };
        let Some(t_shard) = sys.shard(succ) else {
            return 0;
        };
        let pred = &t_shard.peer.pred;
        let mut ceded = 0u64;
        let mut kept = 0u64;
        for node in t_shard.nodes.values() {
            if in_ring_interval(&node.label, pred, candidate) {
                ceded += node.prev_load;
            } else {
                kept += node.prev_load;
            }
        }
        ceded.min(capacity as u64) + kept.min(t_shard.peer.capacity as u64)
    }
}

impl LoadBalancer for KChoices {
    fn name(&self) -> &'static str {
        "KC"
    }

    fn before_unit(&mut self, _sys: &mut DlptSystem, _rng: &mut dyn RngCore) {
        // KC acts at join time only.
    }

    fn choose_join_id(&self, sys: &DlptSystem, rng: &mut dyn RngCore, capacity: u32) -> Key {
        let mut best: Option<(u64, Key)> = None;
        for _ in 0..self.k {
            let candidate = super::random_peer_id(sys, rng);
            let score = Self::score_candidate(sys, &candidate, capacity);
            match &best {
                Some((s, _)) if *s >= score => {}
                _ => best = Some((score, candidate)),
            }
        }
        best.expect("k >= 1").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    #[test]
    fn score_prefers_taking_over_hot_region() {
        // Single peer Z999 hosts three nodes; the hot one is "A0".
        let mut sys = DlptSystem::builder().seed(3).peer_id_len(4).build();
        sys.add_peer_with_id(k("Z999"), 2).unwrap();
        for name in ["A0", "M0", "T0"] {
            sys.insert_data(k(name)).unwrap();
        }
        for _ in 0..20 {
            sys.lookup(&k("A0"));
        }
        sys.end_time_unit();
        // A candidate just above "A0" inherits the hot node; one below
        // "A0" inherits nothing.
        let hot = KChoices::score_candidate(&sys, &k("B000"), 50);
        let cold = KChoices::score_candidate(&sys, &k("5000"), 50);
        assert!(
            hot > cold,
            "inheriting the hot node must score higher ({hot} vs {cold})"
        );
    }

    #[test]
    fn choose_join_id_returns_fresh_id() {
        let mut sys = DlptSystem::builder()
            .seed(5)
            .peer_id_len(6)
            .default_capacity(4)
            .bootstrap_peers(5)
            .build();
        for i in 0..20 {
            sys.insert_data(Key::from(format!("SVC{i:02}"))).unwrap();
        }
        for i in 0..30 {
            sys.lookup(&Key::from(format!("SVC{:02}", i % 20)));
        }
        sys.end_time_unit();
        let lb = KChoices::default();
        let mut rng = StdRng::seed_from_u64(11);
        let id = lb.choose_join_id(&sys, &mut rng, 10);
        assert!(sys.shard(&id).is_none());
        sys.add_peer_with_id(id, 10).unwrap();
        sys.check_ring().unwrap();
        sys.check_mapping().unwrap();
    }

    #[test]
    fn kc_join_beats_random_join_on_skewed_load() {
        // Deterministically compare: with a heavily loaded successor,
        // KC's pick should score at least as well as a random pick.
        let mut sys = DlptSystem::builder()
            .seed(7)
            .peer_id_len(6)
            .default_capacity(3)
            .bootstrap_peers(4)
            .build();
        for i in 0..30 {
            sys.insert_data(Key::from(format!("K{i:02}"))).unwrap();
        }
        for i in 0..60 {
            sys.lookup(&Key::from(format!("K{:02}", i % 5)));
        }
        sys.end_time_unit();
        let mut rng1 = StdRng::seed_from_u64(100);
        let mut rng2 = StdRng::seed_from_u64(100);
        let kc_pick = KChoices::with_k(8).choose_join_id(&sys, &mut rng1, 10);
        let rand_pick = super::super::random_peer_id(&sys, &mut rng2);
        let kc_score = KChoices::score_candidate(&sys, &kc_pick, 10);
        let rand_score = KChoices::score_candidate(&sys, &rand_pick, 10);
        assert!(kc_score >= rand_score);
    }
}

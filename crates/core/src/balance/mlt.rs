//! MLT — Max Local Throughput (Section 3.3, Figure 3).
//!
//! At the end of each time unit a peer `S` and its predecessor `P`
//! know, for every node they run, the number of requests `l_n` it
//! received during the unit. The pair's throughput was
//!
//! ```text
//! T(τ) = min(L_S, C_S) + min(L_P, C_P),   L_X = Σ_{n ∈ ν_X} l_n
//! ```
//!
//! Because node identifiers cannot change (routing consistency), the
//! only redistributions available move the *boundary* between the two
//! peers: `P` slides along the ring, taking a prefix of the combined
//! node sequence with it. With `m = |ν_P ∪ ν_S|` there are `m − 1`
//! alternative boundary positions (plus the degenerate ends); a single
//! prefix-sum sweep evaluates them all, giving the O(m) time and space
//! the paper claims.
//!
//! The sweep itself is the pure function [`best_split`], exhaustively
//! property-tested; [`rebalance_pair`] applies the chosen boundary by
//! migrating nodes and renaming `P` (`DlptSystem::rename_peer`), which
//! preserves the successor-mapping invariant by construction.

use super::{random_peer_id, LoadBalancer};
use crate::key::Key;
use crate::system::DlptSystem;
use rand::seq::SliceRandom;
use rand::RngCore;

/// The MLT strategy: every unit, a fraction of peers renegotiate their
/// boundary with their predecessor.
#[derive(Debug, Clone, Copy)]
pub struct MaxLocalThroughput {
    /// Fraction of peers that run MLT per time unit (Section 4 step 1:
    /// "a fixed fraction of the peers executes the MLT load
    /// balancing").
    pub fraction: f64,
}

impl Default for MaxLocalThroughput {
    fn default() -> Self {
        // One full pass per unit unless the experiment scales it down.
        MaxLocalThroughput { fraction: 1.0 }
    }
}

impl MaxLocalThroughput {
    /// Strategy running MLT on the given fraction of peers per unit.
    pub fn with_fraction(fraction: f64) -> Self {
        MaxLocalThroughput {
            fraction: fraction.clamp(0.0, 1.0),
        }
    }
}

impl LoadBalancer for MaxLocalThroughput {
    fn name(&self) -> &'static str {
        "MLT"
    }

    fn before_unit(&mut self, sys: &mut DlptSystem, rng: &mut dyn RngCore) {
        let ids = sys.peer_ids();
        if ids.len() < 2 {
            return;
        }
        let count = ((ids.len() as f64) * self.fraction).ceil() as usize;
        let chosen: Vec<Key> = ids
            .choose_multiple(rng, count.min(ids.len()))
            .cloned()
            .collect();
        for id in chosen {
            // A previous move in this pass may have renamed this peer.
            if sys.shard(&id).is_some() {
                rebalance_pair(sys, &id);
            }
        }
    }

    fn choose_join_id(&self, sys: &DlptSystem, rng: &mut dyn RngCore, _capacity: u32) -> Key {
        random_peer_id(sys, rng)
    }
}

/// Outcome of the boundary sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitEval {
    /// Number of leading nodes (in circular order from the far
    /// boundary) assigned to the predecessor.
    pub split: usize,
    /// Pair throughput `min(L_P, C_P) + min(L_S, C_S)` this split
    /// yields for the observed loads.
    pub throughput: u64,
}

/// The O(m) sweep: given per-node loads in circular order over
/// `(pred_P, S]`, find the split maximizing the pair throughput.
///
/// Ties prefer the current split (stability under balanced load), then
/// the smallest migration distance, then the lower index — all
/// deterministic.
pub fn best_split(loads: &[u64], cap_p: u64, cap_s: u64, current: usize) -> SplitEval {
    let total: u64 = loads.iter().sum();
    let mut best = SplitEval {
        split: current,
        throughput: 0,
    };
    let mut prefix = 0u64;
    let mut best_dist = usize::MAX;
    for i in 0..=loads.len() {
        if i > 0 {
            prefix += loads[i - 1];
        }
        let t = prefix.min(cap_p) + (total - prefix).min(cap_s);
        let dist = i.abs_diff(current);
        let better = t > best.throughput
            || (t == best.throughput && dist < best_dist)
            || (t == best.throughput && dist == best_dist && i < best.split);
        if i == 0 || better {
            // Seed with i = 0 so `best` is always a real candidate.
            if i == 0 {
                best = SplitEval {
                    split: 0,
                    throughput: t,
                };
                best_dist = current;
            } else if better {
                best = SplitEval {
                    split: i,
                    throughput: t,
                };
                best_dist = dist;
            }
        }
    }
    best
}

/// Sorts labels into circular order starting just above `start`:
/// ascending labels greater than `start`, then (wrapping) ascending
/// labels at or below it.
pub fn circular_from(mut labels: Vec<(Key, u64)>, start: &Key) -> Vec<(Key, u64)> {
    labels.sort_by(|a, b| a.0.cmp(&b.0));
    let pivot = labels.partition_point(|(l, _)| l <= start);
    labels.rotate_left(pivot);
    labels
}

/// Runs one MLT step on peer `s_id` and its predecessor. Returns true
/// iff the boundary moved.
pub fn rebalance_pair(sys: &mut DlptSystem, s_id: &Key) -> bool {
    let Some(s_shard) = sys.shard(s_id) else {
        return false;
    };
    let p_id = s_shard.peer.pred.clone();
    if &p_id == s_id {
        return false; // alone on the ring
    }
    let cap_s = s_shard.peer.capacity as u64;
    let s_nodes: Vec<(Key, u64)> = s_shard
        .nodes
        .values()
        .map(|n| (n.label.clone(), n.prev_load))
        .collect();
    let Some(p_shard) = sys.shard(&p_id) else {
        return false;
    };
    let cap_p = p_shard.peer.capacity as u64;
    let q_id = p_shard.peer.pred.clone();
    let p_nodes: Vec<(Key, u64)> = p_shard
        .nodes
        .values()
        .map(|n| (n.label.clone(), n.prev_load))
        .collect();

    // Combined sequence in circular order over (Q, S].
    let mut union = circular_from(p_nodes.clone(), &q_id);
    let current = union.len();
    union.extend(circular_from(s_nodes, &p_id));
    if union.is_empty() {
        return false;
    }
    let loads: Vec<u64> = union.iter().map(|(_, l)| *l).collect();
    let eval = best_split(&loads, cap_p, cap_s, current);
    let mut split = eval.split;
    if split == current {
        return false;
    }
    // The boundary identifier P must move to. split == 0 parks P just
    // above Q; if no identifier fits there, fall back to keeping one
    // node.
    let new_p_id = loop {
        if split == current {
            return false;
        }
        if split == 0 {
            match sys.config().alphabet.id_between(&q_id, &union[0].0) {
                Some(id) if sys.shard(&id).is_none() => break id,
                _ => {
                    split = 1;
                    continue;
                }
            }
        }
        let cand = union[split - 1].0.clone();
        if &cand == s_id || (sys.shard(&cand).is_some() && cand != p_id) {
            // Collides with S (or another peer id): try the next
            // boundary toward the current one.
            if split < current {
                split += 1;
            } else {
                split -= 1;
            }
            continue;
        }
        break cand;
    };

    // Apply: first the migrations, then the rename.
    for (label, _) in union[..split].iter() {
        let host = sys.host_of(label).cloned();
        if host.as_ref() == Some(s_id) {
            sys.migrate_node(label, &p_id).expect("both peers live");
        }
    }
    for (label, _) in union[split..].iter() {
        let host = sys.host_of(label).cloned();
        if host.as_ref() == Some(&p_id) {
            sys.migrate_node(label, s_id).expect("both peers live");
        }
    }
    if new_p_id != p_id {
        sys.rename_peer(&p_id, new_p_id).expect("fresh id checked");
    }
    debug_assert!(sys.check_mapping().is_ok(), "MLT must preserve the mapping");
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    #[test]
    fn best_split_moves_load_off_weak_peer() {
        // P weak (cap 2), S strong (cap 10); loads lean left.
        let loads = [5, 5, 1, 1];
        let eval = best_split(&loads, 2, 10, 2);
        // Giving everything to S: T = min(0,2) + min(12,10) = 10.
        assert_eq!(eval.split, 0);
        assert_eq!(eval.throughput, 10);
    }

    #[test]
    fn best_split_prefers_current_on_tie() {
        // Uniform loads, huge capacities: all splits satisfy everyone.
        let loads = [1, 1, 1, 1];
        let eval = best_split(&loads, 100, 100, 2);
        assert_eq!(eval.split, 2, "stability: keep the current boundary");
        assert_eq!(eval.throughput, 4);
    }

    #[test]
    fn best_split_matches_exhaustive_reference() {
        // Deterministic pseudo-random cases cross-checked against a
        // naive evaluator.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..200 {
            let m = (next() % 9) as usize + 1;
            let loads: Vec<u64> = (0..m).map(|_| next() % 20).collect();
            let cap_p = next() % 30 + 1;
            let cap_s = next() % 30 + 1;
            let current = (next() % (m as u64 + 1)) as usize;
            let eval = best_split(&loads, cap_p, cap_s, current);
            let total: u64 = loads.iter().sum();
            let naive_best = (0..=m)
                .map(|i| {
                    let pre: u64 = loads[..i].iter().sum();
                    pre.min(cap_p) + (total - pre).min(cap_s)
                })
                .max()
                .unwrap();
            assert_eq!(eval.throughput, naive_best, "case {case}: {loads:?}");
        }
    }

    #[test]
    fn circular_order_rotates_at_start() {
        let labels = vec![(k("A"), 1), (k("M"), 2), (k("T"), 3)];
        let got = circular_from(labels, &k("M"));
        let order: Vec<Key> = got.into_iter().map(|(l, _)| l).collect();
        assert_eq!(order, vec![k("T"), k("A"), k("M")]);
    }

    #[test]
    fn rebalance_moves_hot_nodes_to_strong_peer() {
        // Two peers, heterogeneous capacity; all load lands on the
        // weak peer's nodes; MLT must shift the boundary.
        let mut sys = DlptSystem::builder()
            .alphabet(Alphabet::grid())
            .seed(31)
            .peer_id_len(4)
            .build();
        sys.add_peer_with_id(k("M000"), 2).unwrap(); // weak
        sys.add_peer_with_id(k("Z000"), 40).unwrap(); // strong
        for name in ["A0", "B0", "C0", "D0", "E0"] {
            sys.insert_data(k(name)).unwrap();
        }
        // All five keys (< M000) are hosted by the weak peer.
        assert!(sys.shard(&k("M000")).unwrap().node_count() >= 5);
        // Simulate one loaded unit.
        for _ in 0..30 {
            sys.lookup(&k("C0"));
        }
        sys.end_time_unit();
        let moved = rebalance_pair(&mut sys, &k("Z000"));
        assert!(moved, "boundary must move toward the strong peer");
        sys.check_mapping().unwrap();
        sys.check_ring().unwrap();
        // The strong peer now runs nodes.
        let strong_nodes = sys.shard(&k("Z000")).unwrap().node_count();
        assert!(strong_nodes > 0, "strong peer should host nodes now");
        // And lookups still work (fresh unit per lookup so the weak
        // peer's tiny capacity does not interfere with the check).
        for name in ["A0", "B0", "C0", "D0", "E0"] {
            sys.end_time_unit();
            assert!(sys.lookup(&k(name)).satisfied, "{name}");
        }
    }

    #[test]
    fn rebalance_pair_noop_when_alone() {
        let mut sys = DlptSystem::builder().seed(1).bootstrap_peers(1).build();
        let id = sys.peer_ids()[0].clone();
        assert!(!rebalance_pair(&mut sys, &id));
    }

    #[test]
    fn before_unit_keeps_invariants_across_many_units() {
        let mut sys = DlptSystem::builder()
            .seed(37)
            .peer_id_len(6)
            .default_capacity(5)
            .bootstrap_peers(8)
            .build();
        for i in 0..60 {
            sys.insert_data(Key::from(format!("SVC{i:03}"))).unwrap();
        }
        let mut lb = MaxLocalThroughput::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        use rand::SeedableRng;
        for _ in 0..5 {
            for i in 0..40 {
                sys.lookup(&Key::from(format!("SVC{:03}", i % 60)));
            }
            sys.end_time_unit();
            lb.before_unit(&mut sys, &mut rng);
            sys.check_mapping().unwrap();
            sys.check_ring().unwrap();
            sys.check_tree().unwrap();
        }
    }
}

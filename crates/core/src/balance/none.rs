//! The "No LB" baseline of Figures 4–8: random join placement, no
//! redistribution.

use super::{random_peer_id, LoadBalancer};
use crate::key::Key;
use crate::system::DlptSystem;
use rand::RngCore;

/// No explicit load balancing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBalancing;

impl LoadBalancer for NoBalancing {
    fn name(&self) -> &'static str {
        "none"
    }

    fn before_unit(&mut self, _sys: &mut DlptSystem, _rng: &mut dyn RngCore) {}

    fn choose_join_id(&self, sys: &DlptSystem, rng: &mut dyn RngCore, _capacity: u32) -> Key {
        random_peer_id(sys, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn join_id_is_random_and_fresh() {
        let mut sys = DlptSystem::builder().seed(1).bootstrap_peers(3).build();
        let mut rng = StdRng::seed_from_u64(2);
        let lb = NoBalancing;
        let id = lb.choose_join_id(&sys, &mut rng, 10);
        assert!(sys.shard(&id).is_none());
        sys.add_peer_with_id(id, 10).unwrap();
        sys.check_ring().unwrap();
    }
}

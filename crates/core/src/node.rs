//! State of one logical tree node.
//!
//! Section 3: "Each node `n` maintains a father `f_n`, a set of
//! children `C_n` and the set of all data `δ_n` associated with the key
//! `k = n`." We additionally keep the per-time-unit request counter
//! the MLT balancer consumes (Section 3.3: "each peer sends the number
//! of requests received during this time unit, for each node it runs,
//! to its predecessor").

use crate::key::Key;
use std::collections::BTreeSet;

/// A logical vertex of the distributed PGCP tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeState {
    /// The node's label — also its identifier in the space `I`.
    pub label: Key,
    /// Father link `f_n` (`None` for the root).
    pub father: Option<Key>,
    /// Child labels `C_n`, kept sorted (routing picks
    /// `Max{q ∈ C_p : q <= target}` in `O(log)` time).
    pub children: BTreeSet<Key>,
    /// Data set `δ_n`: service keys registered on this node. By the
    /// placement rule a key is stored on the node sharing its label, so
    /// the set is `{label}` when the service is registered and empty
    /// for purely structural nodes.
    pub data: BTreeSet<Key>,
    /// Requests received during the *current* time unit (`l_n` while
    /// it accumulates). Counts offered demand, including requests the
    /// hosting peer had to ignore for lack of capacity.
    pub load: u64,
    /// `l_n` of the last completed time unit — the history MLT uses.
    pub prev_load: u64,
}

impl NodeState {
    /// A fresh node with the given label and no links.
    pub fn new(label: Key) -> Self {
        NodeState {
            label,
            father: None,
            children: BTreeSet::new(),
            data: BTreeSet::new(),
            load: 0,
            prev_load: 0,
        }
    }

    /// True iff this node only exists to preserve the PGCP shape
    /// (the "non-filled" nodes of Figure 1).
    pub fn is_structural(&self) -> bool {
        self.data.is_empty()
    }

    /// True iff this node is the tree root.
    pub fn is_root(&self) -> bool {
        self.father.is_none()
    }

    /// The child with the greatest label `<= target`, i.e.
    /// `Max({q ∈ C_p : q <= target})` from Algorithms 1 and 3.
    pub fn max_child_le(&self, target: &Key) -> Option<&Key> {
        self.children.range::<Key, _>(..=target).next_back()
    }

    /// The unique child sharing a strictly longer prefix with `target`
    /// than this node's own label does (children diverge pairwise right
    /// after the label, so at most one qualifies).
    pub fn child_extending(&self, target: &Key) -> Option<&Key> {
        let own = self.label.gcp_len(target);
        // A child qualifies iff it shares the target's first `own + 1`
        // digits — which requires its digit at `own` to match the
        // target's. Scanning on that single digit is enough to rule a
        // child in or out when the PGCP invariant (children extend the
        // label) holds; the full-prefix scan below stays as the
        // fallback for transient trees mid-repair.
        if own == self.label.len() {
            let Some(next) = target.as_bytes().get(own) else {
                // `target == label`: no child can share a longer prefix.
                return None;
            };
            match self
                .children
                .iter()
                .find(|c| c.as_bytes().get(own) == Some(next))
            {
                // No child matches the branching digit — necessary for
                // a longer shared prefix — so none qualifies.
                None => return None,
                // Verify the invariant actually held for the match.
                Some(c) if c.gcp_len(target) > own => return Some(c),
                Some(_) => {}
            }
        }
        self.children.iter().find(|c| c.gcp_len(target) > own)
    }

    /// Replaces child `old` by `new` (the `UpdateChild` message); no-op
    /// if `old` is absent.
    pub fn replace_child(&mut self, old: &Key, new: Key) {
        if self.children.remove(old) {
            self.children.insert(new);
        }
    }

    /// Closes the current time unit: archive `load` into `prev_load`
    /// and reset the accumulator.
    pub fn roll_unit(&mut self) {
        self.prev_load = self.load;
        self.load = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn node_with_children(label: &str, children: &[&str]) -> NodeState {
        let mut n = NodeState::new(k(label));
        for c in children {
            n.children.insert(k(c));
        }
        n
    }

    #[test]
    fn max_child_le_picks_greatest_at_or_below() {
        let n = node_with_children("1", &["10", "110", "111"]);
        assert_eq!(n.max_child_le(&k("110")), Some(&k("110")));
        assert_eq!(n.max_child_le(&k("1101")), Some(&k("110")));
        assert_eq!(n.max_child_le(&k("10")), Some(&k("10")));
        assert_eq!(n.max_child_le(&k("0")), None);
        assert_eq!(n.max_child_le(&k("zzz")), Some(&k("111")));
    }

    #[test]
    fn child_extending_finds_unique_branch() {
        // Valid PGCP children of "10" diverge right after it.
        let n = node_with_children("10", &["1001", "1011"]);
        assert_eq!(n.child_extending(&k("10111")), Some(&k("1011")));
        assert_eq!(n.child_extending(&k("100")), Some(&k("1001")));
        // Next digit matches no child branch → none extends.
        let n2 = node_with_children("1", &["10", "11"]);
        assert_eq!(n2.child_extending(&k("1")), None);
    }

    #[test]
    fn replace_child_swaps_in_place() {
        let mut n = node_with_children("1", &["10", "11"]);
        n.replace_child(&k("10"), k("100"));
        assert!(n.children.contains(&k("100")));
        assert!(!n.children.contains(&k("10")));
        // Absent old: no-op.
        n.replace_child(&k("zz"), k("zzz"));
        assert!(!n.children.contains(&k("zzz")));
        assert_eq!(n.children.len(), 2);
    }

    #[test]
    fn roll_unit_archives_load() {
        let mut n = NodeState::new(k("a"));
        n.load = 17;
        n.roll_unit();
        assert_eq!(n.prev_load, 17);
        assert_eq!(n.load, 0);
    }

    #[test]
    fn structural_and_root_predicates() {
        let mut n = NodeState::new(k("101"));
        assert!(n.is_structural());
        assert!(n.is_root());
        n.data.insert(k("101"));
        n.father = Some(k("10"));
        assert!(!n.is_structural());
        assert!(!n.is_root());
    }
}

//! Hot-path routing shortcuts: a per-peer LRU cache with epoch
//! invalidation.
//!
//! Under load, the paper's satisfaction curves degrade precisely
//! because every discovery request climbs toward the upper tree before
//! descending, so the root region of the DLPT is a hotspot no matter
//! how well MLT/KC spread the nodes. Caching popular routes near the
//! entry points is the classic remedy the DLPT line of work itself
//! pursued (Caron et al., *Optimization in a Self-Stabilizing Service
//! Discovery Framework for Large Scale Systems*), and shortcut links
//! are how tree overlays reach optimal lookup bounds (*Optimally
//! Efficient Prefix Search and Multicast in Structured P2P Networks*).
//!
//! Every peer keeps a fixed-capacity [`RouteCache`] mapping a query
//! *target* (the label region a request must reach, [`crate::messages::QueryKind::target`])
//! to a [`Shortcut`]: the covering node's label, its hosting peer, and
//! the label's *epoch* at learning time. The cache is consulted when a
//! request enters the overlay: on a hit the request is delivered
//! straight to the covering node in `Down` phase — one directory hop
//! instead of the `O(depth)` up/down climb.
//!
//! ## Why stale hits are safe
//!
//! Correctness rests on two facts:
//!
//! 1. Labels are *semantic*: a node labelled `l` covers target `t` iff
//!    `l` is a prefix of `t` — a property of the strings alone, not of
//!    the tree's current shape. Descending ([`crate::protocol::discovery`])
//!    from any live node whose label prefixes the target yields exactly
//!    the same results as the full up/down route.
//! 2. The runtime validates every hit against its authoritative
//!    directory before forwarding: the cached label must still be live
//!    *and* its per-label epoch ([`crate::directory::Directory`]) must
//!    equal the epoch recorded in the shortcut. Every structural
//!    mutation of a node — insert/remove child, relocation by the
//!    MLT/KC balancers, crash promotion, dissolution — bumps the
//!    label's epoch, so a mismatch marks the shortcut stale. A stale
//!    hit is *evicted* and the request falls back to the normal
//!    up/down route; the cache can therefore never change a result,
//!    only the route taken to compute it.
//!
//! Epoch checks make invalidation lazy and free; where eager
//! invalidation is cheap (a node dissolved or migrated, both rare and
//! already fan-out events) the runtimes additionally broadcast
//! [`crate::messages::PeerMsg::InvalidateCached`] so peers drop dead
//! shortcuts before ever paying a stale-hit fallback.
//!
//! With capacity 0 (the default) the cache is fully inert: no entries,
//! no messages, no counters — the system is byte-identical to the
//! uncached golden fingerprint.

use crate::directory::Directory;
use crate::key::Key;
use crate::messages::{DiscoveryMsg, Envelope, NodeMsg, QueryKind, RoutePhase};
use std::collections::HashMap;

/// Sentinel index meaning "no neighbour" in the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// One learned routing shortcut: where a query target's covering node
/// lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shortcut {
    /// Label of the node covering the target region (for exact
    /// queries, the node owning the key itself).
    pub label: Key,
    /// The peer hosting that node when the shortcut was learned — the
    /// address a deployment's entry peer would dial directly. The
    /// in-repo runtimes address envelopes logically (`Address::Node`)
    /// and resolve the live host through the authoritative directory
    /// at delivery, so here the field is carried for protocol
    /// fidelity, not consulted for routing.
    pub host: Key,
    /// The label's directory epoch at learning time; a mismatch at
    /// consult time marks the shortcut stale.
    pub epoch: u64,
}

/// One slot of the LRU list.
#[derive(Debug, Clone)]
struct Slot {
    target: Key,
    shortcut: Shortcut,
    prev: u32,
    next: u32,
}

/// A fixed-capacity LRU map `query target → Shortcut`.
///
/// Implemented as an index-based intrusive doubly-linked list over a
/// slot vector plus a hash index, so hits, inserts and evictions are
/// all O(1) and fully deterministic (the iteration order of the
/// internal map is never observed). Capacity 0 disables the cache
/// entirely.
#[derive(Debug, Clone)]
pub struct RouteCache {
    capacity: usize,
    slots: Vec<Slot>,
    /// target → slot index.
    index: HashMap<Key, u32, std::hash::BuildHasherDefault<crate::directory::FxHasher>>,
    /// Most-recently-used slot (NIL when empty).
    head: u32,
    /// Least-recently-used slot (NIL when empty).
    tail: u32,
    /// Reusable slot indices left by removals.
    free: Vec<u32>,
}

impl Default for RouteCache {
    /// A disabled (capacity 0) cache. A manual impl because the
    /// derived one would zero `head`/`tail` instead of the `NIL`
    /// sentinel, corrupting the intrusive list.
    fn default() -> Self {
        RouteCache::new(0)
    }
}

impl RouteCache {
    /// A cache holding at most `capacity` shortcuts (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        RouteCache {
            capacity,
            slots: Vec::new(),
            index: HashMap::default(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Reconfigures the capacity; shrinking evicts from the LRU end.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.len() > self.capacity {
            self.evict_lru();
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached shortcuts.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True iff no shortcuts are cached.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Looks up `target`, promoting the entry to most-recently-used.
    pub fn hit(&mut self, target: &Key) -> Option<&Shortcut> {
        let &i = self.index.get(target)?;
        self.unlink(i);
        self.push_front(i);
        Some(&self.slots[i as usize].shortcut)
    }

    /// Inserts (or refreshes) the shortcut for `target`, evicting the
    /// least-recently-used entry on overflow. No-op at capacity 0.
    pub fn insert(&mut self, target: Key, shortcut: Shortcut) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.index.get(&target) {
            self.slots[i as usize].shortcut = shortcut;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        if self.len() >= self.capacity {
            self.evict_lru();
        }
        let slot = Slot {
            target: target.clone(),
            shortcut,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as u32
            }
        };
        self.index.insert(target, i);
        self.push_front(i);
    }

    /// Removes the shortcut for `target`; returns true iff present.
    pub fn remove(&mut self, target: &Key) -> bool {
        let Some(i) = self.index.remove(target) else {
            return false;
        };
        self.unlink(i);
        self.free.push(i);
        true
    }

    /// Drops every shortcut routing through node `label` whose epoch is
    /// `<= epoch` (the eager-invalidation handler: later-learned
    /// shortcuts already carry a fresher epoch and survive a reordered
    /// invalidation). Returns how many entries were dropped.
    pub fn invalidate_label(&mut self, label: &Key, epoch: u64) -> usize {
        // Capacity is small and invalidations are rare fan-out events:
        // a linear walk of the live list beats maintaining a reverse
        // index on the hot (hit/insert) path.
        let mut doomed: Vec<Key> = Vec::new();
        let mut i = self.head;
        while i != NIL {
            let s = &self.slots[i as usize];
            if s.shortcut.label == *label && s.shortcut.epoch <= epoch {
                doomed.push(s.target.clone());
            }
            i = s.next;
        }
        for t in &doomed {
            self.remove(t);
        }
        doomed.len()
    }

    /// Live `(target, shortcut)` entries in most-recently-used order
    /// (a deterministic walk of the intrusive list — the hash index's
    /// iteration order is never observed). Read-only: unlike
    /// [`RouteCache::hit`], iterating does not promote entries.
    pub fn iter_shortcuts(&self) -> impl Iterator<Item = (&Key, &Shortcut)> + '_ {
        let mut i = self.head;
        std::iter::from_fn(move || {
            if i == NIL {
                return None;
            }
            let s = &self.slots[i as usize];
            i = s.next;
            Some((&s.target, &s.shortcut))
        })
    }

    /// Estimated resident bytes: the slot vector, the free list, the
    /// index (fixed per-entry estimate) and any spilled keys held by
    /// live slots.
    pub fn bytes_estimate(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = self.slots.capacity() * size_of::<Slot>()
            + self.free.capacity() * size_of::<u32>()
            + self.index.len() * (size_of::<Key>() + size_of::<u32>() + 8);
        for (target, sc) in self.iter_shortcuts() {
            for k in [target, &sc.label, &sc.host] {
                if !k.is_inline() {
                    bytes += k.len() + 16;
                }
            }
        }
        bytes
    }

    /// Drops everything (capacity is retained).
    pub fn clear(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn evict_lru(&mut self) {
        if self.tail == NIL {
            return;
        }
        let target = self.slots[self.tail as usize].target.clone();
        self.remove(&target);
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else if self.head == i {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else if self.tail == i {
            self.tail = prev;
        }
        let s = &mut self.slots[i as usize];
        s.prev = NIL;
        s.next = NIL;
    }

    fn push_front(&mut self, i: u32) {
        self.slots[i as usize].prev = NIL;
        self.slots[i as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

/// Consults `cache` for `target`, validating any hit against the
/// authoritative `directory`: the cached label must still be live at
/// the recorded epoch. Returns the shortcut on a validated hit; a
/// stale hit is evicted, and every outcome is counted in `stats`.
/// Shared by all three runtimes so the consult flow cannot drift
/// between them.
pub fn consult(
    cache: &mut RouteCache,
    directory: &Directory,
    target: &Key,
    stats: &mut CacheStats,
) -> Option<Shortcut> {
    match cache.hit(target).cloned() {
        Some(sc) if directory.live_epoch(&sc.label) == Some(sc.epoch) => {
            stats.hits += 1;
            Some(sc)
        }
        Some(_) => {
            stats.stale_hits += 1;
            cache.remove(target);
            None
        }
        None => {
            stats.misses += 1;
            None
        }
    }
}

/// The shortcut a satisfied exact query teaches: the target's own
/// node (which the query just proved live and owning the key), its
/// current host and epoch. `None` when the target is not live in the
/// directory — unreachable right after a satisfied exact lookup, but
/// it keeps racy callers safe.
pub fn learned_shortcut(directory: &Directory, target: &Key) -> Option<Shortcut> {
    let epoch = directory.live_epoch(target)?;
    let host = directory.host_of(target)?.clone();
    Some(Shortcut {
        label: target.clone(),
        host,
        epoch,
    })
}

/// The envelope a validated shortcut turns a request into: the query
/// delivered straight to the covering node in `Down` phase, path
/// empty (the target visit appends itself; hop accounting then shows
/// the one-hop route). Shared by all three runtimes so the cached
/// route's shape cannot drift between them.
pub fn shortcut_envelope(request_id: u64, query: QueryKind, sc: Shortcut) -> Envelope {
    Envelope::to_node(
        sc.label,
        NodeMsg::Discovery(DiscoveryMsg {
            request_id,
            query,
            phase: RoutePhase::Down,
            // Pre-sized for the cached route: the covering visit plus
            // a few gather partials.
            path: Vec::with_capacity(4),
        }),
    )
}

/// Counters of the caching subsystem. Kept apart from
/// [`crate::metrics::SystemStats`] — like [`crate::replication::ReplicationStats`] —
/// so the cache-off system's observable stats stay byte-identical to
/// the pre-cache golden fingerprint. All remain zero at capacity 0.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered through a validated shortcut (one-hop route).
    pub hits: u64,
    /// Requests whose target had no cached shortcut.
    pub misses: u64,
    /// Hits rejected by the epoch/liveness check; the entry was
    /// evicted and the request fell back to the up/down route.
    pub stale_hits: u64,
    /// Shortcuts learned from satisfied discovery responses.
    pub learned: u64,
    /// `InvalidateCached` messages put on the wire by eager
    /// invalidation.
    pub invalidations_sent: u64,
    /// `InvalidateCached` messages delivered to a peer's cache.
    pub invalidations_delivered: u64,
}

impl CacheStats {
    /// Hit rate over consults (hits / (hits + stale + misses)), as a
    /// percentage. 0 when nothing was consulted.
    pub fn hit_pct(&self) -> f64 {
        let consults = self.hits + self.stale_hits + self.misses;
        if consults == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / consults as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn sc(label: &str, host: &str, epoch: u64) -> Shortcut {
        Shortcut {
            label: k(label),
            host: k(host),
            epoch,
        }
    }

    #[test]
    fn hit_miss_and_promotion() {
        let mut c = RouteCache::new(2);
        assert!(c.hit(&k("A")).is_none());
        c.insert(k("A"), sc("A", "P1", 1));
        c.insert(k("B"), sc("B", "P2", 1));
        assert_eq!(c.len(), 2);
        // Touch A so B becomes the LRU victim.
        assert_eq!(c.hit(&k("A")).unwrap().host, k("P1"));
        c.insert(k("C"), sc("C", "P3", 1));
        assert_eq!(c.len(), 2);
        assert!(c.hit(&k("B")).is_none(), "B was least recently used");
        assert!(c.hit(&k("A")).is_some());
        assert!(c.hit(&k("C")).is_some());
    }

    #[test]
    fn insert_refreshes_existing_entry() {
        let mut c = RouteCache::new(2);
        c.insert(k("A"), sc("A", "P1", 1));
        c.insert(k("A"), sc("A", "P9", 5));
        assert_eq!(c.len(), 1);
        let got = c.hit(&k("A")).unwrap();
        assert_eq!(got.host, k("P9"));
        assert_eq!(got.epoch, 5);
    }

    #[test]
    fn capacity_zero_is_inert() {
        let mut c = RouteCache::new(0);
        c.insert(k("A"), sc("A", "P1", 1));
        assert!(c.is_empty());
        assert!(c.hit(&k("A")).is_none());
    }

    #[test]
    fn remove_and_slot_reuse() {
        let mut c = RouteCache::new(4);
        c.insert(k("A"), sc("A", "P1", 1));
        c.insert(k("B"), sc("B", "P1", 1));
        assert!(c.remove(&k("A")));
        assert!(!c.remove(&k("A")));
        c.insert(k("C"), sc("C", "P1", 1));
        assert_eq!(c.slots.len(), 2, "freed slot is reused");
        assert!(c.hit(&k("B")).is_some());
        assert!(c.hit(&k("C")).is_some());
    }

    #[test]
    fn invalidate_label_respects_epochs() {
        let mut c = RouteCache::new(8);
        // Three targets routing through label "10": two learned at
        // epoch 3, one re-learned later at epoch 7.
        c.insert(k("101"), sc("10", "P1", 3));
        c.insert(k("102"), sc("10", "P1", 3));
        c.insert(k("103"), sc("10", "P2", 7));
        c.insert(k("2"), sc("2", "P3", 3));
        assert_eq!(c.invalidate_label(&k("10"), 5), 2);
        assert!(c.hit(&k("101")).is_none());
        assert!(c.hit(&k("102")).is_none());
        assert!(c.hit(&k("103")).is_some(), "fresher epoch survives");
        assert!(c.hit(&k("2")).is_some(), "other labels untouched");
        assert_eq!(c.invalidate_label(&k("10"), 7), 1);
        assert!(c.hit(&k("103")).is_none());
    }

    #[test]
    fn shrinking_capacity_evicts_lru_first() {
        let mut c = RouteCache::new(4);
        for (i, t) in ["A", "B", "C", "D"].iter().enumerate() {
            c.insert(k(t), sc(t, "P", i as u64));
        }
        c.hit(&k("A")); // A is now MRU; B is LRU.
        c.set_capacity(2);
        assert_eq!(c.len(), 2);
        assert!(c.hit(&k("A")).is_some());
        assert!(c.hit(&k("D")).is_some());
        assert!(c.hit(&k("B")).is_none());
        assert!(c.hit(&k("C")).is_none());
    }

    #[test]
    fn clear_retains_capacity() {
        let mut c = RouteCache::new(3);
        c.insert(k("A"), sc("A", "P", 1));
        c.clear();
        assert!(c.is_empty());
        c.insert(k("B"), sc("B", "P", 1));
        assert_eq!(c.len(), 1);
        assert_eq!(c.capacity(), 3);
    }

    #[test]
    fn lru_order_survives_churn() {
        // Exercise the linked list: interleave inserts, hits, removals.
        let mut c = RouteCache::new(3);
        for t in ["A", "B", "C"] {
            c.insert(k(t), sc(t, "P", 1));
        }
        c.hit(&k("A"));
        c.remove(&k("B"));
        c.insert(k("D"), sc("D", "P", 1));
        c.insert(k("E"), sc("E", "P", 1)); // evicts C (LRU)
        assert!(c.hit(&k("C")).is_none());
        assert!(c.hit(&k("A")).is_some());
        assert!(c.hit(&k("D")).is_some());
        assert!(c.hit(&k("E")).is_some());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn default_cache_has_a_sound_lru_list() {
        // Regression: the derived Default zeroed head/tail instead of
        // NIL, self-looping the intrusive list.
        let mut c = RouteCache::default();
        assert_eq!(c.capacity(), 0);
        c.set_capacity(2);
        c.insert(k("A"), sc("A", "P", 1));
        c.insert(k("B"), sc("B", "P", 1));
        c.insert(k("C"), sc("C", "P", 1)); // evicts A
        assert_eq!(c.invalidate_label(&k("B"), 1), 1, "walk terminates");
        assert!(c.hit(&k("A")).is_none());
        assert!(c.hit(&k("C")).is_some());
    }

    #[test]
    fn consult_validates_against_the_directory() {
        let mut d = Directory::new();
        d.insert(k("101"), k("P1"));
        let epoch = d.live_epoch(&k("101")).unwrap();
        let mut c = RouteCache::new(4);
        let mut stats = CacheStats::default();
        // Miss.
        assert!(consult(&mut c, &d, &k("101"), &mut stats).is_none());
        assert_eq!(stats.misses, 1);
        // Learn + validated hit.
        let sc = learned_shortcut(&d, &k("101")).unwrap();
        assert_eq!(sc.epoch, epoch);
        c.insert(k("101"), sc);
        let hit = consult(&mut c, &d, &k("101"), &mut stats).unwrap();
        assert_eq!(hit.label, k("101"));
        assert_eq!(stats.hits, 1);
        // Stale hit after a structural event: evicted, fallback.
        d.bump_epoch(&k("101"));
        assert!(consult(&mut c, &d, &k("101"), &mut stats).is_none());
        assert_eq!(stats.stale_hits, 1);
        assert!(c.is_empty(), "stale entry evicted");
        // Dead labels teach nothing.
        d.remove(&k("101"));
        assert!(learned_shortcut(&d, &k("101")).is_none());
    }

    #[test]
    fn stats_hit_pct() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_pct(), 0.0);
        s.hits = 3;
        s.misses = 1;
        s.stale_hits = 0;
        assert!((s.hit_pct() - 75.0).abs() < 1e-9);
    }
}
